#!/usr/bin/env bash
# Offline CI gate: everything here must pass before a commit lands.
# Mirrors .github/workflows/ci.yml so the same script runs locally and
# in CI without network access (all dependencies are vendored).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --locked --workspace --all-targets -- -D warnings

echo "==> xlint (workspace invariants: D/P/F/K/L/S/A, see DESIGN.md §6)"
# Prints the waiver and grandfathered counts in its summary line.
# Exit 1 = violations; exit 2 = linter/config error — both fail the gate.
cargo run --locked -q -p xlint

echo "==> xlint --check-wire-pin (wire-format drift vs committed xlint.wire)"
# A layout change in crates/net/src/wire.rs must bump wire::VERSION and
# regenerate the pin (cargo run -p xlint -- --write-wire-pin) to pass.
cargo run --locked -q -p xlint -- --check-wire-pin

echo "==> cargo build --release"
cargo build --locked --release

echo "==> cargo test (workspace)"
cargo test --locked -q --workspace

echo "==> net loopback tests (wire protocol, staging service, remote stager)"
# Already covered by the workspace run above; re-run as a named step so a
# networking regression is visible at a glance, same pattern as xlint.
cargo test --locked -q -p xlayer-net
cargo test --locked -q --test remote_staging

echo "==> multi-shard loopback cluster (routing, scatter/gather, shard faults)"
# Also inside the -p xlayer-net run above; named so a sharding regression
# is distinguishable from a single-server transport one.
cargo test --locked -q -p xlayer-net --test cluster

echo "==> disk tier tests (extent log, spill policy, tiered workflows)"
# Also inside the workspace run above; named so a tier regression is
# visible at a glance. Tier tests create their scratch directories under
# $TMPDIR (unique per process + sequence number) and remove them on
# success; sweep any leftovers from earlier failed runs first so disk
# usage cannot accumulate across CI attempts.
rm -rf "${TMPDIR:-/tmp}"/xlayer-tierprop-* "${TMPDIR:-/tmp}"/xlayer-native-* \
       "${TMPDIR:-/tmp}"/xlayer-tier-* "${TMPDIR:-/tmp}"/xlayer-disklog-* \
       "${TMPDIR:-/tmp}"/xlayer-tiered-server-*
cargo test --locked -q -p xlayer-staging
cargo test --locked -q -p xlayer-workflow --lib tiered

echo "==> xbench load-generation tests (spec parser, control protocol, e2e loopback)"
# Also inside the workspace run above; named so a load-harness regression
# is distinguishable from a transport one.
cargo test --locked -q -p xlayer-xbench

echo "==> xbench smoke (2-shard cluster + 2 agents on loopback, 2-step sweep)"
# In-process end to end: validates the saturation sweep's invariants
# (monotone offered load, positive knee and goodput) and prints the
# bench-style JSON. Seconds of wall time, ephemeral ports only.
cargo run --locked --release -q -p xlayer-xbench --bin xbench-ctl -- --smoke

echo "==> bench targets compile"
cargo build --locked --release -p xlayer-bench --benches --bins

echo "==> bench summary schema (BENCH_native_hotpath.json)"
cargo run --locked --release -q -p xlayer-bench --bin bench_schema_check -- BENCH_native_hotpath.json

echo "All checks passed."
