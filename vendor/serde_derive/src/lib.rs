//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline serde stand-in: the derives accept serde attributes and emit
//! nothing (the traits in the `serde` stand-in are markers with no
//! methods, so no impl is required for the code to compile and run).

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and emit nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and emit nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
