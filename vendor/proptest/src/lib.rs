//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: range strategies, tuples, `Just`, `prop_map`,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` runner with
//! `prop_assert*` / `prop_assume!`. Generation is deterministic per
//! (test name, case index), so failures reproduce; there is no shrinking —
//! a failing case reports its inputs' debug representation instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Admissible collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, sizes)`: vectors whose length is drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (redraw inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $config;
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let seed = $crate::test_runner::case_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                    rejects,
                );
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let ($($arg,)+) = ($($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+);
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => {
                        case += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects < 1 << 16,
                            "{}: too many prop_assume rejections",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {}: case {} failed (seed {:#x}):\n{}",
                            stringify!($name),
                            case,
                            seed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}
