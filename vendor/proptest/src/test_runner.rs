//! Deterministic case runner support: config, RNG, error type.

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is redrawn.
    Reject(String),
}

/// Deterministic RNG (splitmix64) used for value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a seed; the same seed replays the same values.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)` (`n = 0` returns 0).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed for one test case: stable across runs, distinct across
/// (test, case, reject-round).
pub fn case_seed(test_name: &str, case: u32, rejects: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case counters.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32) ^ ((rejects as u64).wrapping_mul(0x9e37_79b9))
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn runner_executes_cases(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b >= a.min(b));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_redraws(
            n in 0u32..64,
        ) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn patterns_and_oneof(
            (x, y) in (0i32..5, 5i32..9),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(x < y);
            prop_assert_ne!(pick, 0);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            super::case_seed("mod::test", 3, 0),
            super::case_seed("mod::test", 3, 0)
        );
        assert_ne!(
            super::case_seed("mod::test", 3, 0),
            super::case_seed("mod::test", 4, 0)
        );
    }
}
