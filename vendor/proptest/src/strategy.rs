//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws a concrete value directly from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                ((self.start as i128) + (r as i128)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let r = (rng.next_u64() as u128) % (span as u128);
                ((lo as i128) + (r as i128)) as $t
            }
        }
    )*}
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                if v < self.end { v } else { self.start }
            }
        }
    )*}
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*}
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..2000 {
            let v = (3i64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = (1u64..(1 << 40)).generate(&mut rng);
            assert!(u >= 1 && u < (1 << 40));
        }
    }

    #[test]
    fn map_tuple_vec_union() {
        let mut rng = TestRng::from_seed(2);
        let s = (0i64..4, 0i64..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0..34).contains(&v));
        }
        let vs = crate::collection::vec(0i32..5, 2..6);
        for _ in 0..100 {
            let v = vs.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
        }
        let u = Union::new(vec![Box::new(Just(1u8)), Box::new(Just(9u8))]);
        for _ in 0..50 {
            assert!(matches!(u.generate(&mut rng), 1 | 9));
        }
    }
}
