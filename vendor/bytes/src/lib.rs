//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer. Clones
//! share one heap allocation (the property the staging layer relies on for
//! its zero-copy semantics); everything else is a thin veneer over
//! `Arc<Vec<u8>>`. Backing the buffer with a `Vec` (rather than `Arc<[u8]>`)
//! makes `From<Vec<u8>>` free — the conversion adopts the existing
//! allocation instead of copying it — which the staging layer's pack and
//! chunked-assembly paths rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the underlying bytes.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts the vector's allocation without copying.
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn slicing_and_len() {
        let a = Bytes::from(vec![0u8; 16]);
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
        assert_eq!(a[4..8].len(), 4);
    }

    #[test]
    fn from_vec_adopts_the_allocation() {
        let v = vec![9u8; 32];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), p);
    }
}
