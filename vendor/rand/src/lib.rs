//! Offline stand-in for `rand` 0.9.
//!
//! A splitmix64-based PRNG behind the rand 0.9 names the workspace might
//! reach for (`rng()`, `Rng::random_range`, `SeedableRng::seed_from_u64`).
//! Statistical quality is fine for workload shuffling and sampling; do not
//! use for cryptography.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Random-value sources.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    fn random_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end.checked_sub(range.start).expect("empty range");
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }

    /// Uniform `usize` index in `[0, n)`.
    fn random_index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The default PRNG (splitmix64 core).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A process-unique, time-seeded RNG (rand 0.9's `rand::rng()`).
pub fn rng() -> StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.random_range(10..20);
            assert!((10..20).contains(&v));
            let f = a.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
