//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`bench_function`/
//! `benchmark_group` API so the workspace's benches compile and run
//! unchanged, with a simple but honest measurement loop: calibrate the
//! iteration count to a target sample duration, take several samples, and
//! report the median ns/iter. A positional CLI argument filters benchmarks
//! by substring (like `cargo bench -- exchange`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const CALIBRATION_TARGET: Duration = Duration::from_millis(10);
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
const SAMPLES: usize = 7;

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, reporting the median over several timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count filling the calibration target.
        let mut n: u64 = 1;
        let per_iter_ns = loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let el = t0.elapsed();
            if el >= CALIBRATION_TARGET || n >= (1 << 24) {
                break (el.as_nanos() as f64 / n as f64).max(0.1);
            }
            n = n.saturating_mul(4);
        };
        let iters =
            ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns).ceil() as u64).clamp(1, 1 << 28);
        let mut samples = [0.0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = t0.elapsed().as_nanos() as f64 / iters as f64;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[SAMPLES / 2];
    }
}

/// Benchmark registry/driver (a tiny subset of criterion's).
pub struct Criterion {
    filters: Vec<String>,
    /// `(name, median ns/iter)` for every benchmark run so far.
    pub results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args act as substring filters; flags (-*, --*) from
        // the cargo bench harness protocol are ignored.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.enabled(name) {
            return self;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{:<44} {:>14.1} ns/iter", name, b.ns_per_iter);
        self.results.push((name.to_string(), b.ns_per_iter));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.c.bench_function(&name, |b| f(b, input));
        self
    }

    /// Run one plain benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Finish the group (reporting happens per-benchmark; nothing to do).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            filters: Vec::new(),
            results: Vec::new(),
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > 0.0);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("f", 32);
        assert_eq!(id.id, "f/32");
        let id = BenchmarkId::from_parameter(64);
        assert_eq!(id.id, "64");
    }
}
