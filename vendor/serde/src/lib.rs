//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on config and
//! metrics types — nothing serializes through serde yet (checkpoints use a
//! hand-rolled format). So the traits are markers and the derives are
//! no-ops; swap in real serde when an actual wire format shows up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de> {}

/// Marker for types deserializable without borrowing.
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
