//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()`
//! returns the guard directly (poisoning is swallowed — a panicking holder
//! does not poison the lock for everyone else), and `Condvar::wait` takes
//! the guard by `&mut` rather than by value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion primitive (non-poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`] (guard passed by `&mut`).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_by_reference() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
