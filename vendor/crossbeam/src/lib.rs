//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`: multi-producer multi-consumer channels
//! with crossbeam's semantics (cloneable receivers, disconnect on last
//! drop of either side), implemented with a mutex + condvars. Throughput
//! is adequate for the workloads here — the hot paths of this workspace
//! move fabs, not channel messages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// MPMC channels in the style of `crossbeam-channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error on [`Sender::send`]: all receivers disconnected.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error on [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error on [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Errors if every
        /// receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Send without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives. Errors once the
        /// channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// Create a bounded channel with capacity `cap` (min 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnected_sender_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
        }

        #[test]
        fn multi_consumer_drains_everything() {
            let (tx, rx) = bounded(4);
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0u32;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
