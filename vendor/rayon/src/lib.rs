//! Offline stand-in for `rayon`.
//!
//! Implements the small parallel-iterator surface this workspace uses —
//! `slice.par_iter_mut().enumerate().for_each(..)`, `slice.par_iter()`,
//! and `range.into_par_iter().map(..).collect()` — on top of
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! hardware thread. Unlike real rayon there is no persistent pool, so
//! each call pays thread-spawn cost; callers on fine-grained data should
//! gate parallelism on problem size (the AMR exchange path does).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Import this to get `par_iter_mut` / `into_par_iter` in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn threads_for(n: usize) -> usize {
    if n < 2 {
        1
    } else {
        current_num_threads().min(n)
    }
}

fn join_all<R>(handles: Vec<std::thread::ScopedJoinHandle<'_, R>>) -> Vec<R> {
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        })
        .collect()
}

/// `par_iter_mut` on slices (and anything derefing to a slice).
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over mutable items.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }
}

/// `par_iter` on slices (and anything derefing to a slice).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over shared items.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { items: self.items }
    }

    /// Run `f` on every item, in parallel chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        EnumerateMut { items: self.items }.for_each(|(_, item)| f(item));
    }
}

/// Enumerated parallel iterator over `(usize, &mut T)`.
pub struct EnumerateMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Run `f` on every `(index, item)` pair, in parallel chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let n = self.items.len();
        let nt = threads_for(n);
        if nt <= 1 {
            for (i, item) in self.items.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let chunk = n.div_ceil(nt);
        let f = &f;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nt);
            for (ci, items) in self.items.chunks_mut(chunk).enumerate() {
                handles.push(s.spawn(move || {
                    for (j, item) in items.iter_mut().enumerate() {
                        f((ci * chunk + j, item));
                    }
                }));
            }
            join_all(handles);
        });
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Run `f` on every item, in parallel chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let n = self.items.len();
        let nt = threads_for(n);
        if nt <= 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        let chunk = n.div_ceil(nt);
        let f = &f;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nt);
            for items in self.items.chunks(chunk) {
                handles.push(s.spawn(move || {
                    for item in items {
                        f(item);
                    }
                }));
            }
            join_all(handles);
        });
    }

    /// Map every item through `f`, preserving order.
    pub fn map<R, F>(self, f: F) -> SliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        SliceMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator over a slice.
pub struct SliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> SliceMap<'a, T, F> {
    /// Collect mapped results in item order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let f = &self.f;
        let parts = run_indexed(self.items.len(), |i| f(&self.items[i]));
        C::from_ordered_parts(parts)
    }
}

/// `into_par_iter` for index ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangePar;
    fn into_par_iter(self) -> RangePar {
        RangePar { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangePar {
    range: Range<usize>,
}

impl RangePar {
    /// Map every index through `f`, preserving order.
    pub fn map<R, F>(self, f: F) -> RangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        RangeMap {
            range: self.range,
            f,
        }
    }

    /// Run `f` on every index, in parallel chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        run_indexed(n, |i| f(start + i));
    }
}

/// Mapped parallel iterator over a range.
pub struct RangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> RangeMap<F> {
    /// Collect mapped results in index order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let start = self.range.start;
        let n = self.range.end.saturating_sub(start);
        let f = &self.f;
        let parts = run_indexed(n, |i| f(start + i));
        C::from_ordered_parts(parts)
    }
}

/// Evaluate `f(0..n)` across threads; returns per-chunk results in order.
fn run_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<Vec<R>> {
    let nt = threads_for(n);
    if nt <= 1 {
        return vec![(0..n).map(f).collect()];
    }
    let chunk = n.div_ceil(nt);
    let f = &f;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(nt);
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + chunk).min(n);
            handles.push(s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()));
            lo = hi;
        }
        join_all(handles)
    })
}

/// Types a parallel iterator can collect into.
pub trait FromParallelIterator<R> {
    /// Build from ordered chunks of results.
    fn from_ordered_parts(parts: Vec<Vec<R>>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered_parts(parts: Vec<Vec<R>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0usize; 1000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..997).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out.len(), 997);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * i));
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let mut v = vec![7usize];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![8]);
    }
}
