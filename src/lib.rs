//! # xlayer — cross-layer adaptive data management for coupled workflows
//!
//! A from-scratch Rust reproduction of *Jin et al., "Using Cross-Layer
//! Adaptations for Dynamic Data Management in Large Scale Coupled
//! Scientific Workflows"* (SC '13): an autonomic runtime that adapts, at
//! simulation time, (1) the spatial resolution of analyzed data, (2) the
//! in-situ/in-transit placement of analysis kernels, and (3) the
//! allocation of in-transit staging resources — individually or
//! coordinated cross-layer.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`adapt`] (`xlayer-core`) — monitor, adaptation engine, policies;
//! * [`amr`] — the Chombo-like block-structured AMR substrate;
//! * [`solvers`] — the Polytropic Gas and Advection–Diffusion workloads;
//! * [`viz`] — marching cubes, per-block entropy, down-sampling;
//! * [`staging`] — the DataSpaces-like staging substrate;
//! * [`net`] — the staging wire protocol, TCP staging service and
//!   pooled retrying client (DART's transport, made literal);
//! * [`platform`] — machine models, DES engine, cost models, metrics;
//! * [`workflow`] — the coupled native and modeled-scale workflow runtimes.
//!
//! See `examples/quickstart.rs` for a minimal end-to-end run and
//! DESIGN.md / EXPERIMENTS.md for the paper-reproduction index.

pub use xlayer_core as adapt;

pub use xlayer_amr as amr;
pub use xlayer_net as net;
pub use xlayer_platform as platform;
pub use xlayer_solvers as solvers;
pub use xlayer_staging as staging;
pub use xlayer_viz as viz;
pub use xlayer_workflow as workflow;
