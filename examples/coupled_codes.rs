//! Coupled scientific codes through the staging space — the paper's title
//! scenario: a producer simulation publishes versioned fields, while a
//! separately-running consumer code subscribes to its region of interest
//! and reacts as data is pushed (the DataSpaces pub/sub coupling pattern).
//!
//! ```sh
//! cargo run --release --example coupled_codes
//! ```

use std::sync::Arc;
use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, IntVect, ProblemDomain};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer::staging::{DataObject, DataSpace, PubSubSpace, Sharding};
use xlayer::viz::stats::BlockStats;

fn main() {
    const STEPS: u64 = 10;
    let space = Arc::new(DataSpace::new(4, 256 << 20, Sharding::BboxHash));
    let pubsub = Arc::new(PubSubSpace::new(Arc::clone(&space)));

    // Consumer code: subscribes to the lower-half region of the producer's
    // "temperature" field and tracks descriptive statistics per version —
    // the §5.2.4 statistics service, coupled push-mode.
    let roi = IBox::new(IntVect::new(0, 0, 0), IntVect::new(23, 23, 11));
    let sub = pubsub.subscribe("temperature", Some(roi));
    let consumer = std::thread::spawn(move || {
        let mut report = Vec::new();
        let mut seen = 0;
        while let Ok(obj) = sub.rx.recv() {
            let fab = obj.to_fab();
            let stats = BlockStats::compute(&fab, 0, &obj.desc.bbox.intersect(&roi));
            report.push((obj.desc.key.version, stats));
            seen += 1;
            if seen == STEPS {
                break;
            }
        }
        report
    });

    // Producer code: an AMR advection run publishing its base level each
    // step (one object per step for the demo).
    let n = 24i64;
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([0.0, 0.0, 1.5]), 0.01, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 1,
            base_max_box: 24,
            ..Default::default()
        },
        solver,
        DriverConfig {
            regrid_interval: 0,
            ..Default::default()
        },
    );
    // A hot blob starting in the consumer's region, advecting out of it.
    ScalarProblem::Gaussian {
        center: [12.0, 12.0, 6.0],
        sigma: 3.0,
    }
    .init_hierarchy(&mut sim.hierarchy);

    for _ in 0..STEPS {
        let stats = sim.advance();
        let level = sim.hierarchy.level(0);
        let obj = DataObject::from_fab(
            "temperature",
            stats.step,
            level.fab(0),
            0,
            &level.valid_box(0),
            0,
        );
        pubsub.publish(obj).expect("publish");
        // keep staging memory bounded
        space.evict_before("temperature", stats.step.saturating_sub(2));
    }

    let report = consumer.join().expect("consumer");
    println!(
        "consumer saw {} versions of its region of interest:",
        report.len()
    );
    println!("version   mean      max      (blob advects out of the ROI)");
    for (v, s) in &report {
        println!("{v:>7}   {:.4}   {:.4}", s.mean, s.max);
    }
    // The blob moves +z out of the ROI: its mean there must decay.
    let first = report.first().expect("versions").1.mean;
    let last = report.last().expect("versions").1.mean;
    println!(
        "\nROI mean fell {:.1}% as the feature left the coupled region.",
        100.0 * (1.0 - last / first)
    );
    assert!(last < first, "blob should advect out of the ROI");
}
