//! Quickstart: a coupled AMR simulation + isosurface visualization workflow
//! with adaptive analysis placement, running natively in-process.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer::workflow::{NativeConfig, NativeWorkflow};

fn main() {
    // 1. An AMR advection–diffusion simulation: a Gaussian blob translating
    //    through a periodic 24³ box, with one refinement level tracking it.
    let n = 24i64;
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.005, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks: 4,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 3.0,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();

    // 2. Couple it to the visualization service through the staging space,
    //    with the middleware adaptation deciding in-situ vs in-transit.
    let mut wf = NativeWorkflow::new(
        sim,
        NativeConfig {
            iso_value: 0.4,
            workers: 2,
            ..Default::default()
        },
    );

    // 3. Run ten steps.
    println!("step  placement  levels-bytes  staged-bytes");
    for _ in 0..10 {
        let log = wf.step();
        println!(
            "{:>4}  {:<9}  {:>12}  {:>12}",
            log.step,
            format!("{:?}", log.placement),
            log.raw_bytes,
            log.moved_bytes
        );
    }

    // 4. Collect the analysis outcomes.
    let (steps, outcomes, moved) = wf.finish();
    println!("\nran {} steps; staged {} bytes total", steps.len(), moved);
    for o in &outcomes {
        println!(
            "step {:>2}: {:?} extracted {} triangles in {:.1} ms",
            o.version,
            o.placement,
            o.triangles,
            o.seconds * 1e3
        );
    }
    let total: usize = outcomes.iter().map(|o| o.triangles).sum();
    println!("\ntotal isosurface triangles across the run: {total}");
    assert!(total > 0, "the blob's isosurface should be non-empty");
}
