//! The traditional post-processing pipeline, natively: run the blast wave,
//! dump a plotfile per step to disk, then read everything back and extract
//! isosurfaces "offline" — the I/O-bound workflow that in-situ/in-transit
//! processing replaces.
//!
//! ```sh
//! cargo run --release --example postprocess_plotfiles
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;
use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::plotfile::{read_plotfile, write_plotfile};
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::euler::RHO;
use xlayer::solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer::viz::extract_level;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("xlayer_plotfiles");
    std::fs::create_dir_all(&dir)?;

    // --- simulation phase: compute + blocking plotfile writes ---
    let n = 16i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks: 4,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    let t0 = Instant::now();
    let mut io_secs = 0.0;
    let mut files = Vec::new();
    let mut total_bytes = 0u64;
    for _ in 0..8 {
        let stats = sim.advance();
        let path = dir.join(format!("plt{:04}.xpf", stats.step));
        let ti = Instant::now();
        let mut w = BufWriter::new(File::create(&path)?);
        total_bytes += write_plotfile(&mut w, &sim.hierarchy, stats.step, sim.time())?;
        io_secs += ti.elapsed().as_secs_f64();
        files.push(path);
    }
    let sim_secs = t0.elapsed().as_secs_f64() - io_secs;
    println!(
        "simulation phase: {:.2}s compute + {:.2}s plotfile writes ({} files, {:.2} MB)",
        sim_secs,
        io_secs,
        files.len(),
        total_bytes as f64 / (1 << 20) as f64
    );

    // --- post-processing phase: read back + analyze ---
    let t1 = Instant::now();
    let mut total_tris = 0usize;
    for path in &files {
        let mut r = BufReader::new(File::open(path)?);
        let p = read_plotfile(&mut r)?;
        for (l, level) in p.levels.iter().enumerate() {
            let dx = 1.0 / p.ref_ratio.pow(l as u32) as f64;
            let surfaces = extract_level(level, RHO, 0.9, dx);
            total_tris += surfaces
                .iter()
                .map(|s| s.mesh.num_triangles())
                .sum::<usize>();
        }
    }
    println!(
        "post-processing phase: {:.2}s to re-read and extract {} isosurface triangles",
        t1.elapsed().as_secs_f64(),
        total_tris
    );
    println!("\nEvery byte crossed the filesystem twice — the cost the paper's");
    println!("simulation-time (in-situ/in-transit) pipeline avoids.");

    for f in files {
        let _ = std::fs::remove_file(f);
    }
    Ok(())
}
