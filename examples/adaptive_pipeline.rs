//! Compare analysis-placement strategies at virtual scale: static in-situ,
//! static in-transit, local (middleware) adaptation and global (cross-layer)
//! adaptation — a miniature of the paper's Figs. 7/10 on a 4K-core Titan
//! partition, driven by a real AMR run.
//!
//! ```sh
//! cargo run --release --example adaptive_pipeline
//! ```

use xlayer::adapt::{EngineConfig, UserHints};
use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer::workflow::{AmrDriver, ModeledWorkflow, Strategy, WorkflowConfig, WorkloadDriver};

fn trace(steps: usize) -> Vec<xlayer::workflow::DrivePoint> {
    let n = 16i64;
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(
        VelocityField::Vortex {
            center: [8.0, 8.0],
            strength: 0.08,
        },
        0.01,
        n,
    );
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 4,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [8.0; 3],
        sigma: 2.0,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    let mut driver = AmrDriver::new(sim);
    (0..steps).map(|_| driver.next_point()).collect()
}

fn main() {
    const STEPS: u64 = 40;
    println!("recording a real AMR driver trace ({STEPS} steps)…");
    let points = trace(STEPS as usize);
    let scale = (1024.0 * 1024.0 * 1024.0) / (16.0f64.powi(3)); // virtual 1024³ domain

    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "strategy", "sim (s)", "overhead (s)", "total (s)", "moved (GB)", "insitu/it"
    );
    for strategy in [
        Strategy::StaticInSitu,
        Strategy::StaticInTransit,
        Strategy::Adaptive(EngineConfig::middleware_only()),
        Strategy::Adaptive(EngineConfig::global()),
    ] {
        let mut cfg = WorkflowConfig::titan_advect(4096, strategy);
        cfg.scale = scale;
        if matches!(strategy, Strategy::Adaptive(c) if c == EngineConfig::global()) {
            cfg.hints = UserHints::paper_fig5_schedule(STEPS / 2);
        }
        let wf = ModeledWorkflow::new(cfg);
        let mut d = xlayer::workflow::TraceDriver::new(points.clone());
        let r = wf.run(&mut d, STEPS);
        let (insitu, intransit) = r.placement_counts();
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>7}/{}",
            strategy.label(),
            r.end_to_end.sim_time,
            r.end_to_end.overhead,
            r.end_to_end.total(),
            r.data_moved() as f64 / (1u64 << 30) as f64,
            insitu,
            intransit
        );
    }
    println!("\nAdaptive placement minimizes time-to-solution; the global cross-layer");
    println!("run also cuts data movement via application-layer reduction (paper Figs. 7–11).");
}
