//! The paper's memory-intensive workload end-to-end: a 3-D Polytropic Gas
//! blast wave on a dynamically refining hierarchy, with in-situ marching
//! cubes and per-rank memory profiling (the Fig. 1 observables).
//!
//! ```sh
//! cargo run --release --example blast_wave_insitu
//! ```

use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::memory::MemoryHistory;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::euler::RHO;
use xlayer::solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer::viz::{extract_level, merge_surfaces};

fn main() {
    let n = 20i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 3,
            base_max_box: 8,
            nranks: 8,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [n as f64 / 2.0; 3],
        radius: n as f64 / 6.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    let mut history = MemoryHistory::new();
    println!("step    dt      levels  cells    bytes     max-rank-MB  triangles");
    for _ in 0..12 {
        let stats = sim.advance();
        let profile = sim.memory_profile();
        history.record(profile.clone());

        // In-situ visualization: density isosurface at ρ = 0.8 over every
        // level (the refined levels resolve the shock front).
        sim.hierarchy.fill_ghosts();
        let mut tris = 0;
        for l in 0..sim.hierarchy.num_levels() {
            let dx = 1.0 / sim.hierarchy.ref_ratio().pow(l as u32) as f64;
            let surfaces = extract_level(sim.hierarchy.level(l), RHO, 0.8, dx);
            tris += merge_surfaces(&surfaces).num_triangles();
        }
        println!(
            "{:>4}  {:.4}  {:>6}  {:>7}  {:>8}  {:>11.2}  {:>9}",
            stats.step,
            stats.dt,
            stats.levels,
            stats.cells_advanced,
            stats.data_bytes,
            profile.max() as f64 / (1 << 20) as f64,
            tris
        );
    }

    let peaks = history.peak_per_rank();
    println!("\nper-rank peak memory (the Fig. 1 distribution):");
    for (r, p) in peaks.iter().enumerate() {
        println!("  rank {r}: {:.2} MB", *p as f64 / (1 << 20) as f64);
    }
    let spread = *peaks.iter().max().expect("ranks") as f64
        / (*peaks.iter().min().expect("ranks") as f64).max(1.0);
    println!("imbalance across ranks: {spread:.1}x — the reason static staging plans fail");
}
