//! Entropy-based adaptive down-sampling (paper §5.2.1, Fig. 6): compute
//! per-block Shannon entropy of a real Polytropic Gas density field, reduce
//! low-entropy blocks aggressively, and show the isosurface is preserved
//! where it matters.
//!
//! ```sh
//! cargo run --release --example entropy_downsampling
//! ```

use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::euler::RHO;
use xlayer::solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer::viz::downsample::{downsample_fab, reconstruction_mse};
use xlayer::viz::entropy::{block_entropy, factors_from_entropy, DEFAULT_BINS};
use xlayer::viz::extract_block;

fn main() {
    // Evolve a blast so the density field develops structure.
    let n = 16i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 4,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    for _ in 0..10 {
        sim.advance();
    }
    sim.hierarchy.fill_ghosts();

    // Per-block entropy of the base level's density.
    let level = sim.hierarchy.level(0);
    let entropies: Vec<f64> = (0..level.len())
        .map(|i| block_entropy(level.fab(i), RHO, &level.valid_box(i), DEFAULT_BINS))
        .collect();
    let h_lo = entropies.iter().cloned().fold(f64::INFINITY, f64::min);
    let h_hi = entropies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "block entropies: {h_lo:.2} – {h_hi:.2} bits over {} blocks",
        entropies.len()
    );

    // Low-entropy blocks reduced 4× per dimension, mid 2×, high kept.
    let t1 = h_lo + 0.4 * (h_hi - h_lo);
    let t2 = h_lo + 0.7 * (h_hi - h_lo);
    let factors = factors_from_entropy(&entropies, &[(0.0, 4), (t1, 2), (t2, 1)]);

    let iso = 0.5 * (level.min(RHO) + level.max(RHO));
    println!("\nblock  entropy  factor  tris(full)  tris(adapted)  MSE");
    let mut kept_high = 0usize;
    for i in 0..level.len() {
        let fab = level.fab(i);
        let region = level.valid_box(i);
        let full = extract_block(fab, RHO, &region, iso, 1.0, [0.0; 3]);
        let ds = downsample_fab(fab, RHO, factors[i]);
        let adapted = extract_block(
            &ds,
            0,
            &region.coarsen(factors[i] as i64),
            iso,
            factors[i] as f64,
            [0.0; 3],
        );
        if entropies[i] >= t2 {
            kept_high += 1;
            assert_eq!(factors[i], 1, "high-entropy block must keep resolution");
        }
        println!(
            "{:>5}  {:>7.2}  {:>6}  {:>10}  {:>13}  {:.2e}",
            i,
            entropies[i],
            factors[i],
            full.num_triangles(),
            adapted.num_triangles(),
            reconstruction_mse(fab, RHO, factors[i]),
        );
    }
    println!("\n{kept_high} high-entropy blocks kept at full resolution — the Fig. 6 behaviour:");
    println!("fine structure survives exactly where the data carries information.");
}
