//! Cross-crate integration: coupled producer/consumer codes exchanging real
//! solver data through the staging space with version coordination — the
//! DataSpaces usage pattern the adaptation runtime is built on.

use std::sync::Arc;
use std::time::Duration;
use xlayer::amr::{Fab, IBox, IntVect};
use xlayer::staging::{AsyncStager, DataObject, DataSpace, Sharding, VersionGate};
use xlayer::viz::extract_block;

/// A producer thread writes versioned field slabs; a consumer extracts
/// isosurfaces from them as versions are published.
#[test]
fn coupled_producer_consumer_via_version_gate() {
    let space = Arc::new(DataSpace::new(4, 64 << 20, Sharding::BboxHash));
    let gate = Arc::new(VersionGate::new());
    const VERSIONS: u64 = 8;

    let producer = {
        let space = Arc::clone(&space);
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            for v in 1..=VERSIONS {
                // A moving spherical field: radius grows with the version.
                let b = IBox::cube(16);
                let mut fab = Fab::new(b, 1);
                for iv in b.cells() {
                    let r = ((iv[0] - 8).pow(2) + (iv[1] - 8).pow(2) + (iv[2] - 8).pow(2)) as f64;
                    fab.set(iv, 0, r.sqrt() - (2.0 + v as f64 * 0.5));
                }
                // two slabs to exercise multi-object assembly
                let lo = IBox::new(IntVect::new(0, 0, 0), IntVect::new(15, 15, 7));
                let hi = IBox::new(IntVect::new(0, 0, 8), IntVect::new(15, 15, 15));
                space
                    .put(DataObject::from_fab("phi", v, &fab, 0, &lo, 0))
                    .expect("staging put");
                space
                    .put(DataObject::from_fab("phi", v, &fab, 0, &hi, 1))
                    .expect("staging put");
                gate.publish(v);
            }
        })
    };

    let consumer = {
        let space = Arc::clone(&space);
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            let mut areas = Vec::new();
            for v in 1..=VERSIONS {
                gate.wait_for(v);
                let region = IBox::cube(16);
                let (fab, bytes) = space.get_region("phi", v, &region);
                assert!(bytes > 0, "version {v} not found after publish");
                let mesh = extract_block(&fab, 0, &region, 0.0, 1.0, [0.0; 3]);
                areas.push(mesh.area());
                space.evict_before("phi", v); // keep memory bounded
            }
            areas
        })
    };

    producer.join().expect("producer");
    let areas = consumer.join().expect("consumer");
    // The sphere grows ⇒ extracted area grows monotonically.
    for w in areas.windows(2) {
        assert!(w[1] > w[0], "areas not monotone: {areas:?}");
    }
}

#[test]
fn async_stager_with_consumer_drains_cleanly() {
    let space = Arc::new(DataSpace::new(2, 32 << 20, Sharding::RoundRobin));
    let stager = AsyncStager::new(Arc::clone(&space), 2, 16);
    let b = IBox::cube(8);
    for v in 1..=20 {
        let fab = Fab::filled(b, 1, v as f64);
        stager
            .put(DataObject::from_fab("u", v, &fab, 0, &b, 0))
            .unwrap();
    }
    let (delivered, rejected) = stager.drain().unwrap();
    assert_eq!(delivered + rejected, 20);
    assert_eq!(rejected, 0, "32 MB per server fits 20 × 4 KB objects");
    for v in 1..=20 {
        let objs = space.get("u", v, None);
        assert_eq!(objs.len(), 1);
        let fab = objs[0].to_fab();
        assert_eq!(fab.get(IntVect::ZERO, 0), v as f64);
    }
}

#[test]
fn eviction_under_memory_pressure_keeps_newest() {
    // Server memory fits only ~2 versions; the coupled pattern (evict after
    // consume) keeps the pipeline flowing.
    let b = IBox::cube(16); // 4096 cells = 32 KB
    let space = DataSpace::new(1, 80 << 10, Sharding::RoundRobin);
    let fab = Fab::filled(b, 1, 1.0);
    assert!(space
        .put(DataObject::from_fab("u", 1, &fab, 0, &b, 0))
        .is_ok());
    assert!(space
        .put(DataObject::from_fab("u", 2, &fab, 0, &b, 0))
        .is_ok());
    // Third version overflows…
    assert!(space
        .put(DataObject::from_fab("u", 3, &fab, 0, &b, 0))
        .is_err());
    // …until the consumer evicts the consumed version.
    space.evict_before("u", 2);
    assert!(space
        .put(DataObject::from_fab("u", 3, &fab, 0, &b, 0))
        .is_ok());
    assert!(space.get("u", 1, None).is_empty());
    assert_eq!(space.get("u", 3, None).len(), 1);
}

#[test]
fn gate_timeout_reports_missing_version() {
    let gate = VersionGate::new();
    gate.publish(3);
    assert!(gate.wait_for_timeout(3, Duration::from_millis(5)));
    assert!(!gate.wait_for_timeout(4, Duration::from_millis(5)));
}
