//! Cross-crate integration: miniature versions of the paper's evaluation
//! claims, run through the full modeled-scale pipeline (real AMR driver →
//! monitor → engine → virtual timeline).

use xlayer::adapt::{EngineConfig, UserHints};
use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer::workflow::{
    AmrDriver, DrivePoint, ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig, WorkloadDriver,
};

fn real_trace(steps: usize) -> Vec<DrivePoint> {
    let n = 16i64;
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(
        VelocityField::Vortex {
            center: [8.0, 8.0],
            strength: 0.08,
        },
        0.01,
        n,
    );
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 4,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [8.0; 3],
        sigma: 2.0,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    let mut d = AmrDriver::new(sim);
    (0..steps).map(|_| d.next_point()).collect()
}

fn run(
    points: &[DrivePoint],
    strategy: Strategy,
    hints: Option<UserHints>,
) -> xlayer::workflow::WorkflowReport {
    let mut cfg = WorkflowConfig::titan_advect(4096, strategy);
    cfg.scale = (1u64 << 30) as f64 / 4096.0; // virtual 1024³-ish
    if let Some(h) = hints {
        cfg.hints = h;
    }
    let wf = ModeledWorkflow::new(cfg);
    let mut d = TraceDriver::new(points.to_vec());
    wf.run(&mut d, points.len() as u64)
}

#[test]
fn fig7_claim_adaptive_minimizes_time_to_solution() {
    let points = real_trace(40);
    let insitu = run(&points, Strategy::StaticInSitu, None);
    let intransit = run(&points, Strategy::StaticInTransit, None);
    let local = run(
        &points,
        Strategy::Adaptive(EngineConfig::middleware_only()),
        None,
    );
    assert!(
        local.end_to_end.total() <= insitu.end_to_end.total() * 1.01,
        "adaptive {} vs in-situ {}",
        local.end_to_end.total(),
        insitu.end_to_end.total()
    );
    assert!(
        local.end_to_end.total() <= intransit.end_to_end.total() * 1.01,
        "adaptive {} vs in-transit {}",
        local.end_to_end.total(),
        intransit.end_to_end.total()
    );
}

#[test]
fn fig8_claim_adaptive_moves_less_data() {
    let points = real_trace(40);
    let intransit = run(&points, Strategy::StaticInTransit, None);
    let local = run(
        &points,
        Strategy::Adaptive(EngineConfig::middleware_only()),
        None,
    );
    assert!(local.data_moved() < intransit.data_moved());
    // every in-transit byte is accounted: moved = Σ analysis_bytes of
    // in-transit steps
    let expect: u64 = local
        .steps
        .iter()
        .filter(|s| s.placement == xlayer::adapt::Placement::InTransit)
        .map(|s| s.analysis_bytes)
        .sum();
    assert_eq!(local.data_moved(), expect);
}

#[test]
fn fig10_claim_global_beats_local() {
    let points = real_trace(40);
    let hints = UserHints::paper_fig5_schedule(20);
    let local = run(
        &points,
        Strategy::Adaptive(EngineConfig::middleware_only()),
        None,
    );
    let global = run(
        &points,
        Strategy::Adaptive(EngineConfig::global()),
        Some(hints),
    );
    assert!(
        global.end_to_end.overhead < local.end_to_end.overhead,
        "global overhead {} >= local {}",
        global.end_to_end.overhead,
        local.end_to_end.overhead
    );
    // Fig. 11 companion claim: reduction dominates data movement.
    assert!(global.data_moved() < local.data_moved());
    // Table 2 companion claim: global runs *more* steps in-transit.
    assert!(global.placement_counts().1 >= local.placement_counts().1);
}

#[test]
fn static_reports_are_internally_consistent() {
    let points = real_trace(10);
    for strategy in [Strategy::StaticInSitu, Strategy::StaticInTransit] {
        let r = run(&points, strategy, None);
        assert_eq!(r.steps.len(), 10);
        assert_eq!(r.end_to_end.steps, 10);
        assert!(r.end_to_end.total() >= r.end_to_end.sim_time);
        let (a, b) = r.placement_counts();
        assert_eq!(a + b, 10);
    }
}

#[test]
fn extensions_compose_without_breaking_invariants() {
    // Temporal skipping + ROI + hybrid splits, all at once: the accounting
    // identities and orderings must still hold.
    let points = real_trace(24);
    let mut full = WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::global()));
    full.scale = (1u64 << 30) as f64 / 4096.0;
    let full_r = {
        let wf = ModeledWorkflow::new(full);
        let mut d = TraceDriver::new(points.clone());
        wf.run(&mut d, 24)
    };

    let mut engine = EngineConfig::global();
    engine.enable_hybrid = true;
    let mut trimmed = WorkflowConfig::titan_advect(4096, Strategy::Adaptive(engine));
    trimmed.scale = (1u64 << 30) as f64 / 4096.0;
    trimmed.hints.max_analysis_interval = 4;
    trimmed.hints.analysis_budget_frac = 0.02;
    trimmed.hints.roi_fraction = 0.5;
    let trimmed_r = {
        let wf = ModeledWorkflow::new(trimmed);
        let mut d = TraceDriver::new(points.clone());
        wf.run(&mut d, 24)
    };

    // Same simulation, fewer analyzed bytes moved, consistent accounting.
    assert!((trimmed_r.end_to_end.sim_time - full_r.end_to_end.sim_time).abs() < 1e-9);
    assert!(trimmed_r.data_moved() < full_r.data_moved());
    let analyzed = trimmed_r.steps.iter().filter(|s| s.analyzed).count();
    assert!(analyzed <= 24);
    for s in &trimmed_r.steps {
        assert!(s.analysis_bytes <= s.raw_bytes / 2 + 1, "ROI not applied");
    }
    assert!(trimmed_r.energy.total() <= full_r.energy.total());
}

#[test]
fn sim_time_is_strategy_independent() {
    // The simulation compute itself is identical across strategies; only
    // overhead differs.
    let points = real_trace(15);
    let a = run(&points, Strategy::StaticInSitu, None);
    let b = run(&points, Strategy::StaticInTransit, None);
    let c = run(
        &points,
        Strategy::Adaptive(EngineConfig::middleware_only()),
        None,
    );
    assert!((a.end_to_end.sim_time - b.end_to_end.sim_time).abs() < 1e-9);
    assert!((a.end_to_end.sim_time - c.end_to_end.sim_time).abs() < 1e-9);
}
