//! End-to-end remote staging: the native workflow run once with the
//! in-process staging space and once through `StagingService` +
//! `RemoteStager` on a loopback socket, asserting bit-identical analysis
//! results and matching transport accounting. This is the paper's
//! deployment claim in test form — moving the staging area onto dedicated
//! nodes must change *where* the data sits, never *what* the in-transit
//! analysis computes.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use xlayer::adapt::Placement;
use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::net::cluster::StagingCluster;
use xlayer::net::service::{ServiceConfig, StagingService};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer::staging::Sharding;
use xlayer::workflow::native::{AnalysisOutcome, NativeConfig, NativeWorkflow};
use xlayer::workflow::StepLog;

fn blob_sim(n: i64) -> AmrSimulation<AdvectDiffuseSolver> {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

struct RunResult {
    steps: Vec<StepLog>,
    outcomes: Vec<AnalysisOutcome>,
    moved: u64,
    delivered: u64,
    rejected: u64,
    failed: u64,
}

fn run(remote: Option<String>, steps: usize) -> RunResult {
    let cfg = NativeConfig {
        iso_value: 0.4,
        placement_override: Some(Placement::InTransit),
        remote,
        ..Default::default()
    };
    let mut wf = NativeWorkflow::new(blob_sim(16), cfg);
    for _ in 0..steps {
        wf.step();
    }
    let stats = wf
        .transport_stats()
        .expect("transport active before finish");
    let (steps, outcomes, moved) = wf.finish();
    RunResult {
        steps,
        outcomes,
        moved,
        delivered: stats.delivered.load(Ordering::Relaxed),
        rejected: stats.rejected.load(Ordering::Relaxed),
        failed: stats.failed.load(Ordering::Relaxed),
    }
}

/// Per-version (triangles, mesh_bytes): totals are invariant under the
/// order in which a version's object parts were stored, which concurrent
/// puts do not preserve.
fn by_version(outcomes: &[AnalysisOutcome]) -> BTreeMap<u64, (usize, u64)> {
    outcomes
        .iter()
        .map(|o| (o.version, (o.triangles, o.mesh_bytes)))
        .collect()
}

#[test]
fn remote_workflow_is_bit_identical_to_local() {
    let service = StagingService::start(ServiceConfig {
        servers: 2,
        memory_per_server: 256 << 20,
        sharding: Sharding::RoundRobin,
        ..ServiceConfig::default()
    })
    .expect("bind loopback service");
    let addr = service.local_addr().to_string();

    const STEPS: usize = 3;
    let local = run(None, STEPS);
    let remote = run(Some(addr), STEPS);

    // Identical analysis results, version by version. Triangle counts and
    // mesh byte totals pin the marching-cubes output; payloads travel as
    // f64 bit patterns, so any wire-introduced perturbation would show.
    assert_eq!(local.outcomes.len(), STEPS);
    assert_eq!(remote.outcomes.len(), STEPS);
    let lv = by_version(&local.outcomes);
    let rv = by_version(&remote.outcomes);
    assert_eq!(lv, rv, "analysis results differ between local and remote");
    assert!(
        lv.values().all(|&(tris, _)| tris > 0),
        "degenerate surfaces"
    );

    // Identical movement and transport accounting: every staged object was
    // delivered on both paths, none rejected or failed.
    assert_eq!(local.moved, remote.moved);
    let per_step_local: Vec<u64> = local.steps.iter().map(|s| s.moved_bytes).collect();
    let per_step_remote: Vec<u64> = remote.steps.iter().map(|s| s.moved_bytes).collect();
    assert_eq!(per_step_local, per_step_remote);
    assert_eq!(
        (local.delivered, local.rejected, local.failed),
        (remote.delivered, remote.rejected, remote.failed),
        "transport accounting differs"
    );
    assert!(remote.delivered > 0, "nothing went over the wire");
    assert_eq!(remote.failed, 0);

    // The service actually carried the traffic: as many puts as objects
    // delivered, and the analysis workers' evictions emptied the space.
    let snap = service.stats().snapshot(service.space(), service.pool());
    assert_eq!(snap.puts, remote.delivered);
    assert_eq!(snap.rejected_oom, 0);
    assert_eq!(snap.used, 0, "remote space not drained after analysis");

    service.shutdown();
}

#[test]
fn sharded_remote_workflow_is_bit_identical_to_local() {
    // Three independent staging services presented as one sharded cluster:
    // the workflow's `remote:` backend takes the comma-separated shard
    // list, routes puts by object region, and scatter/gathers reads — and
    // none of that may change what the in-transit analysis computes.
    let cluster = StagingCluster::start(
        3,
        &ServiceConfig {
            servers: 1,
            memory_per_server: 256 << 20,
            sharding: Sharding::RoundRobin,
            ..ServiceConfig::default()
        },
    )
    .expect("start loopback cluster");

    const STEPS: usize = 3;
    let local = run(None, STEPS);
    let sharded = run(Some(cluster.addr_list()), STEPS);

    assert_eq!(local.outcomes.len(), STEPS);
    assert_eq!(sharded.outcomes.len(), STEPS);
    let lv = by_version(&local.outcomes);
    let sv = by_version(&sharded.outcomes);
    assert_eq!(lv, sv, "analysis results differ between local and sharded");
    assert!(
        lv.values().all(|&(tris, _)| tris > 0),
        "degenerate surfaces"
    );

    // Identical movement and transport accounting across the paths.
    assert_eq!(local.moved, sharded.moved);
    let per_step_local: Vec<u64> = local.steps.iter().map(|s| s.moved_bytes).collect();
    let per_step_sharded: Vec<u64> = sharded.steps.iter().map(|s| s.moved_bytes).collect();
    assert_eq!(per_step_local, per_step_sharded);
    assert_eq!(
        (local.delivered, local.rejected, local.failed),
        (sharded.delivered, sharded.rejected, sharded.failed),
        "transport accounting differs"
    );
    assert!(sharded.delivered > 0, "nothing went over the wire");
    assert_eq!(sharded.failed, 0);

    // Per-shard accounting sums to the cluster totals: every delivered
    // object was counted by exactly one shard, and the analysis workers'
    // evictions drained every shard.
    let snaps: Vec<_> = cluster.snapshots().into_iter().flatten().collect();
    assert_eq!(snaps.len(), 3);
    assert_eq!(snaps.iter().map(|s| s.puts).sum::<u64>(), sharded.delivered);
    assert_eq!(snaps.iter().map(|s| s.rejected_oom).sum::<u64>(), 0);
    assert_eq!(
        snaps.iter().map(|s| s.used).sum::<u64>(),
        0,
        "cluster not drained after analysis"
    );
    // The traffic really was spread: with region routing over many grids,
    // no single shard carried everything.
    assert!(
        snaps.iter().filter(|s| s.puts > 0).count() >= 2,
        "puts all landed on one shard: {:?}",
        snaps.iter().map(|s| s.puts).collect::<Vec<_>>()
    );

    cluster.shutdown();
}

#[test]
fn unresolvable_remote_degrades_to_local_staging() {
    // A remote address that cannot resolve must not kill the workflow —
    // construction falls back to the in-process space and the run
    // completes normally.
    let result = run(Some("@definitely-not-an-address@:0".to_string()), 2);
    assert_eq!(result.outcomes.len(), 2);
    assert!(result.outcomes.iter().all(|o| o.triangles > 0));
    assert_eq!(result.failed, 0);
}
