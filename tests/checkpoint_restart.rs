//! Checkpoint/restart through the plotfile format: a simulation resumed
//! from a checkpoint must continue bit-for-bit identically to one that
//! never stopped.

use xlayer::amr::hierarchy::{AmrHierarchy, HierarchyConfig};
use xlayer::amr::plotfile::{plotfile_config, read_plotfile, write_plotfile};
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};

fn fresh_sim() -> AmrSimulation<AdvectDiffuseSolver> {
    let n = 16i64;
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks: 2,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 0, // fixed grids: restart must not depend on regrid cadence offsets
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [8.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

fn fingerprint(sim: &AmrSimulation<AdvectDiffuseSolver>) -> Vec<u64> {
    let mut out = Vec::new();
    for l in 0..sim.hierarchy.num_levels() {
        let ld = sim.hierarchy.level(l);
        for i in 0..ld.len() {
            for iv in ld.valid_box(i).cells() {
                out.push(ld.fab(i).get(iv, 0).to_bits());
            }
        }
    }
    out
}

#[test]
fn restart_continues_bit_for_bit() {
    // Reference: run 6 steps straight through.
    let mut reference = fresh_sim();
    for _ in 0..6 {
        reference.advance();
    }

    // Checkpointed: run 3, write, read, restore, run 3 more.
    let mut first_half = fresh_sim();
    for _ in 0..3 {
        first_half.advance();
    }
    let mut buf = Vec::new();
    write_plotfile(
        &mut buf,
        &first_half.hierarchy,
        first_half.step_count(),
        first_half.time(),
    )
    .expect("checkpoint write");
    let ckpt_step = first_half.step_count();
    let ckpt_time = first_half.time();
    drop(first_half);

    let p = read_plotfile(&mut buf.as_slice()).expect("checkpoint read");
    assert_eq!(p.step, ckpt_step);
    let mut config = plotfile_config(&p);
    config.base_max_box = 8;
    config.nranks = 2;
    let hierarchy = AmrHierarchy::from_levels(config, p.levels);
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.0, 16);
    let mut restored = AmrSimulation::restore(
        hierarchy,
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 0,
            ..Default::default()
        },
        p.step,
        p.time,
    );
    assert_eq!(restored.step_count(), ckpt_step);
    assert!((restored.time() - ckpt_time).abs() < 1e-15);
    for _ in 0..3 {
        restored.advance();
    }

    assert_eq!(restored.step_count(), reference.step_count());
    assert_eq!(
        fingerprint(&restored),
        fingerprint(&reference),
        "restored run diverged from the uninterrupted run"
    );
}

#[test]
fn restored_hierarchy_preserves_structure() {
    let mut sim = fresh_sim();
    for _ in 0..2 {
        sim.advance();
    }
    let mut buf = Vec::new();
    write_plotfile(&mut buf, &sim.hierarchy, 2, sim.time()).expect("write");
    let p = read_plotfile(&mut buf.as_slice()).expect("read");
    let h = AmrHierarchy::from_levels(plotfile_config(&p), p.levels);
    assert_eq!(h.num_levels(), sim.hierarchy.num_levels());
    assert_eq!(h.total_cells(), sim.hierarchy.total_cells());
    assert!((h.composite_sum(0) - sim.hierarchy.composite_sum(0)).abs() < 1e-12);
}
