//! Cross-crate integration: the full native workflow — real AMR solve,
//! real staging puts/gets, real marching cubes on worker threads,
//! middleware adaptation deciding placement.

use xlayer::adapt::{EngineConfig, Placement};
use xlayer::amr::hierarchy::HierarchyConfig;
use xlayer::amr::{IBox, ProblemDomain};
use xlayer::solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, EulerSolver, GasProblem, ScalarProblem,
    VelocityField,
};
use xlayer::workflow::{NativeConfig, NativeWorkflow};

fn blob_sim(n: i64, levels: usize) -> AmrSimulation<AdvectDiffuseSolver> {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: levels,
            base_max_box: 8,
            nranks: 2,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

#[test]
fn advect_workflow_analyzes_every_step() {
    let mut wf = NativeWorkflow::new(
        blob_sim(16, 2),
        NativeConfig {
            iso_value: 0.4,
            workers: 2,
            ..Default::default()
        },
    );
    for _ in 0..6 {
        wf.step();
    }
    let (steps, outcomes, _) = wf.finish();
    assert_eq!(steps.len(), 6);
    assert_eq!(outcomes.len(), 6);
    let versions: Vec<u64> = outcomes.iter().map(|o| o.version).collect();
    assert_eq!(
        versions,
        vec![1, 2, 3, 4, 5, 6],
        "each step analyzed once, in order"
    );
    assert!(outcomes.iter().all(|o| o.triangles > 0));
}

#[test]
fn euler_blast_workflow_end_to_end() {
    let n = 16i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks: 4,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    let mut wf = NativeWorkflow::new(
        sim,
        NativeConfig {
            // density isosurface inside the blast's range
            iso_value: 0.9,
            workers: 2,
            engine: EngineConfig::middleware_only(),
            ..Default::default()
        },
    );
    for _ in 0..5 {
        let log = wf.step();
        assert!(log.raw_bytes > 0);
    }
    let (steps, outcomes, moved) = wf.finish();
    assert_eq!(steps.len(), 5);
    assert_eq!(outcomes.len(), 5);
    // The shock front must cross the isovalue somewhere.
    assert!(outcomes.iter().any(|o| o.triangles > 0));
    // If anything ran in-transit, bytes crossed the staging space.
    let intransit = outcomes
        .iter()
        .filter(|o| o.placement == Placement::InTransit)
        .count();
    if intransit > 0 {
        assert!(moved > 0);
    }
}

#[test]
fn workflow_survives_regrids() {
    // Regrid every step: the staging objects' bounding boxes change shape
    // between versions and everything must still line up.
    let n = 16i64;
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([2.0, 0.0, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 1,
            ..Default::default()
        },
    );
    ScalarProblem::Ball {
        center: [8.0; 3],
        radius: 3.0,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();

    let mut wf = NativeWorkflow::new(sim, NativeConfig::default());
    let mut levels_seen = std::collections::HashSet::new();
    for _ in 0..6 {
        wf.step();
        levels_seen.insert(wf.sim().hierarchy.num_levels());
    }
    let (_, outcomes, _) = wf.finish();
    assert_eq!(outcomes.len(), 6);
}
