//! Numerical validation of the Polytropic Gas solver against the exact
//! Riemann solution: the Sod shock tube, the standard verification test for
//! Godunov codes. The scheme must (a) converge to the exact profile in L1
//! and (b) improve under grid refinement.

use xlayer::amr::domain::ProblemDomain;
use xlayer::amr::layout::BoxLayout;
use xlayer::amr::level_data::LevelData;
use xlayer::amr::{IBox, IntVect};
use xlayer::solvers::euler::{EulerSolver, Primitive, RHO};
use xlayer::solvers::{ExactRiemann, LevelSolver, State1d};

const GAMMA: f64 = 1.4;

/// Run the Sod problem on an n×4×4 pseudo-1-D grid until `t_end`,
/// returning the density profile along x and the grid spacing.
fn run_sod(n: i64, t_end: f64) -> (Vec<f64>, f64) {
    let dom_box = IBox::new(IntVect::ZERO, IntVect::new(n - 1, 3, 3));
    let domain = ProblemDomain::with_periodicity(dom_box, [false, true, true]);
    let layout = BoxLayout::new(
        vec![xlayer::amr::layout::Grid {
            bx: dom_box,
            rank: 0,
        }],
        1,
    );
    let solver = EulerSolver::default();
    let mut ld = LevelData::new(layout, domain, solver.ncomp(), solver.nghost());
    let dx = 1.0 / n as f64;
    ld.for_each_mut(|vb, fab| {
        for iv in vb.cells() {
            let x = (iv[0] as f64 + 0.5) * dx;
            let w = if x < 0.5 {
                Primitive {
                    rho: 1.0,
                    vel: [0.0; 3],
                    p: 1.0,
                }
            } else {
                Primitive {
                    rho: 0.125,
                    vel: [0.0; 3],
                    p: 0.1,
                }
            };
            EulerSolver::set_state(fab, iv, w.to_conserved(GAMMA));
        }
    });

    let mut t = 0.0;
    while t < t_end {
        ld.exchange();
        let smax = solver.max_wave_speed(&ld);
        let dt = (0.4 * dx / smax).min(t_end - t);
        solver.advance_level(&mut ld, dx, dt);
        t += dt;
    }

    let mut profile = vec![0.0; n as usize];
    let fab = ld.fab(0);
    for i in 0..n {
        profile[i as usize] = fab.get(IntVect::new(i, 0, 0), RHO);
    }
    (profile, dx)
}

/// L1 density error against the exact solution at `t`.
fn l1_error(profile: &[f64], dx: f64, t: f64) -> f64 {
    let exact = ExactRiemann::solve(
        State1d {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
        },
        State1d {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
        },
        GAMMA,
    );
    profile
        .iter()
        .enumerate()
        .map(|(i, &rho)| {
            let x = (i as f64 + 0.5) * dx;
            let xi = (x - 0.5) / t;
            (rho - exact.sample(xi).rho).abs() * dx
        })
        .sum()
}

#[test]
fn sod_profile_matches_exact_solution() {
    let t_end = 0.15;
    let (profile, dx) = run_sod(128, t_end);
    let err = l1_error(&profile, dx, t_end);
    // A second-order MUSCL scheme at N=128 typically lands well below 1e-2
    // in L1 density error on Sod.
    assert!(err < 1.2e-2, "L1 density error {err}");
    // Physical sanity: profile monotone envelope between the two states.
    for &rho in &profile {
        assert!((0.1..=1.05).contains(&rho), "rho {rho} out of range");
    }
}

#[test]
fn sod_error_converges_under_refinement() {
    let t_end = 0.15;
    let (p64, dx64) = run_sod(64, t_end);
    let (p256, dx256) = run_sod(256, t_end);
    let e64 = l1_error(&p64, dx64, t_end);
    let e256 = l1_error(&p256, dx256, t_end);
    // With shocks and contacts, L1 convergence is ~O(dx^0.7-1.0);
    // a 4x refinement must reduce the error by at least 2x.
    assert!(
        e256 < e64 / 2.0,
        "no convergence: L1(64) = {e64}, L1(256) = {e256}"
    );
}
