//! Integration tests: a real `StagingService` on a loopback socket, driven
//! by `RemoteClient`/`RemoteStager` and, for the malformed-frame cases, by
//! a raw TCP stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_net::client::{ClientConfig, RemoteClient, RemoteError, RemoteStager};
use xlayer_net::service::{ServiceConfig, StagingService};
use xlayer_net::wire::{
    decode_header, encode_frame, verify_payload, ErrorFrame, Frame, Opcode, Request, Response,
    HEADER_LEN, MAGIC,
};
use xlayer_staging::{DataObject, Sharding};

fn obj(name: &str, version: u64, lo: i64, fill: f64) -> DataObject {
    let b = IBox::cube(4).shift(IntVect::splat(lo));
    let fab = Fab::filled(b, 1, fill);
    DataObject::from_fab(name, version, &fab, 0, &b, 0).with_dx(0.25)
}

fn quick_client(addr: &str) -> RemoteClient {
    RemoteClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            pool_size: 2,
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

fn start_service(memory_per_server: u64) -> StagingService {
    StagingService::start(ServiceConfig {
        servers: 2,
        memory_per_server,
        sharding: Sharding::RoundRobin,
        ..ServiceConfig::default()
    })
    .unwrap()
}

#[test]
fn put_get_query_delete_roundtrip() {
    let service = start_service(16 << 20);
    let client = quick_client(&service.local_addr().to_string());

    let a = obj("rho", 3, 0, 1.5);
    let b = obj("rho", 3, 8, -2.25);
    client.put(&a).unwrap();
    client.put(&b).unwrap();

    // Payloads come back bit-identical.
    let got = client.get("rho", 3, None).unwrap();
    assert_eq!(got.len(), 2);
    for o in &got {
        let want = if o.desc.bbox == a.desc.bbox { &a } else { &b };
        assert_eq!(o.desc, want.desc);
        assert_eq!(o.payload.as_ref(), want.payload.as_ref());
    }

    // Spatial query clips to the intersecting object only.
    let clipped = client.get("rho", 3, Some(IBox::cube(4))).unwrap();
    assert_eq!(clipped.len(), 1);
    assert_eq!(clipped[0].desc, a.desc);

    // Metadata-only query.
    let descs = client.describe("rho", 3).unwrap();
    assert_eq!(descs.len(), 2);
    assert!(descs.iter().all(|d| d.key.version == 3));

    // Evict and observe the space drain.
    let freed = client.evict_before("rho", 4).unwrap();
    assert_eq!(freed, a.desc.bytes + b.desc.bytes);
    assert!(client.get("rho", 3, None).unwrap().is_empty());

    let snap = client.service_stats().unwrap();
    assert_eq!(snap.puts, 2);
    assert_eq!(snap.gets, 3);
    assert_eq!(snap.queries, 1);
    assert_eq!(snap.deletes, 1);
    assert_eq!(snap.rejected_oom, 0);
    assert_eq!(snap.used, 0);
    assert!(snap.bytes_in > 0 && snap.bytes_out > 0);

    service.shutdown();
}

#[test]
fn oom_is_typed_and_never_retried() {
    // Space fits one 512 B object per server; a second put to the same
    // shard must come back as OutOfMemory.
    let service = StagingService::start(ServiceConfig {
        servers: 1,
        memory_per_server: 600,
        sharding: Sharding::RoundRobin,
        ..ServiceConfig::default()
    })
    .unwrap();
    let client = quick_client(&service.local_addr().to_string());

    client.put(&obj("rho", 0, 0, 1.0)).unwrap();
    match client.put(&obj("rho", 1, 0, 2.0)) {
        Err(RemoteError::OutOfMemory {
            cap,
            used,
            requested,
        }) => {
            assert_eq!(cap, 600);
            assert_eq!(used, 512);
            assert_eq!(requested, 512);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }

    // The retry loop must NOT have re-sent the rejected put: exactly two
    // put requests reached the service (the client's max_retries is 2, so
    // a retried rejection would show 3+).
    let snap = client.service_stats().unwrap();
    assert_eq!(snap.puts, 2);
    assert_eq!(snap.rejected_oom, 1);
    service.shutdown();
}

#[test]
fn full_pool_refuses_with_busy() {
    // max_connections = 0: every connection is refused with a typed Busy
    // frame, and the client reports it once retries are exhausted.
    let service = StagingService::start(ServiceConfig {
        servers: 1,
        memory_per_server: 1 << 20,
        max_connections: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let client = quick_client(&service.local_addr().to_string());
    match client.service_stats() {
        Err(RemoteError::Refused(ErrorFrame::Busy { active, max })) => {
            assert_eq!((active, max), (0, 0));
        }
        other => panic!("expected Busy refusal, got {other:?}"),
    }
    assert!(
        service
            .stats()
            .conns_refused
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    service.shutdown();
}

#[test]
fn malformed_frames_answered_not_dropped() {
    let service = start_service(1 << 20);
    let mut raw = TcpStream::connect(service.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // 1. Corrupted payload under a valid header: BadRequest, connection
    //    survives (length framing is still in sync).
    let mut frame = Request::Delete {
        name: "rho".into(),
        before_version: 1,
    }
    .encode(9);
    let last = frame.len() - 1;
    frame[last] ^= 0xFF; // corrupt payload, checksum now mismatches
    raw.write_all(&frame).unwrap();
    match read_response(&mut raw) {
        Response::Error(ErrorFrame::BadRequest { detail }) => {
            assert!(detail.contains("checksum"), "detail: {detail}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // 2. Same connection still serves valid requests afterwards.
    raw.write_all(&Request::Stats.encode(10)).unwrap();
    match read_response(&mut raw) {
        Response::StatsOk(snap) => assert_eq!(snap.wire_errors, 1),
        other => panic!("expected StatsOk, got {other:?}"),
    }

    // 3. Garbage magic: answered once, then the connection is closed
    //    (framing is unrecoverable).
    let mut garbage = vec![0u8; HEADER_LEN];
    garbage[0] = b'?';
    raw.write_all(&garbage).unwrap();
    match read_response(&mut raw) {
        Response::Error(ErrorFrame::BadRequest { .. }) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    let mut probe = [0u8; 1];
    assert_eq!(
        raw.read(&mut probe).unwrap(),
        0,
        "connection should be closed"
    );

    service.shutdown();
}

fn read_response(stream: &mut TcpStream) -> Response {
    let mut header_buf = [0u8; HEADER_LEN];
    stream.read_exact(&mut header_buf).unwrap();
    let header = decode_header(&header_buf).unwrap();
    let mut payload = vec![0u8; header.payload_len as usize];
    stream.read_exact(&mut payload).unwrap();
    verify_payload(&header, &payload).unwrap();
    Response::decode(&Frame {
        opcode: header.opcode,
        request_id: header.request_id,
        payload,
    })
    .unwrap()
}

#[test]
fn shutdown_opcode_stops_the_service() {
    let service = start_service(1 << 20);
    let addr = service.local_addr().to_string();
    let client = quick_client(&addr);
    client.put(&obj("rho", 0, 0, 1.0)).unwrap();
    client.shutdown().unwrap();
    // wait() returns because a wire-side shutdown stopped the accept loop.
    service.wait();
    // New work is refused (connection refused or reset; retries exhausted).
    let fresh = quick_client(&addr);
    assert!(fresh.service_stats().is_err());
}

#[test]
fn unreachable_service_is_an_io_error_after_retries() {
    // Nothing listens on this address (bind, learn the port, drop).
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let client = quick_client(&format!("127.0.0.1:{port}"));
    match client.service_stats() {
        Err(RemoteError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn remote_stager_matches_async_stager_contract() {
    let service = start_service(16 << 20);
    let client = quick_client(&service.local_addr().to_string());
    let stager = RemoteStager::new(client.clone(), 3, 8);
    let stats = stager.stats();

    for v in 0..4u64 {
        for part in 0..3i64 {
            stager.put(obj("field", v, part * 8, v as f64)).unwrap();
        }
    }
    // The per-key rendezvous works across the wire exactly as in-process.
    stats.wait_processed("field", 2, 3);
    assert_eq!(client.get("field", 2, None).unwrap().len(), 3);

    let (delivered, rejected) = stager.drain().unwrap();
    assert_eq!((delivered, rejected), (12, 0));
    assert_eq!(stats.failed.load(std::sync::atomic::Ordering::Relaxed), 0);
    // Rendezvous map pruned on drain, same as AsyncStager.
    assert_eq!(stats.tracked_keys(), 0);

    for v in 0..4u64 {
        assert_eq!(client.get("field", v, None).unwrap().len(), 3);
    }
    service.shutdown();
}

#[test]
fn remote_stager_counts_oom_and_terminal_failures_separately() {
    let service = StagingService::start(ServiceConfig {
        servers: 1,
        memory_per_server: 600,
        ..ServiceConfig::default()
    })
    .unwrap();
    let client = quick_client(&service.local_addr().to_string());
    let stager = RemoteStager::new(client, 1, 4);
    let stats = stager.stats();
    stager.put(obj("rho", 0, 0, 1.0)).unwrap();
    stager.put(obj("rho", 1, 0, 2.0)).unwrap(); // rejected: space is full
    let (delivered, rejected) = stager.drain().unwrap();
    assert_eq!((delivered, rejected), (1, 1));
    assert_eq!(stats.failed.load(std::sync::atomic::Ordering::Relaxed), 0);
    service.shutdown();

    // With the service gone, puts fail terminally — counted as `failed`,
    // never as `rejected` (OOM is a policy signal, failure is not).
    let dead_port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let dead = quick_client(&format!("127.0.0.1:{dead_port}"));
    let stager = RemoteStager::new(dead, 1, 4);
    let stats = stager.stats();
    stager.put(obj("rho", 0, 0, 1.0)).unwrap();
    let (delivered, rejected) = stager.drain().unwrap();
    assert_eq!((delivered, rejected), (0, 0));
    assert_eq!(stats.failed.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn frame_magic_is_stable_on_the_wire() {
    // A tripwire for accidental protocol changes: the first bytes a server
    // sees from a conforming client are the literal magic.
    let buf = encode_frame(Opcode::Stats, 1, &[]);
    assert_eq!(&buf[..4], &MAGIC);
}
