//! Loopback tests of the sharded staging cluster: scatter/gather parity
//! with a single server, exactly-one-shard routing, typed per-shard
//! failures that leave the other shards healthy, and spill-then-reject
//! degradation when shards fill.

use std::time::Duration;

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_net::client::{ClientConfig, RemoteError};
use xlayer_net::cluster::{ShardedClient, ShardedStager, StagingCluster};
use xlayer_net::service::ServiceConfig;
use xlayer_staging::{DataObject, Sharding, StageTask};

fn service_cfg(memory_per_server: u64) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        servers: 1,
        memory_per_server,
        sharding: Sharding::RoundRobin,
        ..ServiceConfig::default()
    }
}

/// A client that fails fast on dead shards (no backoff waits in tests).
fn fast_cfg() -> ClientConfig {
    ClientConfig {
        max_retries: 0,
        connect_timeout: Duration::from_millis(500),
        ..ClientConfig::default()
    }
}

fn obj_at(name: &str, version: u64, lo: IntVect, n: i64) -> DataObject {
    let b = IBox::cube(n).shift(lo);
    let mut fab = Fab::new(b, 1);
    for iv in b.cells() {
        fab.set(
            iv,
            0,
            (iv[0] * 3 + iv[1] * 5 + iv[2] * 7 + version as i64) as f64,
        );
    }
    DataObject::from_fab(name, version, &fab, 0, &b, 0)
}

/// Deterministic pseudo-random stream (no external RNG in this test:
/// the sequence must be identical on every run).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn key_of(o: &DataObject) -> (String, u64, IntVect, IntVect, usize) {
    (
        o.desc.key.name.clone(),
        o.desc.key.version,
        o.desc.bbox.lo(),
        o.desc.bbox.hi(),
        o.desc.origin_rank,
    )
}

#[test]
fn scatter_gather_matches_single_server() {
    let span = 16i64;
    let four = StagingCluster::start(4, &service_cfg(64 << 20)).expect("start 4-shard cluster");
    let one = StagingCluster::start(1, &service_cfg(64 << 20)).expect("start single");
    let c4 = ShardedClient::connect(&four.addrs(), span, ClientConfig::default()).expect("c4");
    let c1 = ShardedClient::connect(&one.addrs(), span, ClientConfig::default()).expect("c1");

    let mut seed = 0x5eed_cafe_u64;
    let mut objs = Vec::new();
    for _ in 0..60 {
        let lo = IntVect::new(
            (lcg(&mut seed) % 200) as i64 - 100,
            (lcg(&mut seed) % 200) as i64 - 100,
            (lcg(&mut seed) % 200) as i64 - 100,
        );
        let n = 1 + (lcg(&mut seed) % span as u64) as i64;
        objs.push(obj_at("rho", 7, lo, n));
    }
    for o in &objs {
        c4.put(o).expect("sharded put");
        c1.put(o).expect("single put");
    }

    let mut queries = vec![
        IBox::new(IntVect::splat(-100), IntVect::splat(115)), // everything
        IBox::new(IntVect::splat(-10), IntVect::splat(40)),   // multi-shard span
        IBox::new(IntVect::new(-100, 0, -100), IntVect::new(100, 3, 100)), // slab
        IBox::cube(2).shift(IntVect::splat(400)),             // miss
    ];
    // Plus a handful of exact object boxes.
    queries.extend(objs.iter().step_by(13).map(|o| o.desc.bbox));

    for q in &queries {
        let got4 = c4.get("rho", 7, Some(*q)).expect("sharded get");
        let got1 = c1.get("rho", 7, Some(*q)).expect("single get");
        assert_eq!(
            got4.iter().map(key_of).collect::<Vec<_>>(),
            got1.iter().map(key_of).collect::<Vec<_>>(),
            "result sets differ for query {q:?}"
        );
        for (a, b) in got4.iter().zip(&got1) {
            assert_eq!(
                a.payload.as_ref(),
                b.payload.as_ref(),
                "payload differs for {:?}",
                a.desc.bbox
            );
        }
    }

    // Full-version fetch and metadata agree too.
    let all4 = c4.get("rho", 7, None).expect("sharded get all");
    let all1 = c1.get("rho", 7, None).expect("single get all");
    assert_eq!(all4.len(), objs.len());
    assert_eq!(
        all4.iter().map(key_of).collect::<Vec<_>>(),
        all1.iter().map(key_of).collect::<Vec<_>>()
    );
    let d4 = c4.describe("rho", 7).expect("describe");
    assert_eq!(d4.len(), objs.len());

    c4.shutdown_all().expect("shutdown 4");
    c1.shutdown_all().expect("shutdown 1");
    four.wait();
    one.wait();
}

#[test]
fn every_object_routes_to_exactly_one_shard() {
    let cluster = StagingCluster::start(4, &service_cfg(64 << 20)).expect("start cluster");
    let client =
        ShardedClient::connect(&cluster.addrs(), 16, ClientConfig::default()).expect("client");

    let mut seed = 1234_u64;
    let mut total_bytes = 0u64;
    let mut put_shards = Vec::new();
    let mut objs = Vec::new();
    for _ in 0..40 {
        let lo = IntVect::new(
            (lcg(&mut seed) % 160) as i64 - 80,
            (lcg(&mut seed) % 160) as i64 - 80,
            (lcg(&mut seed) % 160) as i64 - 80,
        );
        let o = obj_at("rho", 3, lo, 4);
        total_bytes += o.desc.bytes;
        let s = client.put(&o).expect("put");
        assert_eq!(s, client.map().shard_of(&o.desc.bbox), "no spill expected");
        put_shards.push(s);
        objs.push(o);
    }
    // Server-side accounting: every object counted on exactly one shard.
    let snaps: Vec<_> = cluster.snapshots().into_iter().flatten().collect();
    assert_eq!(snaps.len(), 4);
    assert_eq!(snaps.iter().map(|s| s.puts).sum::<u64>(), 40);
    assert_eq!(snaps.iter().map(|s| s.used).sum::<u64>(), total_bytes);
    for (i, snap) in snaps.iter().enumerate() {
        let expected = put_shards.iter().filter(|&&s| s == i).count() as u64;
        assert_eq!(snap.puts, expected, "shard {i} put count");
    }
    // Client-side: each object is found exactly once by its exact box.
    for o in &objs {
        let got = client
            .get("rho", 3, Some(o.desc.bbox))
            .expect("exact-box get");
        let hits = got.iter().filter(|g| g.desc.bbox == o.desc.bbox).count();
        assert_eq!(hits, 1, "object {:?} seen {hits} times", o.desc.bbox);
    }

    client.shutdown_all().expect("shutdown");
    cluster.wait();
}

#[test]
fn shard_down_is_typed_and_leaves_other_shards_healthy() {
    let mut cluster = StagingCluster::start(3, &service_cfg(64 << 20)).expect("start cluster");
    let client = ShardedClient::connect(&cluster.addrs(), 8, fast_cfg()).expect("client");
    let map = *client.map();

    // Deterministically probe for boxes homed on each shard.
    let homed_on = |shard: usize| -> IBox {
        (0..)
            .map(|i| IBox::cube(4).shift(IntVect::splat(i * 8)))
            .find(|b| map.shard_of(b) == shard)
            .expect("some box homes on every shard")
    };
    let on_dead = homed_on(1);
    let on_live = homed_on(0);
    // A box whose whole query fan-out avoids shard 1 (pure function of
    // the map, so the search is deterministic).
    let live_query = (0..10_000i64)
        .map(|i| IBox::cube(4).shift(IntVect::new((i % 100) * 8, (i / 100) * 8, 0)))
        .find(|b| !map.query_shards(b).contains(&1))
        .expect("some box routes around shard 1");

    // Warm every shard before the fault.
    let mut fab = Fab::new(live_query, 1);
    for iv in live_query.cells() {
        fab.set(iv, 0, 1.0);
    }
    client
        .put(&DataObject::from_fab("rho", 1, &fab, 0, &live_query, 0))
        .expect("pre-fault put");

    assert!(cluster.stop_shard(1), "shard 1 was running");

    // Put routed to the dead shard: typed error naming it. Transport
    // faults must NOT spill — a dead shard stays visible.
    let mut fab = Fab::new(on_dead, 1);
    for iv in on_dead.cells() {
        fab.set(iv, 0, 2.0);
    }
    let err = client
        .put(&DataObject::from_fab("rho", 2, &fab, 0, &on_dead, 0))
        .expect_err("put to dead shard must fail");
    assert_eq!(err.shard, 1);
    assert!(
        matches!(err.source, RemoteError::Io(_)),
        "expected transport error, got {:?}",
        err.source
    );

    // Full-version gather touches the dead shard: typed error again.
    let err = client
        .get("rho", 1, None)
        .expect_err("gather across dead shard must fail");
    assert_eq!(err.shard, 1);

    // A query routed only to live shards still answers, and the live
    // shards' pooled connections were not poisoned by the failures.
    let targets = map.query_shards(&live_query);
    assert!(
        !targets.contains(&1),
        "probe query unexpectedly routed to the dead shard: {targets:?}"
    );
    let got = client
        .get("rho", 1, Some(live_query))
        .expect("live-shard query after fault");
    assert_eq!(got.len(), 1);
    client
        .put(&obj_at("rho", 3, on_live.lo(), 4))
        .expect("put to live shard after fault");
    let stats = client
        .shard_client(0)
        .expect("shard 0 client")
        .service_stats()
        .expect("live shard stats after fault");
    assert!(stats.puts >= 1);

    client
        .shard_client(0)
        .expect("shard 0")
        .shutdown()
        .expect("shutdown 0");
    client
        .shard_client(2)
        .expect("shard 2")
        .shutdown()
        .expect("shutdown 2");
    cluster.wait();
}

#[test]
fn full_cluster_spills_then_reports_owning_shard() {
    // Two shards, 2 KiB each; 512 B objects sharing one home bucket.
    let cluster = StagingCluster::start(2, &service_cfg(2048)).expect("start cluster");
    let client =
        ShardedClient::connect(&cluster.addrs(), 8, ClientConfig::default()).expect("client");
    let lo = IntVect::ZERO;
    let home = client.map().shard_of(&IBox::cube(4));

    // Four fill the home shard.
    for v in 1..=4 {
        assert_eq!(client.put(&obj_at("rho", v, lo, 4)).expect("fill"), home);
    }
    // The fifth spills to the sibling instead of failing (graceful
    // degradation: the workflow keeps its object).
    let spilled_to = client.put(&obj_at("rho", 5, lo, 4)).expect("spill");
    assert_ne!(spilled_to, home, "expected a spill off the full home shard");
    // The spilled object is still found by a region query (the client
    // broadens queries once placement stops being authoritative).
    let got = client
        .get("rho", 5, Some(IBox::cube(4)))
        .expect("get spilled");
    assert_eq!(got.len(), 1);

    // Fill the sibling too, then the cluster is full: typed OutOfMemory
    // naming the owning shard.
    for v in 6..=8 {
        client.put(&obj_at("rho", v, lo, 4)).expect("fill sibling");
    }
    let err = client
        .put(&obj_at("rho", 9, lo, 4))
        .expect_err("cluster full");
    assert_eq!(err.shard, home, "error must name the owning shard");
    assert!(
        matches!(err.source, RemoteError::OutOfMemory { .. }),
        "expected OutOfMemory, got {:?}",
        err.source
    );
    // Accounting: both shards full.
    assert_eq!(cluster.used_per_shard(), vec![2048, 2048]);

    client.shutdown_all().expect("shutdown");
    cluster.wait();
}

#[test]
fn sharded_stager_counts_per_shard_rejections() {
    let cluster = StagingCluster::start(2, &service_cfg(2048)).expect("start cluster");
    let client =
        ShardedClient::connect(&cluster.addrs(), 8, ClientConfig::default()).expect("client");
    let stager = ShardedStager::new(client, 1, 64);

    // 10 × 512 B into 2 × 2 KiB: 8 delivered (4 + 4 via spill), 2
    // rejected — all owned by the same home shard.
    let tasks: Vec<StageTask> = (1..=10)
        .map(|v| StageTask::Ready(obj_at("rho", v, IntVect::ZERO, 4)))
        .collect();
    use std::sync::atomic::Ordering::Relaxed;
    let stats = stager.stats();
    stager.put_batch(tasks).expect("enqueue");
    // Wait until every task is resolved, then read the per-shard view
    // (drain consumes the stager).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while stats.delivered.load(Relaxed) + stats.rejected.load(Relaxed) + stats.failed.load(Relaxed)
        < 10
    {
        assert!(std::time::Instant::now() < deadline, "stager stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    let by_shard = stager.rejected_by_shard();
    let client = stager.client().clone();
    let home = client.map().shard_of(&IBox::cube(4));
    let (delivered, rejected) = stager.drain().expect("drain");
    assert_eq!((delivered, rejected), (8, 2));
    assert_eq!(stats.failed.load(Relaxed), 0);
    assert_eq!(by_shard.iter().sum::<u64>(), 2);
    assert_eq!(by_shard[home], 2, "rejections attributed to the home shard");

    client.shutdown_all().expect("shutdown");
    cluster.wait();
}
