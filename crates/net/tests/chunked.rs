//! Chunked-stream failure modes, checksum-cache correctness, and buffer
//! pool regressions, driven against a real `StagingService` on loopback —
//! partly through `RemoteClient`, partly through a raw TCP stream that
//! speaks the wire format by hand so it can misbehave on purpose.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_net::client::{ClientConfig, RemoteClient};
use xlayer_net::service::{ServiceConfig, StagingService};
use xlayer_net::wire::{
    chunk_data_parts, decode_chunk_data, decode_chunk_end, decode_chunk_prefix, decode_header,
    encode_chunk_end, encode_frame, verify_payload, ChunkEnd, ErrorFrame, Frame, Opcode, Request,
    Response, CHUNK_PREFIX_LEN, HEADER_LEN, MIN_CHUNK_SIZE,
};
use xlayer_staging::DataObject;

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// An object over `bx` whose payload is LCG noise — every byte matters for
/// the bit-identity checks, unlike a constant fill.
fn noisy_obj(name: &str, version: u64, bx: IBox, seed: u64) -> DataObject {
    let cells = bx.num_cells() as usize;
    let mut s = seed;
    let data: Vec<f64> = (0..cells)
        .map(|_| (lcg(&mut s) >> 11) as f64 * 1e-9)
        .collect();
    let fab = Fab::with_storage(bx, 1, data);
    DataObject::from_fab(name, version, &fab, 0, &bx, 0)
}

/// A service configured for many small chunks (4 KiB), so multi-chunk
/// streams are cheap to exercise.
fn small_chunk_service() -> StagingService {
    StagingService::start(ServiceConfig {
        servers: 1,
        memory_per_server: 64 << 20,
        chunk_size: MIN_CHUNK_SIZE,
        ..ServiceConfig::default()
    })
    .unwrap()
}

/// A client that chunks everything (threshold 0) at the minimum chunk
/// size.
fn chunking_client(addr: &str) -> RemoteClient {
    RemoteClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            pool_size: 2,
            max_retries: 2,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            chunk_size: MIN_CHUNK_SIZE,
            chunk_threshold: 0,
        },
    )
    .unwrap()
}

fn read_response(stream: &mut TcpStream) -> Response {
    let mut header_buf = [0u8; HEADER_LEN];
    stream.read_exact(&mut header_buf).unwrap();
    let header = decode_header(&header_buf).unwrap();
    let mut payload = vec![0u8; header.payload_len as usize];
    stream.read_exact(&mut payload).unwrap();
    verify_payload(&header, &payload).unwrap();
    Response::decode(&Frame {
        opcode: header.opcode,
        request_id: header.request_id,
        payload,
    })
    .unwrap()
}

/// Stream `obj`'s payload as a well-formed chunked put on `raw`, with
/// `corrupt_chunk` (if any) having one data byte flipped *after* its
/// checksum was computed.
fn raw_put_chunked(raw: &mut TcpStream, id: u64, obj: &DataObject, corrupt_chunk: Option<usize>) {
    let chunk = MIN_CHUNK_SIZE as usize;
    let head = Request::PutChunked {
        desc: obj.desc.clone(),
        chunk_size: chunk as u32,
    };
    raw.write_all(&head.encode(id)).unwrap();
    let payload: &[u8] = obj.payload.as_ref();
    let mut off = 0usize;
    let mut k = 0usize;
    while off < payload.len() {
        let n = chunk.min(payload.len() - off);
        let (header, prefix) = chunk_data_parts(id, 0, off as u64, &payload[off..off + n]);
        let mut data = payload[off..off + n].to_vec();
        if corrupt_chunk == Some(k) {
            data[n / 2] ^= 0xFF;
        }
        raw.write_all(&header).unwrap();
        raw.write_all(&prefix).unwrap();
        raw.write_all(&data).unwrap();
        off += n;
        k += 1;
    }
    raw.write_all(&encode_chunk_end(
        id,
        ChunkEnd {
            objects: 1,
            total_bytes: payload.len() as u64,
        },
    ))
    .unwrap();
}

#[test]
fn chunked_roundtrip_bit_identical_and_cache_consistent() {
    let service = small_chunk_service();
    let client = chunking_client(&service.local_addr().to_string());

    // 256 KiB of noise = 64 chunks at the 4 KiB minimum chunk size.
    let bx = IBox::cube(32);
    let obj = noisy_obj("rho", 7, bx, 42);
    client.put(&obj).unwrap();

    // First chunked get serves checksums learned during the put stream;
    // the repeat serves the same cache entry; the whole-frame get computes
    // its checksum from scratch. The client verifies every chunk checksum
    // on receipt, so a stale or misindexed cached sum fails the call
    // rather than just the comparison.
    let first = client.get_chunked("rho", 7, None).unwrap();
    let again = client.get_chunked("rho", 7, None).unwrap();
    let whole = client.get_whole("rho", 7, None).unwrap();
    for got in [&first, &again, &whole] {
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].desc, obj.desc);
        assert_eq!(got[0].payload.as_ref(), obj.payload.as_ref());
    }

    service.shutdown();
}

#[test]
fn corrupt_chunk_is_bad_request_and_connection_survives() {
    let service = small_chunk_service();
    let mut raw = TcpStream::connect(service.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // A mid-stream chunk whose data does not match its checksum: the
    // service drains the rest of the stream, answers BadRequest, and keeps
    // the connection (framing never desynced).
    let obj = noisy_obj("rho", 1, IBox::cube(16), 7);
    raw_put_chunked(&mut raw, 21, &obj, Some(3));
    match read_response(&mut raw) {
        Response::Error(ErrorFrame::BadRequest { detail }) => {
            assert!(detail.contains("checksum"), "detail: {detail}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // Nothing was committed.
    raw.write_all(
        &Request::Query {
            name: "rho".into(),
            version: 1,
        }
        .encode(22),
    )
    .unwrap();
    match read_response(&mut raw) {
        Response::QueryOk(descs) => assert!(descs.is_empty()),
        other => panic!("expected QueryOk, got {other:?}"),
    }

    // The same connection still takes a clean chunked put.
    raw_put_chunked(&mut raw, 23, &obj, None);
    match read_response(&mut raw) {
        Response::PutChunkedOk { .. } => {}
        other => panic!("expected PutChunkedOk, got {other:?}"),
    }
    raw.write_all(
        &Request::Query {
            name: "rho".into(),
            version: 1,
        }
        .encode(24),
    )
    .unwrap();
    match read_response(&mut raw) {
        Response::QueryOk(descs) => assert_eq!(descs.len(), 1),
        other => panic!("expected QueryOk, got {other:?}"),
    }

    service.shutdown();
}

#[test]
fn interleaved_request_id_is_bad_request() {
    let service = small_chunk_service();
    let mut raw = TcpStream::connect(service.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let obj = noisy_obj("rho", 2, IBox::cube(16), 11);
    let chunk = MIN_CHUNK_SIZE as usize;
    let payload: &[u8] = obj.payload.as_ref();
    raw.write_all(
        &Request::PutChunked {
            desc: obj.desc.clone(),
            chunk_size: chunk as u32,
        }
        .encode(31),
    )
    .unwrap();
    let mut off = 0usize;
    let mut first = true;
    while off < payload.len() {
        let n = chunk.min(payload.len() - off);
        let data = &payload[off..off + n];
        // First chunk carries a foreign request id, the rest are honest.
        let id = if first { 32 } else { 31 };
        first = false;
        let (header, prefix) = chunk_data_parts(id, 0, off as u64, data);
        raw.write_all(&header).unwrap();
        raw.write_all(&prefix).unwrap();
        raw.write_all(data).unwrap();
        off += n;
    }
    raw.write_all(&encode_chunk_end(
        31,
        ChunkEnd {
            objects: 1,
            total_bytes: payload.len() as u64,
        },
    ))
    .unwrap();
    match read_response(&mut raw) {
        Response::Error(ErrorFrame::BadRequest { detail }) => {
            assert!(detail.contains("interleaved"), "detail: {detail}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // Framing survived the rejection: the connection still serves.
    raw.write_all(&Request::Stats.encode(33)).unwrap();
    match read_response(&mut raw) {
        Response::StatsOk(_) => {}
        other => panic!("expected StatsOk, got {other:?}"),
    }

    service.shutdown();
}

#[test]
fn undersized_chunk_frame_is_in_stream_error() {
    let service = small_chunk_service();
    let mut raw = TcpStream::connect(service.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let obj = noisy_obj("rho", 3, IBox::cube(8), 13);
    raw.write_all(
        &Request::PutChunked {
            desc: obj.desc.clone(),
            chunk_size: MIN_CHUNK_SIZE,
        }
        .encode(41),
    )
    .unwrap();
    // A ChunkData frame whose payload is smaller than the 12-byte prefix
    // cannot carry a chunk; the stream fails but stays framed.
    const UNDERSIZED: usize = CHUNK_PREFIX_LEN - 8;
    raw.write_all(&encode_frame(Opcode::ChunkData, 41, &[0u8; UNDERSIZED]))
        .unwrap();
    raw.write_all(&encode_chunk_end(
        41,
        ChunkEnd {
            objects: 1,
            total_bytes: obj.desc.bytes,
        },
    ))
    .unwrap();
    match read_response(&mut raw) {
        Response::Error(ErrorFrame::BadRequest { .. }) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    raw.write_all(&Request::Stats.encode(42)).unwrap();
    match read_response(&mut raw) {
        Response::StatsOk(_) => {}
        other => panic!("expected StatsOk, got {other:?}"),
    }

    service.shutdown();
}

#[test]
fn truncated_stream_commits_nothing_and_service_survives() {
    let service = small_chunk_service();
    let obj = noisy_obj("rho", 4, IBox::cube(16), 17);
    {
        let mut raw = TcpStream::connect(service.local_addr()).unwrap();
        let chunk = MIN_CHUNK_SIZE as usize;
        let payload: &[u8] = obj.payload.as_ref();
        raw.write_all(
            &Request::PutChunked {
                desc: obj.desc.clone(),
                chunk_size: chunk as u32,
            }
            .encode(51),
        )
        .unwrap();
        // Half the stream, then hang up mid-put.
        let mut off = 0usize;
        while off < payload.len() / 2 {
            let n = chunk.min(payload.len() - off);
            let data = &payload[off..off + n];
            let (header, prefix) = chunk_data_parts(51, 0, off as u64, data);
            raw.write_all(&header).unwrap();
            raw.write_all(&prefix).unwrap();
            raw.write_all(data).unwrap();
            off += n;
        }
    }
    // The dropped connection must not have committed a partial object, and
    // the service must keep serving new connections.
    let client = chunking_client(&service.local_addr().to_string());
    assert!(client.describe("rho", 4).unwrap().is_empty());
    client.put(&obj).unwrap();
    let got = client.get("rho", 4, None).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload.as_ref(), obj.payload.as_ref());
    service.shutdown();
}

#[test]
fn chunk_decoders_never_panic_on_fuzz() {
    // LCG-driven structural fuzz over every chunk-stream decoder: any
    // byte soup must come back as Ok or Err, never a panic or a
    // length-dependent slice overrun.
    let mut s = 0x5eed_cafe_u64;
    for round in 0..2048 {
        let len = (lcg(&mut s) % 48) as usize;
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = (lcg(&mut s) >> 32) as u8;
        }
        let _ = decode_chunk_data(&bytes);
        let _ = decode_chunk_end(&bytes);
        if bytes.len() >= HEADER_LEN {
            let mut h = [0u8; HEADER_LEN];
            h.copy_from_slice(&bytes[..HEADER_LEN]);
            let _ = decode_header(&h);
        }
        if bytes.len() >= CHUNK_PREFIX_LEN {
            let mut p = [0u8; CHUNK_PREFIX_LEN];
            p.copy_from_slice(&bytes[..CHUNK_PREFIX_LEN]);
            let (index, offset) = decode_chunk_prefix(&p);
            // Prefix decode is total: round-trips through the encoder.
            let (_, back) = chunk_data_parts(round, index, offset, &[]);
            assert_eq!(back, p);
        }
    }
}

#[test]
fn buffer_pools_return_on_error_paths_and_stay_bounded() {
    let service = small_chunk_service();
    let addr = service.local_addr().to_string();
    let client = chunking_client(&addr);
    let obj = noisy_obj("rho", 5, IBox::cube(16), 23);

    // Error paths that route payloads through the service's discard
    // buffers: a corrupt chunk mid-stream and an interleaved stream, each
    // drained from pooled memory.
    let mut raw = TcpStream::connect(service.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw_put_chunked(&mut raw, 61, &obj, Some(1));
    match read_response(&mut raw) {
        Response::Error(ErrorFrame::BadRequest { .. }) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    drop(raw);

    // Churn: repeated puts and gets of the same shapes. Every pooled
    // buffer acquired along the way must be parked again afterwards.
    for round in 0..8u64 {
        client.put(&obj).unwrap();
        let got = client.get("rho", 5, None).unwrap();
        assert_eq!(got.len(), 1 + round as usize);
        let _ = client.service_stats().unwrap();
    }
    client.evict_before("rho", 6).unwrap();

    assert_eq!(service.pool().outstanding(), 0, "service leaked buffers");
    assert_eq!(
        client.buffer_pool().outstanding(),
        0,
        "client leaked buffers"
    );
    assert!(
        service.pool().parked() <= 64,
        "service pool grew unbounded: {} parked",
        service.pool().parked()
    );

    // The Stats snapshot reconciles with the pool's own counters. The
    // service keeps serving (the stats response itself moves through the
    // pool), so the live counters may run ahead of the snapshot — but
    // never behind it, and nothing stays outstanding.
    let snap = client.service_stats().unwrap();
    assert_eq!(snap.pool_outstanding, 0);
    assert!(snap.pool_hits <= service.pool().hits());
    assert!(snap.pool_misses <= service.pool().misses());
    assert!(snap.bytes_in > 0 && snap.bytes_out > 0);

    // Steady state is allocation-free: one more round of the identical
    // request shapes must be served entirely from parked buffers.
    let misses_before = service.pool().misses();
    client.put(&obj).unwrap();
    let _ = client.get("rho", 5, None).unwrap();
    let _ = client.service_stats().unwrap();
    assert_eq!(
        service.pool().misses(),
        misses_before,
        "warm request shapes should not allocate new pool buffers"
    );

    service.shutdown();
}

/// ≥512 MiB through the chunked protocol, bit-identically — the
/// large-transfer smoke test. Ignored by default: it allocates multiple
/// half-GiB buffers and moves a gigabyte over loopback.
#[test]
#[ignore = "large-memory smoke test, run by hand"]
fn smoke_512mib_chunked_roundtrip() {
    let service = StagingService::start(ServiceConfig {
        servers: 1,
        memory_per_server: 1 << 30,
        ..ServiceConfig::default()
    })
    .unwrap();
    let client = RemoteClient::connect(
        &service.local_addr().to_string(),
        ClientConfig {
            io_timeout: Duration::from_secs(120),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // 1024 × 256 × 256 cells × 8 B = 512 MiB of LCG noise.
    let bx = IBox::new(IntVect::new(0, 0, 0), IntVect::new(1023, 255, 255));
    let obj = noisy_obj("big", 1, bx, 97);
    assert_eq!(obj.desc.bytes, 512 << 20);
    client.put(&obj).unwrap();
    let got = client.get("big", 1, None).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].desc, obj.desc);
    assert!(got[0].payload.as_ref() == obj.payload.as_ref());
    client.evict_before("big", 2).unwrap();
    service.shutdown();
}
