//! Fixed-bucket latency histograms for per-op wire timing.
//!
//! The staging wire needs percentiles, not means: one slow put behind a
//! retry loop hides in an average but shows in p99. A
//! [`LatencyHistogram`] records nanosecond samples into 256 fixed
//! log-spaced buckets (power-of-two decades, four sub-buckets each, ~25 %
//! resolution) with lock-free atomic counters — recording is a couple of
//! shifts and one `fetch_add`, cheap enough to sit on every client op.
//! Quantiles are read back as the lower bound of the covering bucket, so
//! reported values never overstate the observed latency.
//!
//! Timing sources live in the *callers* (this crate only — kernel crates
//! stay wall-clock-free); the histogram itself never reads a clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 8 exact low buckets + 4 sub-buckets for each of
/// the 61 remaining power-of-two decades of a u64 (8 + 61*4); every
/// index is reachable and every floor fits in a u64.
const NBUCKETS: usize = 252;

/// Bucket index of a nanosecond sample.
fn bucket_of(ns: u64) -> usize {
    if ns < 8 {
        return ns as usize;
    }
    let e = 63 - ns.leading_zeros() as u64; // >= 3
    let sub = (ns >> (e - 2)) & 3;
    (8 + (e - 3) * 4 + sub) as usize
}

/// Lower bound (ns) of bucket `idx` — the value quantiles report.
fn bucket_floor(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let e = 3 + ((idx - 8) / 4) as u64;
    let sub = ((idx - 8) % 4) as u64;
    (1u64 << e) + (sub << (e - 2))
}

/// A lock-free, fixed-memory latency histogram (nanoseconds).
pub struct LatencyHistogram {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count)
            .field("p50_ns", &s.p50_ns)
            .field("p99_ns", &s.p99_ns)
            .field("max_ns", &s.max_ns)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, ns: u64) {
        if let Some(b) = self.buckets.get(bucket_of(ns)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed). 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the covering
    /// bucket; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_floor(idx);
            }
        }
        self.max_ns()
    }

    /// A consistent-enough point-in-time read of the percentiles. Readers
    /// racing writers may see a sample in `count` before its bucket — fine
    /// for metrics, which is all this is for.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            max_ns: self.max_ns(),
        }
    }

    /// Fold another histogram's buckets into this one (cluster-wide views).
    pub fn absorb(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An owned copy of the current bucket contents, suitable for
    /// shipping across a control wire and merging offline. Racing
    /// writers may leave the copied `count` slightly ahead of the bucket
    /// sum; the owned copy recomputes its count from the buckets so it
    /// is internally consistent.
    pub fn to_hist(&self) -> Hist {
        let mut h = Hist::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                h.add_bucket(idx as u16, n);
            }
        }
        h.raise_max(self.max_ns());
        h
    }
}

/// An owned, mergeable latency histogram with the same bucket layout as
/// [`LatencyHistogram`], but plain `u64` counters instead of atomics.
///
/// This is the transport/aggregation form: a load-generation agent
/// serialises its per-op histograms as sparse `(bucket, count)` pairs, a
/// controller rebuilds them with [`Hist::add_bucket`] and folds many
/// agents together with [`Hist::merge`]. Quantile semantics are
/// identical to the atomic histogram (bucket floors, never overstated).
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; NBUCKETS],
    count: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Hist")
            .field("count", &s.count)
            .field("p50_ns", &s.p50_ns)
            .field("p99_ns", &s.p99_ns)
            .field("max_ns", &s.max_ns)
            .finish()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist {
            buckets: [0; NBUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// Record one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        if let Some(b) = self.buckets.get_mut(bucket_of(ns)) {
            *b = b.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.max = self.max.max(ns);
    }

    /// Fold `other` into `self`: bucket-wise saturating add, counts
    /// summed, max reconciled to the larger of the two.
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed). 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the covering
    /// bucket; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(*n);
            if cum >= target {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Percentile summary, same shape as the atomic histogram's.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count,
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            max_ns: self.max,
        }
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending by index —
    /// the sparse wire form (most histograms occupy a handful of the 252
    /// buckets).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(idx, n)| (idx as u16, *n))
    }

    /// Add `count` samples directly into bucket `idx` (wire decode path).
    /// Returns `false` — and records nothing — if `idx` is out of range.
    pub fn add_bucket(&mut self, idx: u16, count: u64) -> bool {
        match self.buckets.get_mut(idx as usize) {
            Some(b) => {
                *b = b.saturating_add(count);
                self.count = self.count.saturating_add(count);
                true
            }
            None => false,
        }
    }

    /// Raise the recorded maximum to at least `ns` (wire decode path —
    /// the exact max travels beside the sparse buckets).
    pub fn raise_max(&mut self, ns: u64) {
        self.max = self.max.max(ns);
    }
}

/// Point-in-time percentile summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median, ns (bucket floor).
    pub p50_ns: u64,
    /// 95th percentile, ns (bucket floor).
    pub p95_ns: u64,
    /// 99th percentile, ns (bucket floor).
    pub p99_ns: u64,
    /// Largest sample, ns (exact).
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for idx in 1..NBUCKETS {
            let f = bucket_floor(idx);
            assert!(f > prev, "bucket {idx} floor {f} <= {prev}");
            prev = f;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(7), 7);
        assert!(bucket_of(u64::MAX) < NBUCKETS);
    }

    #[test]
    fn bucket_floor_is_a_true_lower_bound() {
        for ns in [0u64, 1, 7, 8, 9, 100, 1000, 123_456, 1 << 40, u64::MAX] {
            let idx = bucket_of(ns);
            assert!(bucket_floor(idx) <= ns, "floor of bucket({ns}) exceeds it");
            if idx + 1 < NBUCKETS {
                assert!(bucket_floor(idx + 1) > ns);
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1 µs .. 1 ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_ns, 1_000_000);
        // Bucket resolution is ~25 %: check within a factor of 1.5.
        assert!(s.p50_ns >= 300_000 && s.p50_ns <= 550_000, "{}", s.p50_ns);
        assert!(s.p99_ns >= 600_000 && s.p99_ns <= 1_000_000, "{}", s.p99_ns);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, LatencySnapshot::default());
    }

    #[test]
    fn absorb_merges_counts_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        b.record(200);
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn hist_merge_equals_combined_samples() {
        // Recording the union of two sample sets into one Hist must give
        // the same quantiles as recording each half and merging.
        let samples_a = [100u64, 2_000, 40_000, 40_001, 1 << 30];
        let samples_b = [7u64, 900, 40_002, 5_000_000];
        let mut merged = Hist::new();
        let mut left = Hist::new();
        let mut right = Hist::new();
        for ns in samples_a {
            merged.record(ns);
            left.record(ns);
        }
        for ns in samples_b {
            merged.record(ns);
            right.record(ns);
        }
        left.merge(&right);
        assert_eq!(left.count(), merged.count());
        assert_eq!(left.max_ns(), merged.max_ns());
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(left.quantile_ns(q), merged.quantile_ns(q), "q={q}");
        }
        assert_eq!(left.snapshot(), merged.snapshot());
    }

    #[test]
    fn hist_merge_reconciles_count_and_max() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(500);
        a.record(600);
        b.record(9_999_999);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 9_999_999);
        // Merging an empty histogram is a no-op.
        a.merge(&Hist::new());
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 9_999_999);
    }

    #[test]
    fn hist_sparse_pairs_roundtrip() {
        let mut h = Hist::new();
        for ns in [3u64, 3, 77, 1_000_000, u64::MAX] {
            h.record(ns);
        }
        let mut rebuilt = Hist::new();
        for (idx, n) in h.nonzero_buckets() {
            assert!(rebuilt.add_bucket(idx, n));
        }
        rebuilt.raise_max(h.max_ns());
        assert_eq!(rebuilt.snapshot(), h.snapshot());
        // Out-of-range bucket indices are rejected without effect.
        let before = rebuilt.count();
        assert!(!rebuilt.add_bucket(NBUCKETS as u16, 5));
        assert_eq!(rebuilt.count(), before);
    }

    #[test]
    fn to_hist_matches_atomic_snapshot() {
        let h = LatencyHistogram::new();
        for ns in [12u64, 90, 5_000, 123_456_789] {
            h.record(ns);
        }
        let owned = h.to_hist();
        assert_eq!(owned.snapshot(), h.snapshot());
    }
}
