//! Fixed-bucket latency histograms for per-op wire timing.
//!
//! The staging wire needs percentiles, not means: one slow put behind a
//! retry loop hides in an average but shows in p99. A
//! [`LatencyHistogram`] records nanosecond samples into 256 fixed
//! log-spaced buckets (power-of-two decades, four sub-buckets each, ~25 %
//! resolution) with lock-free atomic counters — recording is a couple of
//! shifts and one `fetch_add`, cheap enough to sit on every client op.
//! Quantiles are read back as the lower bound of the covering bucket, so
//! reported values never overstate the observed latency.
//!
//! Timing sources live in the *callers* (this crate only — kernel crates
//! stay wall-clock-free); the histogram itself never reads a clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 8 exact low buckets + 4 sub-buckets for each of
/// the 61 remaining power-of-two decades of a u64 (8 + 61*4); every
/// index is reachable and every floor fits in a u64.
const NBUCKETS: usize = 252;

/// Bucket index of a nanosecond sample.
fn bucket_of(ns: u64) -> usize {
    if ns < 8 {
        return ns as usize;
    }
    let e = 63 - ns.leading_zeros() as u64; // >= 3
    let sub = (ns >> (e - 2)) & 3;
    (8 + (e - 3) * 4 + sub) as usize
}

/// Lower bound (ns) of bucket `idx` — the value quantiles report.
fn bucket_floor(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let e = 3 + ((idx - 8) / 4) as u64;
    let sub = ((idx - 8) % 4) as u64;
    (1u64 << e) + (sub << (e - 2))
}

/// A lock-free, fixed-memory latency histogram (nanoseconds).
pub struct LatencyHistogram {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count)
            .field("p50_ns", &s.p50_ns)
            .field("p99_ns", &s.p99_ns)
            .field("max_ns", &s.max_ns)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, ns: u64) {
        if let Some(b) = self.buckets.get(bucket_of(ns)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed). 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the covering
    /// bucket; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_floor(idx);
            }
        }
        self.max_ns()
    }

    /// A consistent-enough point-in-time read of the percentiles. Readers
    /// racing writers may see a sample in `count` before its bucket — fine
    /// for metrics, which is all this is for.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            max_ns: self.max_ns(),
        }
    }

    /// Fold another histogram's buckets into this one (cluster-wide views).
    pub fn absorb(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Point-in-time percentile summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median, ns (bucket floor).
    pub p50_ns: u64,
    /// 95th percentile, ns (bucket floor).
    pub p95_ns: u64,
    /// 99th percentile, ns (bucket floor).
    pub p99_ns: u64,
    /// Largest sample, ns (exact).
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for idx in 1..NBUCKETS {
            let f = bucket_floor(idx);
            assert!(f > prev, "bucket {idx} floor {f} <= {prev}");
            prev = f;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(7), 7);
        assert!(bucket_of(u64::MAX) < NBUCKETS);
    }

    #[test]
    fn bucket_floor_is_a_true_lower_bound() {
        for ns in [0u64, 1, 7, 8, 9, 100, 1000, 123_456, 1 << 40, u64::MAX] {
            let idx = bucket_of(ns);
            assert!(bucket_floor(idx) <= ns, "floor of bucket({ns}) exceeds it");
            if idx + 1 < NBUCKETS {
                assert!(bucket_floor(idx + 1) > ns);
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns * 1000); // 1 µs .. 1 ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_ns, 1_000_000);
        // Bucket resolution is ~25 %: check within a factor of 1.5.
        assert!(s.p50_ns >= 300_000 && s.p50_ns <= 550_000, "{}", s.p50_ns);
        assert!(s.p99_ns >= 600_000 && s.p99_ns <= 1_000_000, "{}", s.p99_ns);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, LatencySnapshot::default());
    }

    #[test]
    fn absorb_merges_counts_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        b.record(200);
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 1_000_000);
    }
}
