//! Client side of the staging wire: a pooled, retrying [`RemoteClient`]
//! and the [`RemoteStager`] drop-in for `AsyncStager`.
//!
//! Retry policy, in one sentence: transient transport faults (refused or
//! reset connections, timeouts, short reads, corrupted frames, `Busy`
//! refusals) are retried with bounded exponential backoff on a fresh
//! connection; **`OutOfMemory` is never retried** — it is the paper's
//! memory-pressure policy signal (Eq. 10), and hiding it behind retries
//! would blind the adaptation engine that must react to it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use xlayer_amr::boxes::IBox;
use xlayer_staging::{DataObject, DrainError, ObjectDesc, TransportClosed, TransportStats};

use crate::wire::{
    decode_header, verify_payload, ErrorFrame, Frame, Request, Response, ServiceSnapshot,
    WireError, HEADER_LEN,
};

/// Configuration of a [`RemoteClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Timeout for establishing a connection.
    pub connect_timeout: Duration,
    /// Read/write timeout on an established connection.
    pub io_timeout: Duration,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Retries after the first attempt (so `max_retries = 3` means up to
    /// four attempts).
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry, capped at
    /// [`ClientConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            pool_size: 4,
            max_retries: 3,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// Why a remote operation failed.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport failure that survived every retry.
    Io(std::io::Error),
    /// The peer's frame could not be decoded (survived every retry).
    Wire(WireError),
    /// The staging space rejected the put — the memory-pressure policy
    /// signal. Deliberately NOT retried; mirrors
    /// [`xlayer_staging::StagingError::OutOfMemory`].
    OutOfMemory {
        /// Space capacity in bytes.
        cap: u64,
        /// Bytes already resident.
        used: u64,
        /// Size of the rejected object.
        requested: u64,
    },
    /// The service refused the request for a non-transient reason
    /// (`BadRequest`, `ShuttingDown`), or `Busy` outlasted the retries.
    Refused(ErrorFrame),
    /// The service answered with a response type that does not match the
    /// request (protocol violation).
    Protocol(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "remote staging I/O error: {e}"),
            RemoteError::Wire(e) => write!(f, "remote staging wire error: {e}"),
            RemoteError::OutOfMemory {
                cap,
                used,
                requested,
            } => write!(
                f,
                "remote staging out of memory: cap {cap} B, used {used} B, requested {requested} B"
            ),
            RemoteError::Refused(e) => write!(f, "remote staging refused request: {e}"),
            RemoteError::Protocol(d) => write!(f, "remote staging protocol violation: {d}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Is this I/O failure worth a fresh connection and another attempt?
fn transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::Interrupted
    )
}

struct ClientInner {
    addr: SocketAddr,
    cfg: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    next_id: AtomicU64,
}

/// A client of a [`crate::service::StagingService`]. Cheap to clone (all
/// clones share the connection pool); safe to use from many threads.
#[derive(Clone)]
pub struct RemoteClient {
    inner: Arc<ClientInner>,
}

impl RemoteClient {
    /// Resolve `addr` (e.g. `"127.0.0.1:7001"`) and build a client. No
    /// connection is opened until the first request.
    pub fn connect(addr: &str, cfg: ClientConfig) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved empty",
            )
        })?;
        Ok(RemoteClient {
            inner: Arc::new(ClientInner {
                addr,
                cfg,
                pool: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
            }),
        })
    }

    /// The resolved service address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    fn checkout(&self) -> std::io::Result<TcpStream> {
        if let Some(s) = self.inner.pool.lock().pop() {
            return Ok(s);
        }
        let s = TcpStream::connect_timeout(&self.inner.addr, self.inner.cfg.connect_timeout)?;
        s.set_read_timeout(Some(self.inner.cfg.io_timeout))?;
        s.set_write_timeout(Some(self.inner.cfg.io_timeout))?;
        let _ = s.set_nodelay(true);
        Ok(s)
    }

    fn checkin(&self, s: TcpStream) {
        let mut pool = self.inner.pool.lock();
        if pool.len() < self.inner.cfg.pool_size {
            pool.push(s);
        }
    }

    /// One request/response exchange on one connection. Any error means the
    /// connection is dropped, not returned to the pool.
    fn exchange(&self, stream: &mut TcpStream, req: &Request) -> Result<Response, RemoteError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        stream.write_all(&req.encode(id)).map_err(RemoteError::Io)?;
        let mut header_buf = [0u8; HEADER_LEN];
        stream
            .read_exact(&mut header_buf)
            .map_err(RemoteError::Io)?;
        let header = decode_header(&header_buf).map_err(RemoteError::Wire)?;
        let mut payload = vec![0u8; header.payload_len as usize];
        stream.read_exact(&mut payload).map_err(RemoteError::Io)?;
        verify_payload(&header, &payload).map_err(RemoteError::Wire)?;
        if header.request_id != id && header.request_id != 0 {
            return Err(RemoteError::Protocol(format!(
                "response id {} for request id {id}",
                header.request_id
            )));
        }
        let frame = Frame {
            opcode: header.opcode,
            request_id: header.request_id,
            payload,
        };
        Response::decode(&frame).map_err(RemoteError::Wire)
    }

    /// Send a request, retrying transient failures with bounded exponential
    /// backoff. `OutOfMemory`, `BadRequest` and `ShuttingDown` responses
    /// return immediately — only the transport is retried, never policy.
    pub fn call(&self, req: &Request) -> Result<Response, RemoteError> {
        let cfg = &self.inner.cfg;
        let mut backoff = cfg.backoff_base;
        let mut last_err = None;
        for attempt in 0..=cfg.max_retries {
            if attempt > 0 {
                std::thread::sleep(backoff.min(cfg.backoff_cap));
                backoff = backoff.saturating_mul(2);
            }
            let mut stream = match self.checkout() {
                Ok(s) => s,
                Err(e) if transient(e.kind()) => {
                    last_err = Some(RemoteError::Io(e));
                    continue;
                }
                Err(e) => return Err(RemoteError::Io(e)),
            };
            match self.exchange(&mut stream, req) {
                Ok(Response::Error(ErrorFrame::OutOfMemory {
                    cap,
                    used,
                    requested,
                })) => {
                    // Policy signal: surface it, keep the healthy connection.
                    self.checkin(stream);
                    return Err(RemoteError::OutOfMemory {
                        cap,
                        used,
                        requested,
                    });
                }
                Ok(Response::Error(busy @ ErrorFrame::Busy { .. })) => {
                    // Transient service-side condition; retry with backoff.
                    last_err = Some(RemoteError::Refused(busy));
                }
                Ok(Response::Error(e)) => return Err(RemoteError::Refused(e)),
                Ok(resp) => {
                    self.checkin(stream);
                    return Ok(resp);
                }
                Err(RemoteError::Io(e)) if transient(e.kind()) => {
                    // Stale pooled connection or flaky link: fresh socket
                    // next attempt.
                    last_err = Some(RemoteError::Io(e));
                }
                Err(RemoteError::Wire(e)) => {
                    // A corrupted or short frame may be connection-local.
                    last_err = Some(RemoteError::Wire(e));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            RemoteError::Io(std::io::Error::other(
                "retries exhausted without a recorded error",
            ))
        }))
    }

    /// Store one object; returns the shard it landed on.
    pub fn put(&self, obj: &DataObject) -> Result<u32, RemoteError> {
        match self.call(&Request::Put(obj.clone()))? {
            Response::PutOk { shard } => Ok(shard),
            other => Err(RemoteError::Protocol(format!(
                "put answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Fetch the objects under `(name, version)`, optionally clipped to a
    /// query box.
    pub fn get(
        &self,
        name: &str,
        version: u64,
        query: Option<IBox>,
    ) -> Result<Vec<DataObject>, RemoteError> {
        let req = Request::Get {
            name: name.to_string(),
            version,
            query,
        };
        match self.call(&req)? {
            Response::GetOk(objs) => Ok(objs),
            other => Err(RemoteError::Protocol(format!(
                "get answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Fetch descriptors under `(name, version)` — metadata only.
    pub fn describe(&self, name: &str, version: u64) -> Result<Vec<ObjectDesc>, RemoteError> {
        let req = Request::Query {
            name: name.to_string(),
            version,
        };
        match self.call(&req)? {
            Response::QueryOk(descs) => Ok(descs),
            other => Err(RemoteError::Protocol(format!(
                "query answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Evict versions of `name` older than `before_version`; returns bytes
    /// freed.
    pub fn evict_before(&self, name: &str, before_version: u64) -> Result<u64, RemoteError> {
        let req = Request::Delete {
            name: name.to_string(),
            before_version,
        };
        match self.call(&req)? {
            Response::DeleteOk { bytes_freed } => Ok(bytes_freed),
            other => Err(RemoteError::Protocol(format!(
                "delete answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Fetch the service's operation counters and occupancy.
    pub fn service_stats(&self) -> Result<ServiceSnapshot, RemoteError> {
        match self.call(&Request::Stats)? {
            Response::StatsOk(s) => Ok(s),
            other => Err(RemoteError::Protocol(format!(
                "stats answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Ask the service to shut down gracefully. Not retried: a lost ack
    /// after the service acted would otherwise re-send into a closed
    /// listener and mask the success.
    pub fn shutdown(&self) -> Result<(), RemoteError> {
        let mut stream = self.checkout().map_err(RemoteError::Io)?;
        match self.exchange(&mut stream, &Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            Response::Error(e) => Err(RemoteError::Refused(e)),
            other => Err(RemoteError::Protocol(format!(
                "shutdown answered with {:?}",
                other.opcode()
            ))),
        }
    }
}

/// Asynchronous puts into a *remote* staging service: the same put/drain
/// surface as [`xlayer_staging::AsyncStager`], but the transfer threads
/// speak the wire protocol instead of calling `DataSpace::put`. Counting
/// is identical — delivered/rejected/bytes plus the per-key rendezvous —
/// so `workflow::native` can swap one for the other without changing its
/// synchronisation.
pub struct RemoteStager {
    tx: Option<Sender<DataObject>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<TransportStats>,
    client: RemoteClient,
}

impl RemoteStager {
    /// Start `nthreads` transfer threads sending over `client`, with a
    /// queue depth of `queue_depth` objects.
    pub fn new(client: RemoteClient, nthreads: usize, queue_depth: usize) -> Self {
        let (tx, rx) = bounded::<DataObject>(queue_depth.max(1));
        let stats = Arc::new(TransportStats::default());
        let workers = (0..nthreads.max(1))
            .map(|_| {
                let rx = rx.clone();
                let client = client.clone();
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    while let Ok(obj) = rx.recv() {
                        let bytes = obj.desc.bytes;
                        let key = obj.desc.key.clone();
                        match client.put(&obj) {
                            Ok(_) => {
                                stats.delivered.fetch_add(1, Ordering::Relaxed);
                                stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                            }
                            Err(RemoteError::OutOfMemory { .. }) => {
                                stats.rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                stats.failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        stats.note_processed(&key);
                    }
                })
            })
            .collect();
        RemoteStager {
            tx: Some(tx),
            workers,
            stats,
            client,
        }
    }

    /// Enqueue an object for transfer; blocks only on a full queue
    /// (back-pressure). After shutdown the object comes back in the error
    /// so the caller can handle it synchronously — same contract as
    /// `AsyncStager::put`.
    #[allow(clippy::result_large_err)]
    pub fn put(&self, obj: DataObject) -> Result<(), TransportClosed> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(TransportClosed(obj));
        };
        tx.send(obj).map_err(|e| TransportClosed(e.0))
    }

    /// The client the transfer threads send through.
    pub fn client(&self) -> &RemoteClient {
        &self.client
    }

    /// Shared statistics handle (same type as `AsyncStager`'s, so
    /// consumers can `wait_processed` on either transport).
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Objects delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// Puts rejected by the remote space's memory cap.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Close the queue and wait until every enqueued object has been sent
    /// (or rejected/failed). Returns (delivered, rejected), like
    /// `AsyncStager::drain`.
    pub fn drain(mut self) -> Result<(u64, u64), DrainError> {
        drop(self.tx.take());
        let mut panicked = 0;
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                panicked += 1;
            }
        }
        let delivered = self.stats.delivered.load(Ordering::Relaxed);
        let rejected = self.stats.rejected.load(Ordering::Relaxed);
        if panicked > 0 {
            return Err(DrainError {
                panicked,
                delivered,
                rejected,
            });
        }
        Ok((delivered, rejected))
    }
}

impl Drop for RemoteStager {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats.close();
    }
}
