//! Client side of the staging wire: a pooled, retrying [`RemoteClient`]
//! and the [`RemoteStager`] drop-in for `AsyncStager`.
//!
//! Retry policy, in one sentence: transient transport faults (refused or
//! reset connections, timeouts, short reads, corrupted frames, `Busy`
//! refusals) are retried with bounded exponential backoff on a fresh
//! connection; **`OutOfMemory` is never retried** — it is the paper's
//! memory-pressure policy signal (Eq. 10), and hiding it behind retries
//! would blind the adaptation engine that must react to it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use xlayer_amr::boxes::IBox;
use xlayer_staging::{
    BatchClosed, DataObject, DrainError, ObjectDesc, ObjectKey, StageTask, TransportClosed,
    TransportStats,
};

use crate::hist::{LatencyHistogram, LatencySnapshot};
use crate::iovec::write_vectored_all;
use crate::pool::BufferPool;
use crate::wire::{
    checksum, chunk_data_parts, clamp_chunk_size, decode_chunk_end, decode_chunk_prefix,
    decode_header, encode_chunk_end, frame_header, put_frame_parts, verify_payload, ChunkEnd,
    ErrorFrame, Opcode, Request, Response, ServiceSnapshot, WireError, CHUNK_PREFIX_LEN,
    DEFAULT_CHUNK_SIZE, HEADER_LEN,
};

/// Configuration of a [`RemoteClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Timeout for establishing a connection.
    pub connect_timeout: Duration,
    /// Read/write timeout on an established connection.
    pub io_timeout: Duration,
    /// Idle connections kept for reuse.
    pub pool_size: usize,
    /// Retries after the first attempt (so `max_retries = 3` means up to
    /// four attempts).
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry, capped at
    /// [`ClientConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Chunk size proposed for chunked streams (the service clamps it to
    /// the protocol's bounds).
    pub chunk_size: u32,
    /// Objects at least this many bytes are put with the chunked stream
    /// protocol instead of a single frame. The default is the largest
    /// buffer-pool size class: below it a whole frame recycles through the
    /// pool, above it single-frame transfers would allocate transiently
    /// per op (and past `MAX_PAYLOAD` they cannot be framed at all).
    pub chunk_threshold: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            pool_size: 4,
            max_retries: 3,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            chunk_size: DEFAULT_CHUNK_SIZE,
            chunk_threshold: 8 << 20,
        }
    }
}

/// Why a remote operation failed.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport failure that survived every retry.
    Io(std::io::Error),
    /// The peer's frame could not be decoded (survived every retry).
    Wire(WireError),
    /// The staging space rejected the put — the memory-pressure policy
    /// signal. Deliberately NOT retried; mirrors
    /// [`xlayer_staging::StagingError::OutOfMemory`].
    OutOfMemory {
        /// Space capacity in bytes.
        cap: u64,
        /// Bytes already resident.
        used: u64,
        /// Size of the rejected object.
        requested: u64,
    },
    /// The service refused the request for a non-transient reason
    /// (`BadRequest`, `ShuttingDown`), or `Busy` outlasted the retries.
    Refused(ErrorFrame),
    /// The service answered with a response type that does not match the
    /// request (protocol violation).
    Protocol(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "remote staging I/O error: {e}"),
            RemoteError::Wire(e) => write!(f, "remote staging wire error: {e}"),
            RemoteError::OutOfMemory {
                cap,
                used,
                requested,
            } => write!(
                f,
                "remote staging out of memory: cap {cap} B, used {used} B, requested {requested} B"
            ),
            RemoteError::Refused(e) => write!(f, "remote staging refused request: {e}"),
            RemoteError::Protocol(d) => write!(f, "remote staging protocol violation: {d}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// Is this I/O failure worth a fresh connection and another attempt?
fn transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::Interrupted
    )
}

/// Point-in-time copy of a client's retry counters, by cause. Each field
/// counts one retryable-failure classification inside the
/// [`RemoteClient`] retry loop — including the failure that exhausts the
/// budget — so `busy + io + wire` is the number of extra attempts the
/// client made beyond the first try of each op. Feed it to a
/// retry-amplification metric as `1 + retries / completed_ops`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Retries triggered by a `Busy` refusal frame from the service.
    pub retries_busy: u64,
    /// Retries triggered by a transient transport failure (refused or
    /// reset connection, timeout, short read, …).
    pub retries_io: u64,
    /// Retries triggered by an undecodable or corrupted response frame.
    pub retries_wire: u64,
}

impl ClientStats {
    /// Total retries across all causes.
    pub fn total(&self) -> u64 {
        self.retries_busy
            .saturating_add(self.retries_io)
            .saturating_add(self.retries_wire)
    }

    /// Field-wise sum (aggregating per-shard clients into a cluster view).
    pub fn add(&mut self, other: &ClientStats) {
        self.retries_busy = self.retries_busy.saturating_add(other.retries_busy);
        self.retries_io = self.retries_io.saturating_add(other.retries_io);
        self.retries_wire = self.retries_wire.saturating_add(other.retries_wire);
    }
}

/// Atomic backing store for [`ClientStats`]. Pure event counters: Relaxed
/// everywhere, nothing is ordered against them.
#[derive(Default)]
struct RetryCounters {
    busy: AtomicU64,
    io: AtomicU64,
    wire: AtomicU64,
}

struct ClientInner {
    addr: SocketAddr,
    cfg: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    bufs: Arc<BufferPool>,
    next_id: AtomicU64,
    put_ns: LatencyHistogram,
    get_ns: LatencyHistogram,
    retries: RetryCounters,
}

/// Nanoseconds since `t0`, saturating.
pub(crate) fn elapsed_ns(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// A client of a [`crate::service::StagingService`]. Cheap to clone (all
/// clones share the connection pool); safe to use from many threads.
#[derive(Clone)]
pub struct RemoteClient {
    inner: Arc<ClientInner>,
}

impl RemoteClient {
    /// Resolve `addr` (e.g. `"127.0.0.1:7001"`) and build a client. No
    /// connection is opened until the first request.
    pub fn connect(addr: &str, cfg: ClientConfig) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved empty",
            )
        })?;
        Ok(RemoteClient {
            inner: Arc::new(ClientInner {
                addr,
                cfg,
                pool: Mutex::new(Vec::new()),
                bufs: Arc::new(BufferPool::new()),
                next_id: AtomicU64::new(1),
                put_ns: LatencyHistogram::new(),
                get_ns: LatencyHistogram::new(),
                retries: RetryCounters::default(),
            }),
        })
    }

    /// The resolved service address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The client-side buffer pool (scratch for frame bodies and received
    /// payloads; all clones of this client share it).
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.inner.bufs
    }

    fn checkout(&self) -> std::io::Result<TcpStream> {
        if let Some(s) = self.inner.pool.lock().pop() {
            return Ok(s);
        }
        let s = TcpStream::connect_timeout(&self.inner.addr, self.inner.cfg.connect_timeout)?;
        s.set_read_timeout(Some(self.inner.cfg.io_timeout))?;
        s.set_write_timeout(Some(self.inner.cfg.io_timeout))?;
        let _ = s.set_nodelay(true);
        Ok(s)
    }

    fn checkin(&self, s: TcpStream) {
        let mut pool = self.inner.pool.lock();
        if pool.len() < self.inner.cfg.pool_size {
            pool.push(s);
        }
    }

    /// Send one request frame: body encoded into pooled scratch, header +
    /// body written vectored. For `Put`, the payload bytes are written as
    /// their own segment straight from the object — never copied into the
    /// frame.
    fn send_request(
        &self,
        stream: &mut TcpStream,
        req: &Request,
        id: u64,
    ) -> Result<(), RemoteError> {
        let mut scratch = self.inner.bufs.acquire(0);
        if let Request::Put(obj) = req {
            let header = put_frame_parts(obj, id, &mut scratch);
            write_vectored_all(stream, &[&header, &scratch, obj.payload.as_ref()])
                .map_err(RemoteError::Io)
        } else {
            req.encode_body(&mut scratch);
            let header = frame_header(req.opcode(), id, scratch.len() as u32, checksum(&scratch));
            write_vectored_all(stream, &[&header, &scratch]).map_err(RemoteError::Io)
        }
    }

    /// Read one response frame into pooled scratch and decode it.
    fn read_response(&self, stream: &mut TcpStream, id: u64) -> Result<Response, RemoteError> {
        let mut header_buf = [0u8; HEADER_LEN];
        stream
            .read_exact(&mut header_buf)
            .map_err(RemoteError::Io)?;
        let header = decode_header(&header_buf).map_err(RemoteError::Wire)?;
        let mut payload = self.inner.bufs.acquire(header.payload_len as usize);
        stream.read_exact(&mut payload).map_err(RemoteError::Io)?;
        verify_payload(&header, &payload).map_err(RemoteError::Wire)?;
        if header.request_id != id && header.request_id != 0 {
            return Err(RemoteError::Protocol(format!(
                "response id {} for request id {id}",
                header.request_id
            )));
        }
        Response::decode_body(header.opcode, &payload).map_err(RemoteError::Wire)
    }

    /// One request/response exchange on one connection. Any error means the
    /// connection is dropped, not returned to the pool.
    fn exchange(&self, stream: &mut TcpStream, req: &Request) -> Result<Response, RemoteError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.send_request(stream, req, id)?;
        self.read_response(stream, id)
    }

    /// Run one-attempt exchanges under the retry policy: transient
    /// transport failures retry with bounded exponential backoff on a
    /// fresh connection; `OutOfMemory`, `BadRequest` and `ShuttingDown`
    /// responses return immediately — only the transport is retried,
    /// never policy.
    fn call_with(
        &self,
        attempt_once: impl Fn(&Self, &mut TcpStream) -> Result<Response, RemoteError>,
    ) -> Result<Response, RemoteError> {
        let cfg = &self.inner.cfg;
        let mut backoff = cfg.backoff_base;
        let mut last_err = None;
        for attempt in 0..=cfg.max_retries {
            if attempt > 0 {
                std::thread::sleep(backoff.min(cfg.backoff_cap));
                backoff = backoff.saturating_mul(2);
            }
            let mut stream = match self.checkout() {
                Ok(s) => s,
                Err(e) if transient(e.kind()) => {
                    self.inner.retries.io.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(RemoteError::Io(e));
                    continue;
                }
                Err(e) => return Err(RemoteError::Io(e)),
            };
            match attempt_once(self, &mut stream) {
                Ok(Response::Error(ErrorFrame::OutOfMemory {
                    cap,
                    used,
                    requested,
                })) => {
                    // Policy signal: surface it, keep the healthy connection.
                    self.checkin(stream);
                    return Err(RemoteError::OutOfMemory {
                        cap,
                        used,
                        requested,
                    });
                }
                Ok(Response::Error(busy @ ErrorFrame::Busy { .. })) => {
                    // Transient service-side condition; retry with backoff.
                    self.inner.retries.busy.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(RemoteError::Refused(busy));
                }
                Ok(Response::Error(e)) => return Err(RemoteError::Refused(e)),
                Ok(resp) => {
                    self.checkin(stream);
                    return Ok(resp);
                }
                Err(RemoteError::Io(e)) if transient(e.kind()) => {
                    // Stale pooled connection or flaky link: fresh socket
                    // next attempt.
                    self.inner.retries.io.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(RemoteError::Io(e));
                }
                Err(RemoteError::Wire(e)) => {
                    // A corrupted or short frame may be connection-local.
                    self.inner.retries.wire.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(RemoteError::Wire(e));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            RemoteError::Io(std::io::Error::other(
                "retries exhausted without a recorded error",
            ))
        }))
    }

    /// Send a request under the retry policy (see [`Self::call_with`]).
    pub fn call(&self, req: &Request) -> Result<Response, RemoteError> {
        self.call_with(|me, stream| me.exchange(stream, req))
    }

    /// Store one object; returns the shard it landed on. Picks the
    /// transfer protocol by size: objects at or above
    /// [`ClientConfig::chunk_threshold`] stream as chunks, smaller ones go
    /// as a single frame.
    pub fn put(&self, obj: &DataObject) -> Result<u32, RemoteError> {
        let t0 = std::time::Instant::now();
        let res = if obj.desc.bytes >= self.inner.cfg.chunk_threshold {
            self.put_chunked(obj)
        } else {
            self.put_whole(obj)
        };
        if res.is_ok() {
            self.inner.put_ns.record(elapsed_ns(t0));
        }
        res
    }

    /// Store one object as a single `Put` frame, regardless of size (fails
    /// on objects too large for one frame — use [`Self::put_chunked`]).
    pub fn put_whole(&self, obj: &DataObject) -> Result<u32, RemoteError> {
        match self.call(&Request::Put(obj.clone()))? {
            Response::PutOk { shard } => Ok(shard),
            other => Err(RemoteError::Protocol(format!(
                "put answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Store one object as a chunked stream: a `PutChunked` descriptor
    /// frame, the payload as checksummed chunk frames sliced straight from
    /// the object (never copied), and a terminal frame — then one
    /// response. No object size ceiling; retried like any other call.
    pub fn put_chunked(&self, obj: &DataObject) -> Result<u32, RemoteError> {
        let resp = self.call_with(|me, stream| me.exchange_put_chunked(stream, obj))?;
        match resp {
            Response::PutChunkedOk { shard } => Ok(shard),
            other => Err(RemoteError::Protocol(format!(
                "chunked put answered with {:?}",
                other.opcode()
            ))),
        }
    }

    fn exchange_put_chunked(
        &self,
        stream: &mut TcpStream,
        obj: &DataObject,
    ) -> Result<Response, RemoteError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let chunk = clamp_chunk_size(self.inner.cfg.chunk_size) as usize;
        let head = Request::PutChunked {
            desc: obj.desc.clone(),
            chunk_size: chunk as u32,
        };
        self.send_request(stream, &head, id)?;
        let payload: &[u8] = obj.payload.as_ref();
        let mut off = 0usize;
        while off < payload.len() {
            let n = chunk.min(payload.len() - off);
            let data = &payload[off..off + n];
            let (header, prefix) = chunk_data_parts(id, 0, off as u64, data);
            write_vectored_all(stream, &[&header, &prefix, data]).map_err(RemoteError::Io)?;
            off += n;
        }
        let end = encode_chunk_end(
            id,
            ChunkEnd {
                objects: 1,
                total_bytes: payload.len() as u64,
            },
        );
        stream.write_all(&end).map_err(RemoteError::Io)?;
        self.read_response(stream, id)
    }

    /// Fetch the objects under `(name, version)`, optionally clipped to a
    /// query box. Always uses the chunked stream protocol: the service
    /// serves it zero-copy and it has no object size ceiling, so there is
    /// no size the single-frame path handles better by more than a frame
    /// of overhead.
    pub fn get(
        &self,
        name: &str,
        version: u64,
        query: Option<IBox>,
    ) -> Result<Vec<DataObject>, RemoteError> {
        let t0 = std::time::Instant::now();
        let res = self.get_chunked(name, version, query);
        if res.is_ok() {
            self.inner.get_ns.record(elapsed_ns(t0));
        }
        res
    }

    /// Fetch objects as a single `GetOk` frame (fails when the result
    /// exceeds the frame payload ceiling — use [`Self::get_chunked`]).
    pub fn get_whole(
        &self,
        name: &str,
        version: u64,
        query: Option<IBox>,
    ) -> Result<Vec<DataObject>, RemoteError> {
        let req = Request::Get {
            name: name.to_string(),
            version,
            query,
        };
        match self.call(&req)? {
            Response::GetOk(objs) => Ok(objs),
            other => Err(RemoteError::Protocol(format!(
                "get answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Fetch objects as a chunked stream, assembling each payload directly
    /// into its destination buffer.
    pub fn get_chunked(
        &self,
        name: &str,
        version: u64,
        query: Option<IBox>,
    ) -> Result<Vec<DataObject>, RemoteError> {
        let resp =
            self.call_with(|me, stream| me.exchange_get_chunked(stream, name, version, &query))?;
        match resp {
            Response::GetOk(objs) => Ok(objs),
            other => Err(RemoteError::Protocol(format!(
                "chunked get answered with {:?}",
                other.opcode()
            ))),
        }
    }

    fn exchange_get_chunked(
        &self,
        stream: &mut TcpStream,
        name: &str,
        version: u64,
        query: &Option<IBox>,
    ) -> Result<Response, RemoteError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let req = Request::GetChunked {
            name: name.to_string(),
            version,
            query: *query,
            chunk_size: self.inner.cfg.chunk_size,
        };
        self.send_request(stream, &req, id)?;
        let (descs, chunk_size) = match self.read_response(stream, id)? {
            Response::GetChunkedOk { descs, chunk_size } => (descs, chunk_size),
            // Typed refusals surface to the retry loop's classification.
            Response::Error(e) => return Ok(Response::Error(e)),
            other => {
                return Err(RemoteError::Protocol(format!(
                    "chunked get answered with {:?}",
                    other.opcode()
                )))
            }
        };
        let chunk = chunk_size as u64;
        // Destination allocations double as the final object payloads.
        let mut bufs: Vec<Vec<u8>> = descs.iter().map(|d| vec![0u8; d.bytes as usize]).collect();
        let mut next: Vec<u64> = vec![0; descs.len()];
        let end = loop {
            let mut header_buf = [0u8; HEADER_LEN];
            stream
                .read_exact(&mut header_buf)
                .map_err(RemoteError::Io)?;
            let header = decode_header(&header_buf).map_err(RemoteError::Wire)?;
            if header.request_id != id {
                return Err(RemoteError::Protocol(format!(
                    "frame for request {} interleaved into stream {id}",
                    header.request_id
                )));
            }
            match header.opcode {
                Opcode::ChunkData if header.payload_len as usize >= CHUNK_PREFIX_LEN => {
                    let mut prefix = [0u8; CHUNK_PREFIX_LEN];
                    stream.read_exact(&mut prefix).map_err(RemoteError::Io)?;
                    let (index, offset) = decode_chunk_prefix(&prefix);
                    let data_len = (header.payload_len as usize - CHUNK_PREFIX_LEN) as u64;
                    let dst = next
                        .get(index as usize)
                        .copied()
                        .filter(|&expected| {
                            let total = descs[index as usize].bytes;
                            match offset.checked_add(data_len) {
                                Some(end_off) => {
                                    offset == expected
                                        && end_off <= total
                                        && (data_len == chunk || end_off == total)
                                }
                                None => false,
                            }
                        })
                        .map(|_| offset as usize);
                    let Some(at) = dst else {
                        return Err(RemoteError::Protocol(format!(
                            "chunk (object {index}, offset {offset}) out of sequence"
                        )));
                    };
                    let buf = &mut bufs[index as usize][at..at + data_len as usize];
                    stream.read_exact(buf).map_err(RemoteError::Io)?;
                    let cks = checksum(&prefix) ^ checksum(buf);
                    if cks != header.checksum {
                        return Err(RemoteError::Wire(WireError::ChecksumMismatch {
                            header: header.checksum,
                            computed: cks,
                        }));
                    }
                    next[index as usize] = offset + data_len;
                }
                Opcode::ChunkEnd => {
                    let mut payload = self.inner.bufs.acquire(header.payload_len as usize);
                    stream.read_exact(&mut payload).map_err(RemoteError::Io)?;
                    verify_payload(&header, &payload).map_err(RemoteError::Wire)?;
                    break decode_chunk_end(&payload).map_err(RemoteError::Wire)?;
                }
                other => {
                    return Err(RemoteError::Protocol(format!(
                        "opcode {:#04x} inside a chunk stream",
                        other as u8
                    )))
                }
            }
        };
        let received: u64 = next.iter().sum();
        if end.objects as usize != descs.len()
            || end.total_bytes != received
            || next.iter().zip(&descs).any(|(&got, d)| got != d.bytes)
        {
            return Err(RemoteError::Wire(WireError::Truncated));
        }
        let mut objs = Vec::with_capacity(descs.len());
        for (desc, buf) in descs.into_iter().zip(bufs) {
            match DataObject::from_wire(desc, Bytes::from(buf)) {
                Some(o) => objs.push(o),
                None => return Err(RemoteError::Wire(WireError::InconsistentObject)),
            }
        }
        Ok(Response::GetOk(objs))
    }

    /// Fetch descriptors under `(name, version)` — metadata only.
    pub fn describe(&self, name: &str, version: u64) -> Result<Vec<ObjectDesc>, RemoteError> {
        let req = Request::Query {
            name: name.to_string(),
            version,
        };
        match self.call(&req)? {
            Response::QueryOk(descs) => Ok(descs),
            other => Err(RemoteError::Protocol(format!(
                "query answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Evict versions of `name` older than `before_version`; returns bytes
    /// freed.
    pub fn evict_before(&self, name: &str, before_version: u64) -> Result<u64, RemoteError> {
        let req = Request::Delete {
            name: name.to_string(),
            before_version,
        };
        match self.call(&req)? {
            Response::DeleteOk { bytes_freed } => Ok(bytes_freed),
            other => Err(RemoteError::Protocol(format!(
                "delete answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Percentile summary of successful [`Self::put`] wall times (includes
    /// retries and backoff — the latency the producer actually saw).
    pub fn put_latency(&self) -> LatencySnapshot {
        self.inner.put_ns.snapshot()
    }

    /// Percentile summary of successful [`Self::get`] wall times.
    pub fn get_latency(&self) -> LatencySnapshot {
        self.inner.get_ns.snapshot()
    }

    /// The put-latency histogram itself (for cluster-wide aggregation).
    pub(crate) fn put_hist(&self) -> &LatencyHistogram {
        &self.inner.put_ns
    }

    /// The get-latency histogram itself (for cluster-wide aggregation).
    pub(crate) fn get_hist(&self) -> &LatencyHistogram {
        &self.inner.get_ns
    }

    /// Point-in-time copy of the retry counters, by cause (shared by all
    /// clones of this client).
    pub fn client_stats(&self) -> ClientStats {
        ClientStats {
            retries_busy: self.inner.retries.busy.load(Ordering::Relaxed),
            retries_io: self.inner.retries.io.load(Ordering::Relaxed),
            retries_wire: self.inner.retries.wire.load(Ordering::Relaxed),
        }
    }

    /// Fetch the service's operation counters and occupancy.
    pub fn service_stats(&self) -> Result<ServiceSnapshot, RemoteError> {
        match self.call(&Request::Stats)? {
            Response::StatsOk(s) => Ok(s),
            other => Err(RemoteError::Protocol(format!(
                "stats answered with {:?}",
                other.opcode()
            ))),
        }
    }

    /// Ask the service to shut down gracefully. Not retried: a lost ack
    /// after the service acted would otherwise re-send into a closed
    /// listener and mask the success.
    pub fn shutdown(&self) -> Result<(), RemoteError> {
        let mut stream = self.checkout().map_err(RemoteError::Io)?;
        match self.exchange(&mut stream, &Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            Response::Error(e) => Err(RemoteError::Refused(e)),
            other => Err(RemoteError::Protocol(format!(
                "shutdown answered with {:?}",
                other.opcode()
            ))),
        }
    }
}

/// Asynchronous puts into a *remote* staging service: the same put/drain
/// surface as [`xlayer_staging::AsyncStager`], but the transfer threads
/// speak the wire protocol instead of calling `DataSpace::put`. Counting
/// is identical — delivered/rejected/bytes plus the per-key rendezvous —
/// so `workflow::native` can swap one for the other without changing its
/// synchronisation.
pub struct RemoteStager {
    tx: Option<Sender<StageTask>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<TransportStats>,
    client: RemoteClient,
}

impl RemoteStager {
    /// Start `nthreads` transfer threads sending over `client`, with a
    /// queue depth of `queue_depth` tasks.
    ///
    /// Unlike [`xlayer_staging::AsyncStager`], the queue carries tasks
    /// singly: a batch fans out across the worker pool so a step's wire
    /// puts go down `nthreads` connections concurrently instead of
    /// serializing on whichever worker drew the batch.
    pub fn new(client: RemoteClient, nthreads: usize, queue_depth: usize) -> Self {
        let (tx, rx) = bounded::<StageTask>(queue_depth.max(1));
        let stats = Arc::new(TransportStats::default());
        let workers = (0..nthreads.max(1))
            .map(|_| {
                let rx = rx.clone();
                let client = client.clone();
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    // Greedy drain: a step's batch lands on the queue in
                    // one go, so after the blocking recv pull whatever
                    // else is already queued and answer the rendezvous
                    // once per run — one waiter wake-up per drained run
                    // instead of one per object. The run is capped so a
                    // producer that outpaces the wire still sees
                    // back-pressure from the bounded queue.
                    let mut run: Vec<StageTask> = Vec::new();
                    while let Ok(task) = rx.recv() {
                        run.push(task);
                        while run.len() < 64 {
                            match rx.try_recv() {
                                Ok(t) => run.push(t),
                                Err(_) => break,
                            }
                        }
                        // Per-key processed tally for this run; a run
                        // rarely spans more than one key, so a flat Vec
                        // beats a map.
                        let mut notes: Vec<(ObjectKey, u64)> = Vec::new();
                        for task in run.drain(..) {
                            let obj = task.materialize();
                            let bytes = obj.desc.bytes;
                            let key = obj.desc.key.clone();
                            match client.put(&obj) {
                                Ok(_) => {
                                    stats.delivered.fetch_add(1, Ordering::Relaxed);
                                    stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                                }
                                Err(RemoteError::OutOfMemory { .. }) => {
                                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    stats.failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            match notes.iter_mut().find(|(k, _)| *k == key) {
                                Some((_, n)) => *n += 1,
                                None => notes.push((key, 1)),
                            }
                        }
                        for (key, n) in notes {
                            stats.note_processed_n(&key, n);
                        }
                    }
                })
            })
            .collect();
        RemoteStager {
            tx: Some(tx),
            workers,
            stats,
            client,
        }
    }

    /// Enqueue an object for transfer; blocks only on a full queue
    /// (back-pressure). After shutdown the object comes back in the error
    /// so the caller can handle it synchronously — same contract as
    /// `AsyncStager::put`.
    #[allow(clippy::result_large_err)]
    pub fn put(&self, obj: DataObject) -> Result<(), TransportClosed> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(TransportClosed(obj));
        };
        tx.send(StageTask::Ready(obj))
            .map_err(|e| TransportClosed(e.0.materialize()))
    }

    /// Enqueue a batch of tasks, fanning them out across the worker pool.
    /// On a closed transport the unsent remainder comes back in the error
    /// (tasks already accepted stay in flight and are counted by the
    /// workers) — same contract as `AsyncStager::put_batch`.
    pub fn put_batch(&self, tasks: Vec<StageTask>) -> Result<(), BatchClosed> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(BatchClosed {
                enqueued: 0,
                rest: tasks,
            });
        };
        let mut enqueued = 0u64;
        let mut it = tasks.into_iter();
        while let Some(task) = it.next() {
            match tx.send(task) {
                Ok(()) => enqueued += 1,
                Err(e) => {
                    let mut rest = vec![e.0];
                    rest.extend(it);
                    return Err(BatchClosed { enqueued, rest });
                }
            }
        }
        Ok(())
    }

    /// The client the transfer threads send through.
    pub fn client(&self) -> &RemoteClient {
        &self.client
    }

    /// Shared statistics handle (same type as `AsyncStager`'s, so
    /// consumers can `wait_processed` on either transport).
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Objects delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// Puts rejected by the remote space's memory cap.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Close the queue and wait until every enqueued object has been sent
    /// (or rejected/failed). Returns (delivered, rejected), like
    /// `AsyncStager::drain`.
    pub fn drain(mut self) -> Result<(u64, u64), DrainError> {
        drop(self.tx.take());
        let mut panicked = 0;
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                panicked += 1;
            }
        }
        let delivered = self.stats.delivered.load(Ordering::Relaxed);
        let rejected = self.stats.rejected.load(Ordering::Relaxed);
        if panicked > 0 {
            return Err(DrainError {
                panicked,
                delivered,
                rejected,
            });
        }
        Ok((delivered, rejected))
    }
}

impl Drop for RemoteStager {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats.close();
    }
}
