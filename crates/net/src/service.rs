//! `StagingService`: the staging space behind a TCP listener.
//!
//! One accept thread owns the listener; each accepted connection gets a
//! worker thread (DART's one-server-thread-per-client model) under a
//! bounded pool — when the pool is full, the peer receives a typed `Busy`
//! error frame instead of a silently dropped connection. Reads carry a
//! short timeout used as an idle tick so workers observe the stop flag;
//! graceful shutdown is: set the flag, poke the listener with a loopback
//! connect to unblock `accept`, join everything.
//!
//! Memory-cap rejections from the space ([`StagingError::OutOfMemory`])
//! are answered with `OutOfMemory` error frames carrying cap/used/requested
//! — the paper's Eq. 10 pressure signal crosses the wire intact instead of
//! killing the connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use xlayer_staging::{DataObject, DataSpace, ObjectDesc, Sharding, StagingError};

use crate::iovec::write_vectored_all;
use crate::pool::{BufferPool, PooledBuf};
use crate::wire::{
    checksum, chunk_data_parts, chunk_data_parts_cached, clamp_chunk_size, decode_chunk_end,
    decode_chunk_prefix, decode_header, encode_chunk_end, frame_header, verify_payload, ChunkEnd,
    ErrorFrame, Opcode, Request, Response, ServiceSnapshot, CHUNK_PREFIX_LEN, HEADER_LEN,
    MAX_CHUNKED_OBJECT,
};

/// Configuration for a [`StagingService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of staging servers (shards) in the backing space.
    pub servers: usize,
    /// Memory cap per staging server in bytes (paper Eq. 10).
    pub memory_per_server: u64,
    /// How objects are routed to shards.
    pub sharding: Sharding,
    /// Maximum concurrently served connections; excess peers get a `Busy`
    /// error frame and are closed.
    pub max_connections: u32,
    /// Socket read timeout. Doubles as the idle tick at which worker
    /// threads re-check the stop flag, so it bounds shutdown latency.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Upper bound on the chunk size this service uses for chunked GET
    /// streams: a client's proposal is capped here, then clamped to the
    /// protocol bounds, and the effective size is announced in the
    /// `GetChunkedOk` head frame. (PUT streams are paced by the sender, so
    /// this does not apply to them.)
    pub chunk_size: u32,
    /// Directory for the disk spill tier's per-server object logs. `None`
    /// disables the tier (puts beyond the memory cap are rejected, the
    /// pre-tier behaviour). Each service instance logs under its own
    /// `svc-<port>` subdirectory, so shards of a cluster can share one
    /// template directory without colliding.
    pub disk_dir: Option<std::path::PathBuf>,
    /// Per staging server, the cap on live spilled payload bytes (only
    /// meaningful with `disk_dir` set).
    pub disk_budget: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            servers: 2,
            memory_per_server: 64 << 20,
            sharding: Sharding::RoundRobin,
            max_connections: 32,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
            chunk_size: crate::wire::DEFAULT_CHUNK_SIZE,
            disk_dir: None,
            disk_budget: u64::MAX,
        }
    }
}

/// Per-operation counters, updated atomically by worker threads and
/// surfaced to clients through the `Stats` opcode.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// `Put` requests served (accepted and rejected).
    pub puts: AtomicU64,
    /// `Get` requests served.
    pub gets: AtomicU64,
    /// `Query` requests served.
    pub queries: AtomicU64,
    /// `Delete` requests served.
    pub deletes: AtomicU64,
    /// `Stats` requests served.
    pub stats_calls: AtomicU64,
    /// Frames that failed to decode.
    pub wire_errors: AtomicU64,
    /// Puts rejected by the space's memory cap.
    pub rejected_oom: AtomicU64,
    /// Connections accepted into the pool.
    pub conns_accepted: AtomicU64,
    /// Connections refused with `Busy` because the pool was full.
    pub conns_refused: AtomicU64,
    /// Frame bytes received (headers + payloads).
    pub bytes_in: AtomicU64,
    /// Frame bytes sent (headers + payloads).
    pub bytes_out: AtomicU64,
    /// Chunked-get streams whose per-chunk sums came from the cache.
    pub chunksum_hits: AtomicU64,
    /// Chunked-get streams that had to recompute per-chunk sums.
    pub chunksum_misses: AtomicU64,
    /// `Busy` error frames actually written to refused peers. Differs from
    /// `conns_refused` (which counts refusal decisions) when the refusal
    /// frame itself fails to send — this one is what load generators can
    /// reconcile against client-side Busy retries.
    pub busy_frames: AtomicU64,
}

impl ServiceStats {
    /// Snapshot the counters together with the space's occupancy, the wire
    /// buffer pool's hit/miss/outstanding counts, and the disk tier's
    /// spill/promote/hit counters (zeros when no tier is attached).
    pub fn snapshot(&self, space: &DataSpace, pool: &BufferPool) -> ServiceSnapshot {
        let tier = space.tier_stats();
        ServiceSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            stats_calls: self.stats_calls.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            rejected_oom: self.rejected_oom.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            used: space.used(),
            capacity: space.capacity(),
            pool_hits: pool.hits(),
            pool_misses: pool.misses(),
            pool_outstanding: pool.outstanding(),
            tier_spilled: tier.spilled,
            tier_promoted: tier.promoted,
            tier_disk_used: tier.disk_used,
            tier_disk_hits: tier.disk_hits,
            tier_disk_budget: tier.disk_budget,
            tier_disk_headroom: tier.disk_budget.saturating_sub(tier.disk_used),
            chunksum_hits: self.chunksum_hits.load(Ordering::Relaxed),
            chunksum_misses: self.chunksum_misses.load(Ordering::Relaxed),
            busy_frames: self.busy_frames.load(Ordering::Relaxed),
        }
    }
}

struct Inner {
    space: Arc<DataSpace>,
    stats: Arc<ServiceStats>,
    pool: Arc<BufferPool>,
    chunk_sums: ChunkSumCache,
    stop: AtomicBool,
    active: AtomicU32,
    addr: SocketAddr,
    cfg: ServiceConfig,
}

/// Per-chunk data checksums of stored objects, keyed by payload identity.
///
/// A chunk frame's checksum is `checksum(prefix) ^ checksum(data)`
/// (see `wire::chunk_data_parts_cached`), so the data half depends only on
/// the stored bytes and the chunk size — not on the request or the chunk's
/// position in a response. Stored objects are immutable behind their
/// `Arc`, which makes those sums cacheable: `serve_put_chunked` learns
/// them for free while verifying the inbound stream, and `serve_get_chunked`
/// then streams the object without a single checksum pass over the
/// payload. For a memory-bound staging service that pass is the dominant
/// per-get CPU cost (the data bytes are otherwise only touched by the
/// kernel's socket copy).
///
/// Entries are keyed by the `Arc`'s allocation address and hold a `Weak`
/// back-reference: the weak keeps the allocation's address from being
/// reused while the entry lives, and an entry whose weak no longer
/// upgrades to the queried object is dead (evicted object) and is ignored.
struct ChunkSumCache {
    // BTreeMap: prune order is a pure function of the keys, never of a
    // hasher's bucket layout.
    map: std::sync::Mutex<std::collections::BTreeMap<usize, ChunkSumEntry>>,
}

struct ChunkSumEntry {
    holder: std::sync::Weak<DataObject>,
    chunk: u32,
    sums: Arc<Vec<u32>>,
}

impl ChunkSumCache {
    /// Entries kept before dead-weak pruning, then wholesale clearing.
    const CAP: usize = 256;

    fn new() -> Self {
        ChunkSumCache {
            map: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The cached sums for `obj` chunked at `chunk` bytes, if present and
    /// still referring to this exact allocation.
    fn lookup(&self, obj: &Arc<DataObject>, chunk: u32) -> Option<Arc<Vec<u32>>> {
        let map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        let entry = map.get(&(Arc::as_ptr(obj) as usize))?;
        let live = entry
            .holder
            .upgrade()
            .is_some_and(|held| Arc::ptr_eq(&held, obj));
        (live && entry.chunk == chunk).then(|| Arc::clone(&entry.sums))
    }

    fn insert(&self, obj: &Arc<DataObject>, chunk: u32, sums: Arc<Vec<u32>>) {
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        map.retain(|_, e| e.holder.upgrade().is_some());
        if map.len() >= Self::CAP {
            map.clear();
        }
        map.insert(
            Arc::as_ptr(obj) as usize,
            ChunkSumEntry {
                holder: Arc::downgrade(obj),
                chunk,
                sums,
            },
        );
    }
}

impl Inner {
    /// Unblock a thread parked in `accept` by completing one connection.
    fn poke(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// Decrements the active-connection count when a worker exits, however it
/// exits.
struct ActiveGuard(Arc<Inner>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running staging service. Dropping the handle without calling
/// [`StagingService::shutdown`] leaves the background threads serving until
/// the process exits; tests and the standalone binary shut down explicitly.
pub struct StagingService {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl StagingService {
    /// Bind a listener and start serving a freshly constructed space sized
    /// by the config. With `disk_dir` set, the space gets a disk spill tier
    /// logging under `disk_dir/svc-<port>` — the listener is bound first so
    /// the port disambiguates shards sharing one template directory — and
    /// the tier reads extents through the same buffer pool the wire path
    /// recycles scratch from.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(BufferPool::new());
        let space = match &cfg.disk_dir {
            None => Arc::new(DataSpace::new(
                cfg.servers.max(1),
                cfg.memory_per_server,
                cfg.sharding,
            )),
            Some(dir) => {
                let tier =
                    xlayer_staging::TierConfig::new(dir.join(format!("svc-{}", addr.port())))
                        .with_budget(cfg.disk_budget);
                let space = DataSpace::new_tiered(
                    cfg.servers.max(1),
                    cfg.memory_per_server,
                    cfg.sharding,
                    &tier,
                    Arc::clone(&pool),
                )
                .map_err(|e| std::io::Error::other(format!("disk tier: {e}")))?;
                Arc::new(space)
            }
        };
        Self::start_on_listener(cfg, listener, addr, space, pool)
    }

    /// Bind a listener and start serving an existing space (lets tests and
    /// embedders share the space with in-process consumers).
    pub fn start_with_space(cfg: ServiceConfig, space: Arc<DataSpace>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(BufferPool::new());
        Self::start_on_listener(cfg, listener, addr, space, pool)
    }

    fn start_on_listener(
        cfg: ServiceConfig,
        listener: TcpListener,
        addr: SocketAddr,
        space: Arc<DataSpace>,
        pool: Arc<BufferPool>,
    ) -> std::io::Result<Self> {
        let inner = Arc::new(Inner {
            space,
            stats: Arc::new(ServiceStats::default()),
            pool,
            chunk_sums: ChunkSumCache::new(),
            stop: AtomicBool::new(false),
            active: AtomicU32::new(0),
            addr,
            cfg,
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("xlayer-net-accept".to_string())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(StagingService {
            inner,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The backing staging space.
    pub fn space(&self) -> &Arc<DataSpace> {
        &self.inner.space
    }

    /// The service's operation counters.
    pub fn stats(&self) -> &Arc<ServiceStats> {
        &self.inner.stats
    }

    /// The buffer pool connection workers recycle wire scratch through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.inner.pool
    }

    /// Whether a shutdown has been requested (locally or via the wire).
    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::Acquire)
    }

    /// Request a graceful stop and wait for the accept loop and every
    /// worker to finish.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.poke();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Block until the service stops (e.g. a client sent `Shutdown`).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.stop.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if inner.stop.load(Ordering::Acquire) {
            // This accept was (or raced with) the shutdown poke.
            refuse(&inner, stream, ErrorFrame::ShuttingDown);
            break;
        }
        let active = inner.active.load(Ordering::Acquire);
        if active >= inner.cfg.max_connections {
            inner.stats.conns_refused.fetch_add(1, Ordering::Relaxed);
            refuse(
                &inner,
                stream,
                ErrorFrame::Busy {
                    active,
                    max: inner.cfg.max_connections,
                },
            );
            continue;
        }
        inner.active.fetch_add(1, Ordering::AcqRel);
        inner.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let conn_inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name("xlayer-net-conn".to_string())
            .spawn(move || {
                let guard = ActiveGuard(Arc::clone(&conn_inner));
                serve_connection(&conn_inner, stream);
                drop(guard);
            });
        match spawned {
            Ok(h) => workers.push(h),
            Err(_) => {
                // Spawn failed: undo the reservation and drop the peer.
                inner.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Reap finished workers so the handle list stays bounded on
        // long-running services.
        workers.retain(|h| !h.is_finished());
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Best-effort typed refusal on a connection we will not serve.
fn refuse(inner: &Inner, mut stream: TcpStream, err: ErrorFrame) {
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let is_busy = matches!(err, ErrorFrame::Busy { .. });
    if stream.write_all(&Response::Error(err).encode(0)).is_ok() && is_busy {
        inner.stats.busy_frames.fetch_add(1, Ordering::Relaxed);
    }
}

/// Outcome of one attempt to pull a frame off a worker's socket.
enum Recv {
    /// A checksum-verified frame, its payload in a pooled buffer.
    Frame {
        /// Frame opcode.
        opcode: Opcode,
        /// Frame request id.
        request_id: u64,
        /// Verified payload bytes (returned to the pool on drop).
        payload: PooledBuf,
    },
    /// Clean EOF or fatal I/O: drop the connection quietly.
    Closed,
    /// Stop flag observed while idle.
    Stopping,
    /// The header was framed correctly but the body failed verification;
    /// stream sync is intact, answer `BadRequest` and keep serving.
    Malformed(String),
}

/// Read exactly `buf.len()` bytes, treating read timeouts as idle ticks at
/// which to re-check the stop flag. Returns `None` on clean EOF before the
/// first byte, on fatal I/O, or when stopping mid-read.
fn read_full(inner: &Inner, stream: &mut TcpStream, buf: &mut [u8], idle_ok: bool) -> Option<bool> {
    let mut off = 0usize;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => return None,
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if inner.stop.load(Ordering::Acquire) {
                    return if off == 0 && idle_ok {
                        Some(false)
                    } else {
                        None
                    };
                }
            }
            Err(_) => return None,
        }
    }
    Some(true)
}

fn recv_frame(inner: &Inner, stream: &mut TcpStream) -> Recv {
    let mut header_buf = [0u8; HEADER_LEN];
    match read_full(inner, stream, &mut header_buf, true) {
        None => return Recv::Closed,
        Some(false) => return Recv::Stopping,
        Some(true) => {}
    }
    let header = match decode_header(&header_buf) {
        Ok(h) => h,
        Err(e) => {
            // Framing is lost; answer once and drop the connection.
            inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(
                &Response::Error(ErrorFrame::BadRequest {
                    detail: e.to_string(),
                })
                .encode(0),
            );
            return Recv::Closed;
        }
    };
    let mut payload = inner.pool.acquire(header.payload_len as usize);
    match read_full(inner, stream, &mut payload, false) {
        Some(true) => {}
        _ => return Recv::Closed,
    }
    inner
        .stats
        .bytes_in
        .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
    if let Err(e) = verify_payload(&header, &payload) {
        return Recv::Malformed(e.to_string());
    }
    Recv::Frame {
        opcode: header.opcode,
        request_id: header.request_id,
        payload,
    }
}

/// Encode `response` into pooled scratch and send it header+body vectored.
fn send_response(
    inner: &Inner,
    stream: &mut TcpStream,
    request_id: u64,
    response: &Response,
) -> std::io::Result<()> {
    let mut scratch = inner.pool.acquire(0);
    response.encode_body(&mut scratch);
    let header = frame_header(
        response.opcode(),
        request_id,
        scratch.len() as u32,
        checksum(&scratch),
    );
    write_vectored_all(stream, &[&header, &scratch])?;
    inner
        .stats
        .bytes_out
        .fetch_add((HEADER_LEN + scratch.len()) as u64, Ordering::Relaxed);
    Ok(())
}

fn serve_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let (request_id, response, shutdown) = match recv_frame(inner, &mut stream) {
            Recv::Closed => return,
            Recv::Stopping => return,
            Recv::Malformed(detail) => {
                inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                (0, Response::Error(ErrorFrame::BadRequest { detail }), false)
            }
            Recv::Frame {
                opcode,
                request_id,
                payload,
            } => {
                let decoded = Request::decode_body(opcode, &payload);
                drop(payload); // back to the pool before serving
                match decoded {
                    Err(e) => {
                        inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                        (
                            request_id,
                            Response::Error(ErrorFrame::BadRequest {
                                detail: e.to_string(),
                            }),
                            false,
                        )
                    }
                    Ok(Request::PutChunked { desc, chunk_size }) => {
                        if serve_put_chunked(inner, &mut stream, request_id, desc, chunk_size) {
                            continue;
                        }
                        return;
                    }
                    Ok(Request::GetChunked {
                        name,
                        version,
                        query,
                        chunk_size,
                    }) => {
                        if serve_get_chunked(
                            inner,
                            &mut stream,
                            request_id,
                            &name,
                            version,
                            query,
                            chunk_size,
                        ) {
                            continue;
                        }
                        return;
                    }
                    Ok(req) => {
                        let shutdown = matches!(req, Request::Shutdown);
                        (request_id, handle_request(inner, req), shutdown)
                    }
                }
            }
        };
        if send_response(inner, &mut stream, request_id, &response).is_err() {
            return;
        }
        if shutdown {
            inner.stop.store(true, Ordering::Release);
            inner.poke();
            return;
        }
    }
}

/// One received chunk-stream frame, already length-read off the socket.
enum StreamFrame {
    /// A `ChunkData` frame: decoded prefix plus where its data landed.
    Data {
        /// Object index from the 12-byte prefix.
        index: u32,
        /// Byte offset from the 12-byte prefix.
        offset: u64,
        /// Length of the data bytes that followed the prefix.
        data_len: usize,
        /// `checksum(data)` over the data bytes as received — the cacheable
        /// half of the frame checksum.
        data_sum: u32,
        /// Whether the frame checksum (`checksum(prefix) ^ checksum(data)`)
        /// verified.
        checksum_ok: bool,
    },
    /// The stream's `ChunkEnd` terminal frame.
    End(ChunkEnd),
}

/// Read one frame of an inbound chunk stream. `ChunkData` data bytes land
/// in `dst` when the prefix passes `place` (which maps a decoded
/// `(index, offset, data_len)` to a destination range), otherwise in a
/// pooled discard buffer so the stream stays framed.
///
/// Returns `Ok(None)` when the connection died or the header desynced
/// (caller drops the connection); `Err(detail)` for in-stream protocol
/// violations where framing survives (caller keeps draining).
fn recv_stream_frame(
    inner: &Inner,
    stream: &mut TcpStream,
    request_id: u64,
    dst: &mut [u8],
    place: impl Fn(u32, u64, usize) -> Option<usize>,
) -> Option<Result<StreamFrame, String>> {
    let mut header_buf = [0u8; HEADER_LEN];
    match read_full(inner, stream, &mut header_buf, false) {
        Some(true) => {}
        _ => return None,
    }
    let header = match decode_header(&header_buf) {
        Ok(h) => h,
        Err(_) => {
            inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    };
    let frame_bytes = (HEADER_LEN + header.payload_len as usize) as u64;
    // Any in-stream violation still has to consume the frame's payload to
    // keep the connection framed; collect the verdict, then read.
    let verdict: Result<(), String> = if header.request_id != request_id {
        Err(format!(
            "frame for request {} interleaved into stream {request_id}",
            header.request_id
        ))
    } else {
        Ok(())
    };
    match header.opcode {
        Opcode::ChunkData if header.payload_len as usize >= CHUNK_PREFIX_LEN => {
            let mut prefix = [0u8; CHUNK_PREFIX_LEN];
            match read_full(inner, stream, &mut prefix, false) {
                Some(true) => {}
                _ => return None,
            }
            let (index, offset) = decode_chunk_prefix(&prefix);
            let data_len = header.payload_len as usize - CHUNK_PREFIX_LEN;
            let mut data_sum = checksum(&[]);
            let placed = if verdict.is_ok() {
                place(index, offset, data_len)
            } else {
                None
            };
            let read_ok = match placed {
                Some(at) => read_full(inner, stream, &mut dst[at..at + data_len], false)
                    .map(|_| {
                        data_sum = checksum(&dst[at..at + data_len]);
                    })
                    .is_some(),
                None => {
                    let mut discard = inner.pool.acquire(data_len);
                    read_full(inner, stream, &mut discard, false)
                        .map(|_| {
                            data_sum = checksum(&discard);
                        })
                        .is_some()
                }
            };
            if !read_ok {
                return None;
            }
            inner
                .stats
                .bytes_in
                .fetch_add(frame_bytes, Ordering::Relaxed);
            if let Err(detail) = verdict {
                return Some(Err(detail));
            }
            if placed.is_none() {
                return Some(Err(format!(
                    "chunk (object {index}, offset {offset}, {data_len} B) out of sequence"
                )));
            }
            Some(Ok(StreamFrame::Data {
                index,
                offset,
                data_len,
                data_sum,
                checksum_ok: checksum(&prefix) ^ data_sum == header.checksum,
            }))
        }
        _ => {
            // ChunkEnd, an undersized ChunkData, or a foreign opcode: small
            // payload, read it whole.
            let mut payload = inner.pool.acquire(header.payload_len as usize);
            match read_full(inner, stream, &mut payload, false) {
                Some(true) => {}
                _ => return None,
            }
            inner
                .stats
                .bytes_in
                .fetch_add(frame_bytes, Ordering::Relaxed);
            if let Err(detail) = verdict {
                return Some(Err(detail));
            }
            if verify_payload(&header, &payload).is_err() {
                return Some(Err("chunk stream frame checksum mismatch".to_string()));
            }
            match header.opcode {
                Opcode::ChunkEnd => match decode_chunk_end(&payload) {
                    Ok(end) => Some(Ok(StreamFrame::End(end))),
                    Err(e) => Some(Err(e.to_string())),
                },
                other => Some(Err(format!(
                    "opcode {:#04x} inside a chunk stream",
                    other as u8
                ))),
            }
        }
    }
}

/// Serve one inbound `PutChunked` stream: assemble chunks directly into
/// the destination payload buffer, then commit it to the space. Returns
/// `false` when the connection must close.
fn serve_put_chunked(
    inner: &Inner,
    stream: &mut TcpStream,
    request_id: u64,
    desc: ObjectDesc,
    chunk_size: u32,
) -> bool {
    inner.stats.puts.fetch_add(1, Ordering::Relaxed);
    let chunk = clamp_chunk_size(chunk_size) as u64;
    // Head-of-stream rejections: the client is already committed to
    // sending the whole stream (blocking sockets both sides), so drain to
    // its ChunkEnd before answering, and keep the connection.
    let early = if !desc.is_consistent() || desc.bytes > MAX_CHUNKED_OBJECT {
        Some(ErrorFrame::BadRequest {
            detail: "inconsistent chunked object descriptor".to_string(),
        })
    } else if desc.bytes
        > inner
            .space
            .capacity()
            .saturating_add(inner.space.disk_headroom())
    {
        // With a disk tier attached, an object larger than RAM can still
        // land on the spill log, so the bound is memory capacity plus the
        // tier's remaining disk budget (headroom is 0 without a tier). An
        // object that cannot fit in either tier is rejected here, before
        // its declared size is allocated for chunk assembly — a hostile
        // descriptor must not size the allocation; MAX_CHUNKED_OBJECT
        // stays the absolute ceiling when the disk budget is unbounded.
        inner.stats.rejected_oom.fetch_add(1, Ordering::Relaxed);
        Some(ErrorFrame::OutOfMemory {
            cap: inner.space.capacity(),
            used: inner.space.used(),
            requested: desc.bytes,
        })
    } else {
        None
    };
    let total = desc.bytes as usize;
    // The destination allocation IS the stored object's payload — chunks
    // assemble into it in place; there is no whole-payload staging copy.
    let mut buf = if early.is_none() {
        vec![0u8; total]
    } else {
        Vec::new()
    };
    let mut failed: Option<String> = early.as_ref().map(|e| e.to_string());
    let mut next_offset = 0u64;
    // Per-chunk data checksums, learned for free from the stream's own
    // verification — cached with the committed object so later chunked
    // gets never re-hash the payload.
    let mut sums: Vec<u32> = Vec::with_capacity((total / chunk.max(1) as usize) + 1);
    let end = loop {
        let expected = next_offset;
        let dead = failed.is_some();
        let frame = recv_stream_frame(inner, stream, request_id, &mut buf, |index, offset, len| {
            // Single-object put stream: index 0, strictly sequential
            // offsets, full chunks except the last. Once the stream has
            // failed, everything drains to discard.
            let len = len as u64;
            let end_off = offset.checked_add(len)?;
            let sequential = !dead && index == 0 && offset == expected && end_off <= desc.bytes;
            let full_or_last = len == chunk || end_off == desc.bytes;
            if sequential && full_or_last {
                Some(offset as usize)
            } else {
                None
            }
        });
        match frame {
            None => return false,
            Some(Ok(StreamFrame::Data {
                index,
                offset,
                data_len,
                data_sum,
                checksum_ok,
            })) => {
                if !checksum_ok {
                    failed.get_or_insert_with(|| {
                        format!("chunk (object {index}, offset {offset}) failed its checksum")
                    });
                } else if failed.is_none() {
                    next_offset = offset + data_len as u64;
                    sums.push(data_sum);
                }
            }
            Some(Ok(StreamFrame::End(end))) => break end,
            Some(Err(detail)) => {
                failed.get_or_insert(detail);
            }
        }
    };
    if failed.is_none() && (next_offset != desc.bytes || end.objects != 1) {
        failed = Some(format!(
            "chunk stream ended after {next_offset} of {} bytes",
            desc.bytes
        ));
    }
    if failed.is_none() && end.total_bytes != desc.bytes {
        failed = Some(format!(
            "chunk stream total {} does not match descriptor {}",
            end.total_bytes, desc.bytes
        ));
    }
    let response = if let Some(err) = early {
        Response::Error(err)
    } else if let Some(detail) = failed {
        inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
        Response::Error(ErrorFrame::BadRequest { detail })
    } else {
        match DataObject::from_wire(desc, Bytes::from(buf)) {
            None => Response::Error(ErrorFrame::BadRequest {
                detail: "assembled object is inconsistent".to_string(),
            }),
            Some(obj) => {
                let obj = Arc::new(obj);
                match inner.space.put(Arc::clone(&obj)) {
                    Ok(shard) => {
                        inner.chunk_sums.insert(&obj, chunk as u32, Arc::new(sums));
                        Response::PutChunkedOk {
                            shard: shard as u32,
                        }
                    }
                    Err(StagingError::OutOfMemory {
                        cap,
                        used,
                        requested,
                    }) => {
                        inner.stats.rejected_oom.fetch_add(1, Ordering::Relaxed);
                        Response::Error(ErrorFrame::OutOfMemory {
                            cap,
                            used,
                            requested,
                        })
                    }
                    Err(StagingError::NeedsReduction { factor }) => {
                        inner.stats.rejected_oom.fetch_add(1, Ordering::Relaxed);
                        Response::Error(ErrorFrame::NeedsReduction { factor })
                    }
                }
            }
        }
    };
    send_response(inner, stream, request_id, &response).is_ok()
}

/// Serve one `GetChunked`: answer with the matching descriptors, then
/// stream every object's payload as chunk frames sliced straight out of
/// the `Arc`-held objects — no payload copy. Returns `false` when the
/// connection must close.
fn serve_get_chunked(
    inner: &Inner,
    stream: &mut TcpStream,
    request_id: u64,
    name: &str,
    version: u64,
    query: Option<xlayer_amr::boxes::IBox>,
    chunk_size: u32,
) -> bool {
    inner.stats.gets.fetch_add(1, Ordering::Relaxed);
    let chunk = clamp_chunk_size(chunk_size.min(inner.cfg.chunk_size)) as usize;
    let objs = inner.space.get(name, version, query.as_ref());
    let descs: Vec<ObjectDesc> = objs.iter().map(|o| o.desc.clone()).collect();
    let head = Response::GetChunkedOk {
        descs,
        chunk_size: chunk as u32,
    };
    if send_response(inner, stream, request_id, &head).is_err() {
        return false;
    }
    let mut total = 0u64;
    for (i, obj) in objs.iter().enumerate() {
        let payload: &[u8] = obj.payload.as_ref();
        // One hash pass per (object, chunk size) for the object's lifetime:
        // learned at put time or computed on the first get, then every
        // frame's checksum comes from the cache and the payload bytes are
        // only touched by the socket write.
        let sums = match inner.chunk_sums.lookup(obj, chunk as u32) {
            Some(sums) => {
                inner.stats.chunksum_hits.fetch_add(1, Ordering::Relaxed);
                sums
            }
            None => {
                inner.stats.chunksum_misses.fetch_add(1, Ordering::Relaxed);
                let fresh: Vec<u32> = payload.chunks(chunk.max(1)).map(checksum).collect();
                let fresh = Arc::new(fresh);
                inner
                    .chunk_sums
                    .insert(obj, chunk as u32, Arc::clone(&fresh));
                fresh
            }
        };
        let mut off = 0usize;
        let mut k = 0usize;
        while off < payload.len() {
            let n = chunk.min(payload.len() - off);
            let data = &payload[off..off + n];
            let (header, prefix) = match sums.get(k) {
                Some(&s) => chunk_data_parts_cached(request_id, i as u32, off as u64, s, n),
                None => chunk_data_parts(request_id, i as u32, off as u64, data),
            };
            if write_vectored_all(stream, &[&header, &prefix, data]).is_err() {
                return false;
            }
            inner.stats.bytes_out.fetch_add(
                (HEADER_LEN + CHUNK_PREFIX_LEN + n) as u64,
                Ordering::Relaxed,
            );
            off += n;
            k += 1;
            total += n as u64;
        }
    }
    let end = encode_chunk_end(
        request_id,
        ChunkEnd {
            objects: objs.len() as u32,
            total_bytes: total,
        },
    );
    if stream.write_all(&end).is_err() {
        return false;
    }
    inner
        .stats
        .bytes_out
        .fetch_add(end.len() as u64, Ordering::Relaxed);
    true
}

fn handle_request(inner: &Inner, req: Request) -> Response {
    let stats = &inner.stats;
    match req {
        Request::Put(obj) => {
            stats.puts.fetch_add(1, Ordering::Relaxed);
            match inner.space.put(obj) {
                Ok(shard) => Response::PutOk {
                    shard: shard as u32,
                },
                Err(StagingError::OutOfMemory {
                    cap,
                    used,
                    requested,
                }) => {
                    stats.rejected_oom.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ErrorFrame::OutOfMemory {
                        cap,
                        used,
                        requested,
                    })
                }
                Err(StagingError::NeedsReduction { factor }) => {
                    stats.rejected_oom.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ErrorFrame::NeedsReduction { factor })
                }
            }
        }
        Request::Get {
            name,
            version,
            query,
        } => {
            stats.gets.fetch_add(1, Ordering::Relaxed);
            let objs = inner
                .space
                .get(&name, version, query.as_ref())
                .iter()
                .map(|o| o.as_ref().clone())
                .collect();
            Response::GetOk(objs)
        }
        Request::Query { name, version } => {
            stats.queries.fetch_add(1, Ordering::Relaxed);
            Response::QueryOk(inner.space.describe(&name, version))
        }
        Request::Delete {
            name,
            before_version,
        } => {
            stats.deletes.fetch_add(1, Ordering::Relaxed);
            Response::DeleteOk {
                bytes_freed: inner.space.evict_before(&name, before_version),
            }
        }
        Request::Stats => {
            stats.stats_calls.fetch_add(1, Ordering::Relaxed);
            Response::StatsOk(stats.snapshot(&inner.space, &inner.pool))
        }
        Request::Shutdown => Response::ShutdownOk,
        // Chunked streams never reach here — serve_connection owns the
        // socket for the stream's lifetime and intercepts them.
        Request::PutChunked { .. } | Request::GetChunked { .. } => {
            Response::Error(ErrorFrame::BadRequest {
                detail: "chunked request outside a connection stream".to_string(),
            })
        }
    }
}
