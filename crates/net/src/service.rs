//! `StagingService`: the staging space behind a TCP listener.
//!
//! One accept thread owns the listener; each accepted connection gets a
//! worker thread (DART's one-server-thread-per-client model) under a
//! bounded pool — when the pool is full, the peer receives a typed `Busy`
//! error frame instead of a silently dropped connection. Reads carry a
//! short timeout used as an idle tick so workers observe the stop flag;
//! graceful shutdown is: set the flag, poke the listener with a loopback
//! connect to unblock `accept`, join everything.
//!
//! Memory-cap rejections from the space ([`StagingError::OutOfMemory`])
//! are answered with `OutOfMemory` error frames carrying cap/used/requested
//! — the paper's Eq. 10 pressure signal crosses the wire intact instead of
//! killing the connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use xlayer_staging::{DataSpace, Sharding, StagingError};

use crate::wire::{
    decode_header, verify_payload, ErrorFrame, Frame, Request, Response, ServiceSnapshot,
    HEADER_LEN,
};

/// Configuration for a [`StagingService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of staging servers (shards) in the backing space.
    pub servers: usize,
    /// Memory cap per staging server in bytes (paper Eq. 10).
    pub memory_per_server: u64,
    /// How objects are routed to shards.
    pub sharding: Sharding,
    /// Maximum concurrently served connections; excess peers get a `Busy`
    /// error frame and are closed.
    pub max_connections: u32,
    /// Socket read timeout. Doubles as the idle tick at which worker
    /// threads re-check the stop flag, so it bounds shutdown latency.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            servers: 2,
            memory_per_server: 64 << 20,
            sharding: Sharding::RoundRobin,
            max_connections: 32,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-operation counters, updated atomically by worker threads and
/// surfaced to clients through the `Stats` opcode.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// `Put` requests served (accepted and rejected).
    pub puts: AtomicU64,
    /// `Get` requests served.
    pub gets: AtomicU64,
    /// `Query` requests served.
    pub queries: AtomicU64,
    /// `Delete` requests served.
    pub deletes: AtomicU64,
    /// `Stats` requests served.
    pub stats_calls: AtomicU64,
    /// Frames that failed to decode.
    pub wire_errors: AtomicU64,
    /// Puts rejected by the space's memory cap.
    pub rejected_oom: AtomicU64,
    /// Connections accepted into the pool.
    pub conns_accepted: AtomicU64,
    /// Connections refused with `Busy` because the pool was full.
    pub conns_refused: AtomicU64,
    /// Frame bytes received (headers + payloads).
    pub bytes_in: AtomicU64,
    /// Frame bytes sent (headers + payloads).
    pub bytes_out: AtomicU64,
}

impl ServiceStats {
    /// Snapshot the counters together with the space's occupancy.
    pub fn snapshot(&self, space: &DataSpace) -> ServiceSnapshot {
        ServiceSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            stats_calls: self.stats_calls.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            rejected_oom: self.rejected_oom.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            used: space.used(),
            capacity: space.capacity(),
        }
    }
}

struct Inner {
    space: Arc<DataSpace>,
    stats: Arc<ServiceStats>,
    stop: AtomicBool,
    active: AtomicU32,
    addr: SocketAddr,
    cfg: ServiceConfig,
}

impl Inner {
    /// Unblock a thread parked in `accept` by completing one connection.
    fn poke(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// Decrements the active-connection count when a worker exits, however it
/// exits.
struct ActiveGuard(Arc<Inner>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running staging service. Dropping the handle without calling
/// [`StagingService::shutdown`] leaves the background threads serving until
/// the process exits; tests and the standalone binary shut down explicitly.
pub struct StagingService {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl StagingService {
    /// Bind a listener and start serving a freshly constructed space sized
    /// by the config.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Self> {
        let space = Arc::new(DataSpace::new(
            cfg.servers.max(1),
            cfg.memory_per_server,
            cfg.sharding,
        ));
        Self::start_with_space(cfg, space)
    }

    /// Bind a listener and start serving an existing space (lets tests and
    /// embedders share the space with in-process consumers).
    pub fn start_with_space(cfg: ServiceConfig, space: Arc<DataSpace>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            space,
            stats: Arc::new(ServiceStats::default()),
            stop: AtomicBool::new(false),
            active: AtomicU32::new(0),
            addr,
            cfg,
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("xlayer-net-accept".to_string())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(StagingService {
            inner,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The backing staging space.
    pub fn space(&self) -> &Arc<DataSpace> {
        &self.inner.space
    }

    /// The service's operation counters.
    pub fn stats(&self) -> &Arc<ServiceStats> {
        &self.inner.stats
    }

    /// Whether a shutdown has been requested (locally or via the wire).
    pub fn is_stopping(&self) -> bool {
        self.inner.stop.load(Ordering::Acquire)
    }

    /// Request a graceful stop and wait for the accept loop and every
    /// worker to finish.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.poke();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Block until the service stops (e.g. a client sent `Shutdown`).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.stop.load(Ordering::Acquire) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if inner.stop.load(Ordering::Acquire) {
            // This accept was (or raced with) the shutdown poke.
            refuse(&inner, stream, ErrorFrame::ShuttingDown);
            break;
        }
        let active = inner.active.load(Ordering::Acquire);
        if active >= inner.cfg.max_connections {
            inner.stats.conns_refused.fetch_add(1, Ordering::Relaxed);
            refuse(
                &inner,
                stream,
                ErrorFrame::Busy {
                    active,
                    max: inner.cfg.max_connections,
                },
            );
            continue;
        }
        inner.active.fetch_add(1, Ordering::AcqRel);
        inner.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let conn_inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name("xlayer-net-conn".to_string())
            .spawn(move || {
                let guard = ActiveGuard(Arc::clone(&conn_inner));
                serve_connection(&conn_inner, stream);
                drop(guard);
            });
        match spawned {
            Ok(h) => workers.push(h),
            Err(_) => {
                // Spawn failed: undo the reservation and drop the peer.
                inner.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Reap finished workers so the handle list stays bounded on
        // long-running services.
        workers.retain(|h| !h.is_finished());
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Best-effort typed refusal on a connection we will not serve.
fn refuse(inner: &Inner, mut stream: TcpStream, err: ErrorFrame) {
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.write_all(&Response::Error(err).encode(0));
}

/// Outcome of one attempt to pull a frame off a worker's socket.
enum Recv {
    /// A checksum-verified frame.
    Frame(Frame),
    /// Clean EOF or fatal I/O: drop the connection quietly.
    Closed,
    /// Stop flag observed while idle.
    Stopping,
    /// The header was framed correctly but the body failed verification;
    /// stream sync is intact, answer `BadRequest` and keep serving.
    Malformed(String),
}

/// Read exactly `buf.len()` bytes, treating read timeouts as idle ticks at
/// which to re-check the stop flag. Returns `None` on clean EOF before the
/// first byte, on fatal I/O, or when stopping mid-read.
fn read_full(inner: &Inner, stream: &mut TcpStream, buf: &mut [u8], idle_ok: bool) -> Option<bool> {
    let mut off = 0usize;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => return None,
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if inner.stop.load(Ordering::Acquire) {
                    return if off == 0 && idle_ok {
                        Some(false)
                    } else {
                        None
                    };
                }
            }
            Err(_) => return None,
        }
    }
    Some(true)
}

fn recv_frame(inner: &Inner, stream: &mut TcpStream) -> Recv {
    let mut header_buf = [0u8; HEADER_LEN];
    match read_full(inner, stream, &mut header_buf, true) {
        None => return Recv::Closed,
        Some(false) => return Recv::Stopping,
        Some(true) => {}
    }
    let header = match decode_header(&header_buf) {
        Ok(h) => h,
        Err(e) => {
            // Framing is lost; answer once and drop the connection.
            inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(
                &Response::Error(ErrorFrame::BadRequest {
                    detail: e.to_string(),
                })
                .encode(0),
            );
            return Recv::Closed;
        }
    };
    let mut payload = vec![0u8; header.payload_len as usize];
    match read_full(inner, stream, &mut payload, false) {
        Some(true) => {}
        _ => return Recv::Closed,
    }
    inner
        .stats
        .bytes_in
        .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
    if let Err(e) = verify_payload(&header, &payload) {
        return Recv::Malformed(e.to_string());
    }
    Recv::Frame(Frame {
        opcode: header.opcode,
        request_id: header.request_id,
        payload,
    })
}

fn serve_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let (request_id, response, shutdown) = match recv_frame(inner, &mut stream) {
            Recv::Closed => return,
            Recv::Stopping => return,
            Recv::Malformed(detail) => {
                inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                (0, Response::Error(ErrorFrame::BadRequest { detail }), false)
            }
            Recv::Frame(frame) => match Request::decode(&frame) {
                Err(e) => {
                    inner.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    (
                        frame.request_id,
                        Response::Error(ErrorFrame::BadRequest {
                            detail: e.to_string(),
                        }),
                        false,
                    )
                }
                Ok(req) => {
                    let shutdown = matches!(req, Request::Shutdown);
                    (frame.request_id, handle_request(inner, req), shutdown)
                }
            },
        };
        let bytes = response.encode(request_id);
        if stream.write_all(&bytes).is_err() {
            return;
        }
        inner
            .stats
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        if shutdown {
            inner.stop.store(true, Ordering::Release);
            inner.poke();
            return;
        }
    }
}

fn handle_request(inner: &Inner, req: Request) -> Response {
    let stats = &inner.stats;
    match req {
        Request::Put(obj) => {
            stats.puts.fetch_add(1, Ordering::Relaxed);
            match inner.space.put(obj) {
                Ok(shard) => Response::PutOk {
                    shard: shard as u32,
                },
                Err(StagingError::OutOfMemory {
                    cap,
                    used,
                    requested,
                }) => {
                    stats.rejected_oom.fetch_add(1, Ordering::Relaxed);
                    Response::Error(ErrorFrame::OutOfMemory {
                        cap,
                        used,
                        requested,
                    })
                }
            }
        }
        Request::Get {
            name,
            version,
            query,
        } => {
            stats.gets.fetch_add(1, Ordering::Relaxed);
            let objs = inner
                .space
                .get(&name, version, query.as_ref())
                .iter()
                .map(|o| o.as_ref().clone())
                .collect();
            Response::GetOk(objs)
        }
        Request::Query { name, version } => {
            stats.queries.fetch_add(1, Ordering::Relaxed);
            Response::QueryOk(inner.space.describe(&name, version))
        }
        Request::Delete {
            name,
            before_version,
        } => {
            stats.deletes.fetch_add(1, Ordering::Relaxed);
            Response::DeleteOk {
                bytes_freed: inner.space.evict_before(&name, before_version),
            }
        }
        Request::Stats => {
            stats.stats_calls.fetch_add(1, Ordering::Relaxed);
            Response::StatsOk(stats.snapshot(&inner.space))
        }
        Request::Shutdown => Response::ShutdownOk,
    }
}
