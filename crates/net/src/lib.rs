//! Networked staging: the paper's DataSpaces/DART transport made literal.
//!
//! The in-process reproduction models staging as a function call —
//! [`xlayer_staging::AsyncStager`] drains a channel into a
//! [`xlayer_staging::DataSpace`] in the same address space. This crate puts
//! the space behind a socket, the way DART puts it behind the interconnect:
//!
//! - [`wire`] — a versioned, length-prefixed binary protocol (magic,
//!   version, opcode, request id, payload length, FNV-1a checksum) with
//!   total, panic-free codecs for every request/response frame.
//! - [`service`] — [`StagingService`], a multi-threaded TCP server wrapping
//!   a `DataSpace`: one worker thread per connection under a bounded accept
//!   pool, read/write timeouts, graceful shutdown, and per-op counters
//!   surfaced through the `Stats` opcode. Memory-cap rejections travel as
//!   typed `OutOfMemory` error frames — the policy signal stays visible.
//! - [`client`] — [`RemoteClient`], a pooled connection client with bounded
//!   exponential-backoff retry on transient I/O errors (never on
//!   `OutOfMemory`), and [`RemoteStager`], which implements the same
//!   put/drain surface as `AsyncStager` so `workflow::native` can run
//!   in-transit analysis against a remote service unchanged.
//! - [`cluster`] — the sharded staging cluster: [`StagingCluster`] spawns
//!   N services (one listener + `DataSpace` + memory cap each), and
//!   [`ShardedClient`] routes puts by object region through a
//!   `ShardMap` and serves region queries by concurrent scatter/gather
//!   with a deterministic merge order, so aggregate staging capacity
//!   scales in servers (paper Eq. 9–10) with per-shard accounting.
//! - [`hist`] — [`hist::LatencyHistogram`], fixed-bucket lock-free
//!   latency percentiles (p50/p95/p99/max) recorded on every client op,
//!   and [`hist::Hist`], its owned mergeable form that load-generation
//!   agents ship to a controller for cross-agent aggregation.
//! - [`pool`] — [`BufferPool`], a bounded size-classed buffer recycler
//!   shared by service workers and clients so steady-state put/get traffic
//!   allocates nothing per op (hit/miss counters travel in `Stats`). The
//!   implementation lives in `xlayer_staging::pool` — the disk tier reads
//!   extents through the same pool — and is re-exported here.
//! - [`iovec`] — [`iovec::write_vectored_all`], the short-write-safe
//!   vectored send loop both hot paths use to put header and payload on
//!   the wire in one syscall without concatenating them.
//!
//! Large objects stream as chunked sub-frames (`PutChunked`/`GetChunked`,
//! default 1 MiB chunks): the service assembles puts directly into the
//! destination buffer and serves gets straight out of the `Arc`-held
//! payload, so the chunked path has no whole-object copies and no 256 MiB
//! frame ceiling.
//!
//! Everything is `std::net` — the build is offline and the workspace has no
//! async runtime; blocking sockets plus threads match the paper's
//! one-server-process-per-staging-node model anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod hist;
pub mod iovec;
pub use xlayer_staging::pool;
pub mod service;
pub mod wire;

pub use client::{ClientConfig, ClientStats, RemoteClient, RemoteError, RemoteStager};
pub use cluster::{ShardedClient, ShardedError, ShardedStager, StagingCluster};
pub use hist::{Hist, LatencyHistogram, LatencySnapshot};
pub use pool::{BufferPool, PooledBuf};
pub use service::{ServiceConfig, ServiceStats, StagingService};
pub use wire::{ErrorFrame, Opcode, Request, Response, ServiceSnapshot, WireError};
