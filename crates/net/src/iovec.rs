//! Vectored socket writes for the wire hot path.
//!
//! Every frame is a header plus zero or more body segments. Writing them
//! with separate `write_all` calls either costs one syscall per segment or
//! forces a copy into a contiguous scratch buffer; `write_vectored` submits
//! all segments in one syscall with no copy. Kernels are free to accept a
//! short count, so [`write_vectored_all`] wraps the call in a continuation
//! loop that re-slices the iovec array past whatever was consumed —
//! including restarting mid-segment — until every byte is on the wire.

use std::io::{IoSlice, Write};

/// Upper bound on the segment count a frame send needs (header + chunk
/// prefix + data is the widest shape today; headroom for future layouts).
pub const MAX_SEGMENTS: usize = 8;

/// Write all bytes of every segment, in order, using vectored I/O.
///
/// Equivalent to `write_all` over the concatenation of `segments`, but
/// without materialising the concatenation (and without allocating: the
/// iovec array lives on the stack, which is why `segments` is capped at
/// [`MAX_SEGMENTS`]). Handles short writes both between and inside
/// segments via a cursor `(seg_idx, offset)` that the iovec array is
/// rebuilt from after each call, retries `Interrupted`, and treats an
/// `Ok(0)` from the writer as `WriteZero`.
pub fn write_vectored_all(w: &mut impl Write, segments: &[&[u8]]) -> std::io::Result<()> {
    if segments.len() > MAX_SEGMENTS {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "too many segments for one vectored frame",
        ));
    }
    let mut seg_idx = 0usize; // first segment not fully written
    let mut offset = 0usize; // bytes of segments[seg_idx] already written
    loop {
        // Rebuild the iovec array from the cursor, skipping empty tails.
        let mut bufs = [IoSlice::new(&[]); MAX_SEGMENTS];
        let mut n_bufs = 0usize;
        for (i, seg) in segments.iter().enumerate().skip(seg_idx) {
            let s = if i == seg_idx { &seg[offset..] } else { seg };
            if !s.is_empty() {
                bufs[n_bufs] = IoSlice::new(s);
                n_bufs += 1;
            }
        }
        if n_bufs == 0 {
            return Ok(());
        }
        match w.write_vectored(&bufs[..n_bufs]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole vectored frame",
                ));
            }
            Ok(mut n) => {
                // Advance the cursor by n bytes across segment boundaries.
                // (The bound also shields against a writer reporting more
                // bytes than it was given.)
                while n > 0 && seg_idx < segments.len() {
                    let rem = segments[seg_idx].len() - offset;
                    if n >= rem {
                        n -= rem;
                        seg_idx += 1;
                        offset = 0;
                    } else {
                        offset += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call, exercising the
    /// continuation loop both between and inside segments.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            let mut left = self.cap;
            let mut written = 0;
            for b in bufs {
                if left == 0 {
                    break;
                }
                let n = b.len().min(left);
                self.out.extend_from_slice(&b[..n]);
                left -= n;
                written += n;
            }
            Ok(written)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_all_segments_in_order() {
        for cap in [1usize, 2, 3, 5, 7, 100] {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            let segs: [&[u8]; 4] = [b"head", b"", b"er-", b"payload"];
            write_vectored_all(&mut w, &segs).expect("vectored write");
            assert_eq!(w.out, b"header-payload", "cap {cap}");
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut w = Dribble {
            out: Vec::new(),
            cap: 8,
        };
        write_vectored_all(&mut w, &[]).expect("empty");
        write_vectored_all(&mut w, &[b"", b""]).expect("all-empty");
        assert!(w.out.is_empty());
    }

    #[test]
    fn zero_write_is_an_error() {
        struct Stuck;
        impl Write for Stuck {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_vectored_all(&mut Stuck, &[b"x"]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
    }

    #[test]
    fn large_segments_survive_dribbling() {
        let a: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..7_777u32).map(|i| (i % 241) as u8).collect();
        let mut w = Dribble {
            out: Vec::new(),
            cap: 997,
        };
        write_vectored_all(&mut w, &[&a, &b]).expect("vectored write");
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        assert_eq!(w.out, expect);
    }
}
