//! Standalone sharded staging cluster: N staging services, one listener
//! and memory cap each, the way DataSpaces deploys a set of dedicated
//! staging nodes.
//!
//! ```text
//! staging_cluster [--shards N] [--addr HOST:PORT] [--servers S]
//!                 [--memory-mib M] [--max-conns C] [--chunk-kib K]
//!                 [--disk-dir PATH] [--disk-budget-mib D]
//! ```
//!
//! `--disk-dir` attaches a disk spill tier to every shard: each shard
//! logs spilled versions under `PATH/svc-<port>` (the bound port keeps
//! shards sharing one directory apart), capped per staging server by
//! `--disk-budget-mib`.
//!
//! With `--addr HOST:0` (the default) every shard binds an ephemeral
//! port; with an explicit port P, shard `i` binds `P + i`. Each shard's
//! bound address is printed on stdout, followed by the comma-separated
//! shard list a `ShardedClient` (or `workflow::native`'s `remote:`
//! backend) consumes verbatim. `--memory-mib` is the per-staging-server
//! cap *within* each shard, so cluster capacity is
//! `shards × servers × memory-mib`. The process exits when every shard
//! has received the `Shutdown` opcode (`ShardedClient::shutdown_all`).

use xlayer_net::cluster::StagingCluster;
use xlayer_net::service::ServiceConfig;

struct Args {
    shards: usize,
    cfg: ServiceConfig,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut cfg = ServiceConfig {
        servers: 1,
        ..ServiceConfig::default()
    };
    let mut shards = 4usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--addr" => cfg.addr = value("--addr")?.clone(),
            "--servers" => {
                cfg.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?;
            }
            "--memory-mib" => {
                let mib: u64 = value("--memory-mib")?
                    .parse()
                    .map_err(|e| format!("--memory-mib: {e}"))?;
                cfg.memory_per_server = mib << 20;
            }
            "--max-conns" => {
                cfg.max_connections = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--chunk-kib" => {
                let kib: u32 = value("--chunk-kib")?
                    .parse()
                    .map_err(|e| format!("--chunk-kib: {e}"))?;
                cfg.chunk_size = kib.saturating_mul(1024);
            }
            "--disk-dir" => {
                cfg.disk_dir = Some(std::path::PathBuf::from(value("--disk-dir")?));
            }
            "--disk-budget-mib" => {
                let mib: u64 = value("--disk-budget-mib")?
                    .parse()
                    .map_err(|e| format!("--disk-budget-mib: {e}"))?;
                cfg.disk_budget = mib << 20;
            }
            "--help" | "-h" => {
                return Err("usage: staging_cluster [--shards N] [--addr HOST:PORT] \
                     [--servers S] [--memory-mib M] [--max-conns C] [--chunk-kib K] \
                     [--disk-dir PATH] [--disk-budget-mib D]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args { shards, cfg })
}

/// Per-shard bind addresses: ephemeral if the base port is 0 (or the
/// address has no port), else base port + shard index.
fn shard_addrs(base: &str, shards: usize) -> Result<Vec<String>, String> {
    let (host, port) = match base.rsplit_once(':') {
        Some((h, p)) => {
            let port: u16 = p.parse().map_err(|e| format!("--addr port: {e}"))?;
            (h, port)
        }
        None => (base, 0u16),
    };
    (0..shards)
        .map(|i| {
            if port == 0 {
                Ok(format!("{host}:0"))
            } else {
                let p = port
                    .checked_add(i as u16)
                    .ok_or_else(|| format!("--addr port overflows at shard {i}"))?;
                Ok(format!("{host}:{p}"))
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Args { shards, cfg } = match parse_args(&args) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let addrs = match shard_addrs(&cfg.addr, shards) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let per_shard = cfg.servers as u64 * cfg.memory_per_server;
    let cluster = match StagingCluster::start_on(&addrs, &cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to start staging cluster: {e}");
            std::process::exit(1);
        }
    };
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("shard {i} listening on {addr}");
    }
    println!("cluster: {}", cluster.addr_list());
    println!(
        "{shards} shard(s), {} MiB each ({} MiB aggregate); stop with Shutdown to every shard",
        per_shard >> 20,
        (per_shard * shards as u64) >> 20
    );
    cluster.wait();
}
