//! Standalone staging service: run the staging space as its own process,
//! the way DataSpaces runs dedicated staging nodes.
//!
//! ```text
//! staging_service [--addr HOST:PORT] [--servers N] [--memory-mib M]
//!                 [--max-conns C] [--chunk-kib K]
//!                 [--disk-dir PATH] [--disk-budget-mib D]
//! ```
//!
//! `--disk-dir` attaches a disk spill tier: puts beyond the memory cap
//! demote cold versions to per-server object logs under
//! `PATH/svc-<port>` instead of being rejected, and hot gets promote
//! them back. `--disk-budget-mib` caps live spilled bytes per staging
//! server (unbounded by default).
//!
//! The bound address is printed on stdout (useful with port 0). The
//! process exits when a client sends the `Shutdown` opcode.

use xlayer_net::service::{ServiceConfig, StagingService};

fn parse_args(args: &[String]) -> Result<ServiceConfig, String> {
    let mut cfg = ServiceConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?.clone(),
            "--servers" => {
                cfg.servers = value("--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?;
            }
            "--memory-mib" => {
                let mib: u64 = value("--memory-mib")?
                    .parse()
                    .map_err(|e| format!("--memory-mib: {e}"))?;
                cfg.memory_per_server = mib << 20;
            }
            "--max-conns" => {
                cfg.max_connections = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--chunk-kib" => {
                let kib: u32 = value("--chunk-kib")?
                    .parse()
                    .map_err(|e| format!("--chunk-kib: {e}"))?;
                cfg.chunk_size = kib.saturating_mul(1024);
            }
            "--disk-dir" => {
                cfg.disk_dir = Some(std::path::PathBuf::from(value("--disk-dir")?));
            }
            "--disk-budget-mib" => {
                let mib: u64 = value("--disk-budget-mib")?
                    .parse()
                    .map_err(|e| format!("--disk-budget-mib: {e}"))?;
                cfg.disk_budget = mib << 20;
            }
            "--help" | "-h" => {
                return Err("usage: staging_service [--addr HOST:PORT] [--servers N] \
                     [--memory-mib M] [--max-conns C] [--chunk-kib K] \
                     [--disk-dir PATH] [--disk-budget-mib D]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let servers = cfg.servers;
    let per_server = cfg.memory_per_server;
    let tiered = cfg.disk_dir.is_some();
    let service = match StagingService::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start staging service: {e}");
            std::process::exit(1);
        }
    };
    println!("staging service listening on {}", service.local_addr());
    println!(
        "{servers} staging server(s), {} MiB each{}; stop with the Shutdown opcode",
        per_server >> 20,
        if tiered { ", disk spill tier on" } else { "" }
    );
    service.wait();
}
