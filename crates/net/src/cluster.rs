//! A sharded staging cluster: N independent [`StagingService`] processes
//! presented as one staging space.
//!
//! DataSpaces partitions its staging index spatially across servers so
//! aggregate capacity and bandwidth scale with server count (Docan et
//! al.). This module is that architecture over the xlayer wire protocol:
//!
//! * [`StagingCluster`] — an in-process harness spawning N services, each
//!   with its own `DataSpace`, listener, and memory cap (paper Eq. 10 now
//!   sizes the cluster in *servers*, the deployable unit, instead of
//!   modeled cores);
//! * [`ShardedClient`] — one pooled [`RemoteClient`] per shard, routing
//!   puts by the object's region through a [`ShardMap`] and serving
//!   region queries by concurrent scatter/gather over the shards the
//!   query box can intersect, merged deterministically;
//! * [`ShardedStager`] — the asynchronous put pipeline over a
//!   `ShardedClient`, accounting-compatible with `AsyncStager` and
//!   `RemoteStager`, with per-shard rejection counters.
//!
//! Degradation contract: a full shard answers a put with the typed
//! `OutOfMemory` policy signal. The client first *spills* the object to
//! sibling shards in ascending order (the same overflow rule as the
//! in-process `DataSpace`); only when every shard is full does the error
//! surface — tagged with the shard that owned the object — so the
//! workflow can fall back per-object instead of failing the step. A
//! transport-dead shard, by contrast, is never spilled around: its typed
//! error surfaces immediately, and the other shards' pooled connections
//! are untouched.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use xlayer_amr::boxes::IBox;
use xlayer_staging::{
    BatchClosed, DataObject, DrainError, ObjectDesc, ObjectKey, ShardMap, StageTask,
    TransportClosed, TransportStats,
};

use crate::client::{elapsed_ns, ClientConfig, RemoteClient, RemoteError};
use crate::hist::{LatencyHistogram, LatencySnapshot};
use crate::service::{ServiceConfig, StagingService};
use crate::wire::ServiceSnapshot;

/// A remote operation failed on a specific shard.
#[derive(Debug)]
pub struct ShardedError {
    /// The shard the failing operation was routed to (for a put that
    /// exhausted every spill candidate: the shard that *owns* the object).
    pub shard: usize,
    /// That shard's service address.
    pub addr: SocketAddr,
    /// The underlying failure.
    pub source: RemoteError,
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} ({}): {}", self.shard, self.addr, self.source)
    }
}

impl std::error::Error for ShardedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

struct ShardedInner {
    shards: Vec<RemoteClient>,
    map: ShardMap,
    /// Set once any object leaves its home shard (spill) or exceeds the
    /// placement span (oversized): region queries then broaden to every
    /// shard, trading fan-out for guaranteed coverage.
    broaden: AtomicBool,
    put_ns: LatencyHistogram,
    get_ns: LatencyHistogram,
    /// Put wall times bucketed by the shard the object actually landed on
    /// (the *owner* after any sibling spill), in shard order — so a shard
    /// whose puts run slow because they keep spilling shows up by name.
    put_ns_by_owner: Vec<LatencyHistogram>,
}

/// A client of a sharded staging cluster. Cheap to clone (clones share
/// the per-shard connection pools); safe to use from many threads.
#[derive(Clone)]
pub struct ShardedClient {
    inner: Arc<ShardedInner>,
}

impl ShardedClient {
    /// Build a client over one service address per shard, placing regions
    /// with `span`-cell buckets (see [`ShardMap`]). Shard order is
    /// placement: every client of the cluster must list the same
    /// addresses in the same order.
    pub fn connect(
        addrs: &[impl AsRef<str>],
        span: i64,
        cfg: ClientConfig,
    ) -> std::io::Result<Self> {
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "sharded client needs at least one shard address",
            ));
        }
        let shards = addrs
            .iter()
            .map(|a| RemoteClient::connect(a.as_ref(), cfg.clone()))
            .collect::<std::io::Result<Vec<_>>>()?;
        let put_ns_by_owner = (0..shards.len()).map(|_| LatencyHistogram::new()).collect();
        Ok(ShardedClient {
            inner: Arc::new(ShardedInner {
                map: ShardMap::new(shards.len(), span),
                shards,
                broaden: AtomicBool::new(false),
                put_ns: LatencyHistogram::new(),
                get_ns: LatencyHistogram::new(),
                put_ns_by_owner,
            }),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The placement map (shared by construction with every other client
    /// of the same address list).
    pub fn map(&self) -> &ShardMap {
        &self.inner.map
    }

    /// The per-shard client, if `shard` is in range.
    pub fn shard_client(&self, shard: usize) -> Option<&RemoteClient> {
        self.inner.shards.get(shard)
    }

    /// Resolved per-shard addresses, in shard order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.inner.shards.iter().map(|c| c.addr()).collect()
    }

    fn err_on(&self, shard: usize, source: RemoteError) -> ShardedError {
        let addr = self
            .inner
            .shards
            .get(shard)
            .map(|c| c.addr())
            .unwrap_or_else(|| SocketAddr::from(([0, 0, 0, 0], 0)));
        ShardedError {
            shard,
            addr,
            source,
        }
    }

    /// Store one object on its home shard; returns the shard it landed
    /// on. On `OutOfMemory` the put spills to sibling shards in ascending
    /// order (mirroring the in-process `DataSpace` overflow rule) and the
    /// typed error — tagged with the owning shard — surfaces only when
    /// the whole cluster is full. Transport failures never spill: a dead
    /// shard must be visible, not silently remapped.
    pub fn put(&self, obj: &DataObject) -> Result<usize, ShardedError> {
        let t0 = std::time::Instant::now();
        let home = self.inner.map.shard_of(&obj.desc.bbox);
        if !self.inner.map.fits(&obj.desc.bbox) {
            // Oversized for the span: placement still lands it on exactly
            // one shard, but region queries can no longer prove coverage.
            self.inner.broaden.store(true, Ordering::Relaxed);
        }
        let Some(home_client) = self.inner.shards.get(home) else {
            return Err(self.err_on(
                home,
                RemoteError::Protocol(format!("placement chose shard {home} out of range")),
            ));
        };
        let first = match home_client.put(obj) {
            Ok(_) => {
                self.record_put(home, elapsed_ns(t0));
                return Ok(home);
            }
            Err(e @ RemoteError::OutOfMemory { .. }) => e,
            Err(e) => return Err(self.err_on(home, e)),
        };
        for (i, sibling) in self.inner.shards.iter().enumerate() {
            if i == home {
                continue;
            }
            match sibling.put(obj) {
                Ok(_) => {
                    self.inner.broaden.store(true, Ordering::Relaxed);
                    self.record_put(i, elapsed_ns(t0));
                    return Ok(i);
                }
                Err(RemoteError::OutOfMemory { .. }) => continue,
                // A sibling with transport trouble is no reason to fail
                // the put: keep looking for room elsewhere.
                Err(_) => continue,
            }
        }
        Err(self.err_on(home, first))
    }

    /// The shards a fetch must consult for `query`.
    fn fetch_targets(&self, query: &Option<IBox>) -> Vec<usize> {
        match query {
            None => self.inner.map.all_shards(),
            Some(q) => {
                if self.inner.broaden.load(Ordering::Relaxed) {
                    if q.is_empty() {
                        Vec::new()
                    } else {
                        self.inner.map.all_shards()
                    }
                } else {
                    self.inner.map.query_shards(q)
                }
            }
        }
    }

    /// Fetch the objects under `(name, version)` intersecting `query`
    /// (all objects of the version if `None`) by scatter/gather: a
    /// concurrent fetch per intersecting shard, merged into one list
    /// sorted by `(name, version, bbox.lo, bbox.hi, origin_rank)` — the
    /// same total order no matter how objects were distributed, so the
    /// sharded read path is bit-compatible with a single server's.
    ///
    /// The first failing shard (lowest shard id) surfaces as the typed
    /// error; healthy shards' pooled connections are unaffected.
    pub fn get(
        &self,
        name: &str,
        version: u64,
        query: Option<IBox>,
    ) -> Result<Vec<DataObject>, ShardedError> {
        let t0 = std::time::Instant::now();
        let targets = self.fetch_targets(&query);
        let fetched = self.scatter(&targets, |c| c.get(name, version, query))?;
        let mut out: Vec<DataObject> = fetched.into_iter().flatten().collect();
        sort_objects(&mut out);
        self.inner.get_ns.record(elapsed_ns(t0));
        Ok(out)
    }

    /// Fetch descriptors under `(name, version)` from every shard —
    /// metadata only, merged in the same deterministic order as
    /// [`Self::get`].
    pub fn describe(&self, name: &str, version: u64) -> Result<Vec<ObjectDesc>, ShardedError> {
        let targets = self.inner.map.all_shards();
        let fetched = self.scatter(&targets, |c| c.describe(name, version))?;
        let mut out: Vec<ObjectDesc> = fetched.into_iter().flatten().collect();
        sort_descs(&mut out);
        Ok(out)
    }

    /// Run `op` against each target shard concurrently; results come back
    /// in target order, and the failure on the lowest shard id wins.
    fn scatter<T: Send>(
        &self,
        targets: &[usize],
        op: impl Fn(&RemoteClient) -> Result<T, RemoteError> + Sync,
    ) -> Result<Vec<T>, ShardedError> {
        // One target: skip the thread machinery (the common case for
        // span-local queries).
        if targets.len() <= 1 {
            let mut out = Vec::new();
            for &i in targets {
                let Some(client) = self.inner.shards.get(i) else {
                    continue;
                };
                out.push(op(client).map_err(|e| self.err_on(i, e))?);
            }
            return Ok(out);
        }
        let op = &op;
        let results: Vec<(usize, Result<T, RemoteError>)> = std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .iter()
                .filter_map(|&i| {
                    self.inner
                        .shards
                        .get(i)
                        .map(|client| (i, s.spawn(move || op(client))))
                })
                .collect();
            handles
                .into_iter()
                .map(|(i, h)| {
                    let r = h.join().unwrap_or_else(|_| {
                        Err(RemoteError::Protocol(
                            "shard fetch worker panicked".to_string(),
                        ))
                    });
                    (i, r)
                })
                .collect()
        });
        let mut out = Vec::with_capacity(results.len());
        for (i, r) in results {
            out.push(r.map_err(|e| self.err_on(i, e))?);
        }
        Ok(out)
    }

    /// Evict versions of `name` older than `before_version` on every
    /// shard; returns total bytes freed. Visits every shard even when one
    /// fails, then reports the failure on the lowest shard id.
    pub fn evict_before(&self, name: &str, before_version: u64) -> Result<u64, ShardedError> {
        let mut freed = 0u64;
        let mut first_err = None;
        for (i, c) in self.inner.shards.iter().enumerate() {
            match c.evict_before(name, before_version) {
                Ok(b) => freed += b,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(self.err_on(i, e));
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(freed),
        }
    }

    /// Per-shard service snapshots, in shard order — the cluster's Eq. 10
    /// accounting view (per-shard `used`/`capacity`, op counters).
    pub fn shard_stats(&self) -> Vec<Result<ServiceSnapshot, ShardedError>> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, c)| c.service_stats().map_err(|e| self.err_on(i, e)))
            .collect()
    }

    /// Total free bytes across reachable shards — what the resource
    /// policy (Eq. 9–10) sizes against. Unreachable shards count zero.
    pub fn total_headroom(&self) -> u64 {
        self.shard_stats()
            .into_iter()
            .filter_map(|r| r.ok())
            .map(|s| s.capacity.saturating_sub(s.used))
            .sum()
    }

    /// Record a completed put against both the aggregate histogram and
    /// the owning shard's.
    fn record_put(&self, owner: usize, ns: u64) {
        self.inner.put_ns.record(ns);
        if let Some(h) = self.inner.put_ns_by_owner.get(owner) {
            h.record(ns);
        }
    }

    /// Percentile summary of successful sharded put wall times (includes
    /// any spill attempts).
    pub fn put_latency(&self) -> LatencySnapshot {
        self.inner.put_ns.snapshot()
    }

    /// Put latency percentiles bucketed by the shard each object actually
    /// landed on (its post-spill owner), in shard order.
    pub fn put_latency_by_owner(&self) -> Vec<LatencySnapshot> {
        self.inner
            .put_ns_by_owner
            .iter()
            .map(|h| h.snapshot())
            .collect()
    }

    /// Percentile summary of successful scatter/gather get wall times.
    pub fn get_latency(&self) -> LatencySnapshot {
        self.inner.get_ns.snapshot()
    }

    /// Cluster-wide per-link put latency: every shard client's histogram
    /// folded together.
    pub fn link_put_latency(&self) -> LatencySnapshot {
        let all = LatencyHistogram::new();
        for c in &self.inner.shards {
            all.absorb(c.put_hist());
        }
        all.snapshot()
    }

    /// Cluster-wide per-link get latency.
    pub fn link_get_latency(&self) -> LatencySnapshot {
        let all = LatencyHistogram::new();
        for c in &self.inner.shards {
            all.absorb(c.get_hist());
        }
        all.snapshot()
    }

    /// Cluster-wide retry counters: every shard client's [`ClientStats`]
    /// summed field-wise.
    pub fn client_stats_total(&self) -> crate::client::ClientStats {
        let mut total = crate::client::ClientStats::default();
        for c in &self.inner.shards {
            total.add(&c.client_stats());
        }
        total
    }

    /// Ask every shard to shut down. Visits all shards; reports the first
    /// failure (lowest shard id).
    pub fn shutdown_all(&self) -> Result<(), ShardedError> {
        let mut first_err = None;
        for (i, c) in self.inner.shards.iter().enumerate() {
            if let Err(e) = c.shutdown() {
                if first_err.is_none() {
                    first_err = Some(self.err_on(i, e));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Sort objects into the cluster's canonical merge order.
fn sort_objects(objs: &mut [DataObject]) {
    objs.sort_by(|a, b| desc_order(&a.desc, &b.desc));
}

/// Sort descriptors into the cluster's canonical merge order.
fn sort_descs(descs: &mut [ObjectDesc]) {
    descs.sort_by(desc_order);
}

/// The canonical `(name, version, bbox.lo, bbox.hi, origin_rank)` order
/// gathered results are merged in. Total for distinct objects: two
/// objects of one `(name, version)` are distinct by region or producer.
fn desc_order(a: &ObjectDesc, b: &ObjectDesc) -> std::cmp::Ordering {
    (
        &a.key.name,
        a.key.version,
        a.bbox.lo(),
        a.bbox.hi(),
        a.origin_rank,
    )
        .cmp(&(
            &b.key.name,
            b.key.version,
            b.bbox.lo(),
            b.bbox.hi(),
            b.origin_rank,
        ))
}

/// Asynchronous puts into a sharded cluster: the same put/drain surface
/// and `TransportStats` accounting as `AsyncStager`/`RemoteStager`, so
/// `workflow::native` swaps it in without changing its synchronisation.
/// Adds per-shard rejection counters: when the cluster is full, the
/// policy layer can see *which* shard's region of space is hot.
pub struct ShardedStager {
    tx: Option<Sender<StageTask>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<TransportStats>,
    rejected_by_shard: Arc<Vec<AtomicU64>>,
    /// Per *home* shard: deliveries that landed on a sibling because the
    /// home shard (memory and disk tier both) had no room.
    spill_redirects: Arc<Vec<AtomicU64>>,
    client: ShardedClient,
}

impl ShardedStager {
    /// Start `nthreads` transfer threads sending over `client`, with a
    /// queue depth of `queue_depth` tasks.
    pub fn new(client: ShardedClient, nthreads: usize, queue_depth: usize) -> Self {
        let (tx, rx) = bounded::<StageTask>(queue_depth.max(1));
        let stats = Arc::new(TransportStats::default());
        let rejected_by_shard: Arc<Vec<AtomicU64>> = Arc::new(
            (0..client.num_shards())
                .map(|_| AtomicU64::new(0))
                .collect(),
        );
        let spill_redirects: Arc<Vec<AtomicU64>> = Arc::new(
            (0..client.num_shards())
                .map(|_| AtomicU64::new(0))
                .collect(),
        );
        let workers = (0..nthreads.max(1))
            .map(|_| {
                let rx = rx.clone();
                let client = client.clone();
                let stats = Arc::clone(&stats);
                let by_shard = Arc::clone(&rejected_by_shard);
                let redirects = Arc::clone(&spill_redirects);
                std::thread::spawn(move || {
                    // Greedy drain, same shape as RemoteStager: answer the
                    // rendezvous once per drained run.
                    let mut run: Vec<StageTask> = Vec::new();
                    while let Ok(task) = rx.recv() {
                        run.push(task);
                        while run.len() < 64 {
                            match rx.try_recv() {
                                Ok(t) => run.push(t),
                                Err(_) => break,
                            }
                        }
                        let mut notes: Vec<(ObjectKey, u64)> = Vec::new();
                        for task in run.drain(..) {
                            let obj = task.materialize();
                            let bytes = obj.desc.bytes;
                            let key = obj.desc.key.clone();
                            let home = client.map().shard_of(&obj.desc.bbox);
                            match client.put(&obj) {
                                Ok(owner) => {
                                    stats.delivered.fetch_add(1, Ordering::Relaxed);
                                    stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                                    if owner != home {
                                        if let Some(n) = redirects.get(home) {
                                            n.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                Err(ShardedError {
                                    shard,
                                    source: RemoteError::OutOfMemory { .. },
                                    ..
                                }) => {
                                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                                    if let Some(n) = by_shard.get(shard) {
                                        n.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(_) => {
                                    stats.failed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            match notes.iter_mut().find(|(k, _)| *k == key) {
                                Some((_, n)) => *n += 1,
                                None => notes.push((key, 1)),
                            }
                        }
                        for (key, n) in notes {
                            stats.note_processed_n(&key, n);
                        }
                    }
                })
            })
            .collect();
        ShardedStager {
            tx: Some(tx),
            workers,
            stats,
            rejected_by_shard,
            spill_redirects,
            client,
        }
    }

    /// Enqueue an object for transfer; blocks only on a full queue. Same
    /// contract as `AsyncStager::put`.
    #[allow(clippy::result_large_err)]
    pub fn put(&self, obj: DataObject) -> Result<(), TransportClosed> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(TransportClosed(obj));
        };
        tx.send(StageTask::Ready(obj))
            .map_err(|e| TransportClosed(e.0.materialize()))
    }

    /// Enqueue a batch of tasks. Same contract as `AsyncStager::put_batch`.
    pub fn put_batch(&self, tasks: Vec<StageTask>) -> Result<(), BatchClosed> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(BatchClosed {
                enqueued: 0,
                rest: tasks,
            });
        };
        let mut enqueued = 0u64;
        let mut it = tasks.into_iter();
        while let Some(task) = it.next() {
            match tx.send(task) {
                Ok(()) => enqueued += 1,
                Err(e) => {
                    let mut rest = vec![e.0];
                    rest.extend(it);
                    return Err(BatchClosed { enqueued, rest });
                }
            }
        }
        Ok(())
    }

    /// The sharded client the transfer threads send through.
    pub fn client(&self) -> &ShardedClient {
        &self.client
    }

    /// Shared statistics handle (rendezvous-compatible with the other
    /// stagers).
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.stats)
    }

    /// Objects delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// Puts rejected by cluster-wide memory exhaustion.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Rejections attributed to each object's *home* shard, in shard
    /// order — where in space the pressure is.
    pub fn rejected_by_shard(&self) -> Vec<u64> {
        self.rejected_by_shard
            .iter()
            .map(|n| n.load(Ordering::Relaxed))
            .collect()
    }

    /// Deliveries that left each *home* shard for a sibling, in shard
    /// order. Non-zero entries mean that shard exhausted both its memory
    /// cap and its disk tier — the cluster-level relief valve engaged.
    pub fn spill_redirects_by_shard(&self) -> Vec<u64> {
        self.spill_redirects
            .iter()
            .map(|n| n.load(Ordering::Relaxed))
            .collect()
    }

    /// Close the queue and wait until every enqueued object is resolved.
    /// Returns (delivered, rejected), like `AsyncStager::drain`.
    pub fn drain(mut self) -> Result<(u64, u64), DrainError> {
        drop(self.tx.take());
        let mut panicked = 0;
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                panicked += 1;
            }
        }
        let delivered = self.stats.delivered.load(Ordering::Relaxed);
        let rejected = self.stats.rejected.load(Ordering::Relaxed);
        if panicked > 0 {
            return Err(DrainError {
                panicked,
                delivered,
                rejected,
            });
        }
        Ok((delivered, rejected))
    }
}

impl Drop for ShardedStager {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats.close();
    }
}

/// An in-process staging cluster: N [`StagingService`] instances, each
/// with its own listener, `DataSpace`, and memory cap. The harness the
/// `staging_cluster` binary, benches, and tests run.
pub struct StagingCluster {
    services: Vec<Option<StagingService>>,
}

impl StagingCluster {
    /// Spawn `shards` services from `template`, each bound to an
    /// ephemeral port on the template address's interface. The template's
    /// `memory_per_server` (× its internal `servers`) is the *per-shard*
    /// cap, so cluster capacity is `shards ×` that — Eq. 10 sized in
    /// servers.
    pub fn start(shards: usize, template: &ServiceConfig) -> std::io::Result<Self> {
        let host = template
            .addr
            .rsplit_once(':')
            .map(|(h, _)| h)
            .unwrap_or("127.0.0.1");
        let addrs: Vec<String> = (0..shards.max(1)).map(|_| format!("{host}:0")).collect();
        Self::start_on(&addrs, template)
    }

    /// Spawn one service per address in `addrs` (shard order = address
    /// order). On any bind failure, already-started shards are shut down
    /// before the error returns.
    pub fn start_on(addrs: &[String], template: &ServiceConfig) -> std::io::Result<Self> {
        let mut services: Vec<Option<StagingService>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut cfg = template.clone();
            cfg.addr = addr.clone();
            match StagingService::start(cfg) {
                Ok(s) => services.push(Some(s)),
                Err(e) => {
                    for s in services.drain(..).flatten() {
                        s.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        Ok(StagingCluster { services })
    }

    /// Number of shards (including any already stopped).
    pub fn num_shards(&self) -> usize {
        self.services.len()
    }

    /// The running service for `shard`, if any.
    pub fn service(&self, shard: usize) -> Option<&StagingService> {
        self.services.get(shard).and_then(|s| s.as_ref())
    }

    /// Bound addresses in shard order (a stopped shard keeps reporting
    /// the address it had, resolved at start).
    pub fn addrs(&self) -> Vec<String> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                Some(svc) => svc.local_addr().to_string(),
                None => format!("shard-{i}-stopped"),
            })
            .collect()
    }

    /// The comma-separated shard list `workflow::native`'s `remote:`
    /// backend and `ShardedClient::connect` accept.
    pub fn addr_list(&self) -> String {
        self.addrs().join(",")
    }

    /// Per-shard accounting snapshots (None for stopped shards): the
    /// cluster-level `Stats` view the resource policy reads.
    pub fn snapshots(&self) -> Vec<Option<ServiceSnapshot>> {
        self.services
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|svc| svc.stats().snapshot(svc.space(), svc.pool()))
            })
            .collect()
    }

    /// Resident bytes per shard (0 for stopped shards).
    pub fn used_per_shard(&self) -> Vec<u64> {
        self.services
            .iter()
            .map(|s| s.as_ref().map(|svc| svc.space().used()).unwrap_or(0))
            .collect()
    }

    /// Stop one shard (for fault testing); returns true if it was
    /// running. The other shards keep serving.
    pub fn stop_shard(&mut self, shard: usize) -> bool {
        match self.services.get_mut(shard).and_then(Option::take) {
            Some(svc) => {
                svc.shutdown();
                true
            }
            None => false,
        }
    }

    /// Shut every shard down and wait for their threads.
    pub fn shutdown(mut self) {
        for s in self.services.drain(..).flatten() {
            s.shutdown();
        }
    }

    /// Block until every shard exits (e.g. via a client `Shutdown`).
    pub fn wait(mut self) {
        for s in self.services.drain(..).flatten() {
            s.wait();
        }
    }
}

impl Drop for StagingCluster {
    fn drop(&mut self) {
        for s in self.services.drain(..).flatten() {
            s.shutdown();
        }
    }
}
