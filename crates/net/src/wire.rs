//! The staging wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic            b"XLNT"
//!      4     2  protocol version u16 LE (currently 4)
//!      6     1  opcode           (see [`Opcode`])
//!      7     1  flags            reserved, must be 0
//!      8     8  request id       u64 LE, echoed by the response
//!     16     4  payload length   u32 LE, bytes after the header
//!     20     4  checksum         FNV-1a-32 over the payload, u32 LE
//!     24     …  payload          opcode-specific body
//! ```
//!
//! All integers are little-endian; floats travel as `to_bits()` so the
//! round trip is bit-exact. Strings are `u32` length + UTF-8 bytes; an
//! [`IBox`] is its two inclusive corners (6 × `i64`); an optional box is a
//! one-byte tag. The payload length is capped ([`MAX_PAYLOAD`]) so a
//! hostile header cannot make a peer allocate unbounded memory, and every
//! decode error is a typed [`WireError`] — the codec never panics on
//! malformed bytes (xlint rule P covers this module).

use bytes::Bytes;
use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;
use xlayer_staging::{DataObject, ObjectDesc, ObjectKey};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"XLNT";

/// Protocol version encoded in every header. Peers refuse any other
/// version outright ([`WireError::BadVersion`]), so a body-layout change
/// MUST bump this — version 2 widened the `StatsOk` body with the tier
/// and cache counters and added error code 5 (`NeedsReduction`); version
/// 3 appended the disk-budget pair (`tier_disk_budget`,
/// `tier_disk_headroom`) to `StatsOk`; version 4 appended `busy_frames`
/// (Busy refusals actually written) to `StatsOk` for load-generation
/// accounting; an older peer would misparse the body. The layout
/// fingerprint is additionally pinned in `xlint.wire` (rule S):
/// regenerate it with `xlint --write-wire-pin` alongside any bump.
pub const VERSION: u16 = 4;

/// Header size in bytes.
pub const HEADER_LEN: usize = 24;

/// Largest accepted payload (256 MiB). Decoders reject longer frames
/// before allocating. Objects above this limit must travel chunked
/// ([`Opcode::PutChunked`]/[`Opcode::GetChunked`]), whose streams are
/// bounded per-frame by [`MAX_CHUNK_SIZE`] and in total by
/// [`MAX_CHUNKED_OBJECT`].
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Default sub-frame size of a chunked stream (1 MiB).
pub const DEFAULT_CHUNK_SIZE: u32 = 1 << 20;

/// Smallest negotiable sub-frame size (4 KiB).
pub const MIN_CHUNK_SIZE: u32 = 4 << 10;

/// Largest negotiable sub-frame size (8 MiB).
pub const MAX_CHUNK_SIZE: u32 = 8 << 20;

/// Ceiling on one chunked object's total payload (16 GiB) — the chunked
/// path removes [`MAX_PAYLOAD`]'s per-frame cap, not the principle that a
/// hostile descriptor must not size an unbounded allocation.
pub const MAX_CHUNKED_OBJECT: u64 = 16 << 30;

/// Byte length of the [`Opcode::ChunkData`] body prefix that precedes the
/// chunk's data bytes: `u32` object index + `u64` stream offset.
pub const CHUNK_PREFIX_LEN: usize = 12;

/// Clamp a proposed sub-frame size into the negotiable
/// [`MIN_CHUNK_SIZE`]..=[`MAX_CHUNK_SIZE`] window. Both peers apply this,
/// so a stream's effective chunk size is a pure function of the opening
/// frame.
pub fn clamp_chunk_size(proposed: u32) -> u32 {
    proposed.clamp(MIN_CHUNK_SIZE, MAX_CHUNK_SIZE)
}

/// FNV-1a 32-bit checksum, the integrity check carried in each header.
/// The implementation lives in `xlayer_staging::sum` — the disk tier
/// checksums its extents with the very same function, so per-chunk sums
/// computed on the wire stay valid on disk and back.
pub use xlayer_staging::sum::{checksum, checksum_update};

/// Frame opcodes. Requests occupy `0x01..=0x08`, their success responses
/// the same code with the high bit set, `0x09`/`0x0A` are the sub-frames
/// of a chunked stream (either direction), and `0x7F` is the typed error
/// response any request can receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Store one [`DataObject`].
    Put = 0x01,
    /// Fetch the objects under `(name, version)`, optionally intersecting
    /// a query box.
    Get = 0x02,
    /// Fetch descriptors only (metadata query).
    Query = 0x03,
    /// Evict versions of a variable older than a watermark.
    Delete = 0x04,
    /// Fetch service statistics.
    Stats = 0x05,
    /// Ask the service to shut down gracefully.
    Shutdown = 0x06,
    /// Open a chunked put stream: descriptor + negotiated chunk size now,
    /// payload in [`Opcode::ChunkData`] sub-frames after.
    PutChunked = 0x07,
    /// Fetch objects as a chunked stream (the streaming counterpart of
    /// [`Opcode::Get`]).
    GetChunked = 0x08,
    /// One sub-frame of payload inside a chunked stream: object index +
    /// stream offset + data, checksummed per chunk by the frame header.
    ChunkData = 0x09,
    /// Terminal frame of a chunked stream, carrying object and byte totals
    /// for an end-to-end cross-check.
    ChunkEnd = 0x0A,
    /// Success response to [`Opcode::Put`].
    PutOk = 0x81,
    /// Success response to [`Opcode::Get`].
    GetOk = 0x82,
    /// Success response to [`Opcode::Query`].
    QueryOk = 0x83,
    /// Success response to [`Opcode::Delete`].
    DeleteOk = 0x84,
    /// Success response to [`Opcode::Stats`].
    StatsOk = 0x85,
    /// Success response to [`Opcode::Shutdown`].
    ShutdownOk = 0x86,
    /// Success response to [`Opcode::PutChunked`], sent after the entire
    /// stream has been assembled and stored.
    PutChunkedOk = 0x87,
    /// Response header of a [`Opcode::GetChunked`] stream: descriptors +
    /// effective chunk size, followed by `ChunkData`/`ChunkEnd` frames.
    GetChunkedOk = 0x88,
    /// Typed error response (see [`ErrorFrame`]).
    Error = 0x7F,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Put),
            0x02 => Some(Opcode::Get),
            0x03 => Some(Opcode::Query),
            0x04 => Some(Opcode::Delete),
            0x05 => Some(Opcode::Stats),
            0x06 => Some(Opcode::Shutdown),
            0x07 => Some(Opcode::PutChunked),
            0x08 => Some(Opcode::GetChunked),
            0x09 => Some(Opcode::ChunkData),
            0x0A => Some(Opcode::ChunkEnd),
            0x81 => Some(Opcode::PutOk),
            0x82 => Some(Opcode::GetOk),
            0x83 => Some(Opcode::QueryOk),
            0x84 => Some(Opcode::DeleteOk),
            0x85 => Some(Opcode::StatsOk),
            0x86 => Some(Opcode::ShutdownOk),
            0x87 => Some(Opcode::PutChunkedOk),
            0x88 => Some(Opcode::GetChunkedOk),
            0x7F => Some(Opcode::Error),
            _ => None,
        }
    }
}

/// A decode failure. Every malformed input maps to one of these — the
/// codec is total over arbitrary bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Reserved flags byte was not zero.
    BadFlags(u8),
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// Payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum carried in the header.
        header: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// The buffer ended before the field being decoded.
    Truncated,
    /// Payload bytes remained after the body was fully decoded.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A decoded object's descriptor and payload disagree (lengths or
    /// core/bbox geometry).
    InconsistentObject,
    /// The opcode is valid but not legal in this position (e.g. a response
    /// opcode in a request frame).
    UnexpectedOpcode(u8),
    /// Unknown error-frame code.
    BadErrorCode(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            WireError::BadFlags(b) => write!(f, "nonzero reserved flags 0x{b:02x}"),
            WireError::Oversize(n) => write!(f, "payload of {n} B exceeds cap of {MAX_PAYLOAD} B"),
            WireError::ChecksumMismatch { header, computed } => write!(
                f,
                "payload checksum mismatch: header {header:08x}, computed {computed:08x}"
            ),
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame body"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::InconsistentObject => {
                write!(f, "object descriptor and payload are inconsistent")
            }
            WireError::UnexpectedOpcode(b) => write!(f, "opcode 0x{b:02x} not legal here"),
            WireError::BadErrorCode(c) => write!(f, "unknown error frame code {c}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitive writer/reader
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte vector.
#[derive(Default)]
struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn ivect(&mut self, v: IntVect) {
        let IntVect([x, y, z]) = v;
        self.i64(x);
        self.i64(y);
        self.i64(z);
    }
    fn ibox(&mut self, b: &IBox) {
        self.ivect(b.lo());
        self.ivect(b.hi());
    }
    fn opt_ibox(&mut self, b: Option<&IBox>) {
        match b {
            None => self.u8(0),
            Some(b) => {
                self.u8(1);
                self.ibox(b);
            }
        }
    }
    fn desc(&mut self, d: &ObjectDesc) {
        self.string(&d.key.name);
        self.u64(d.key.version);
        self.ibox(&d.bbox);
        self.ibox(&d.core);
        self.f64(d.dx);
        self.u64(d.bytes);
        self.u64(d.origin_rank as u64);
    }
    fn object(&mut self, o: &DataObject) {
        self.desc(&o.desc);
        self.bytes(o.payload.as_ref());
    }
}

/// Cursor-style decoder over a byte slice; every read is bounds-checked.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        std::str::from_utf8(self.bytes()?)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }

    fn ivect(&mut self) -> Result<IntVect, WireError> {
        Ok(IntVect::new(self.i64()?, self.i64()?, self.i64()?))
    }

    fn ibox(&mut self) -> Result<IBox, WireError> {
        let (lo, hi) = (self.ivect()?, self.ivect()?);
        Ok(IBox::new(lo, hi))
    }

    fn opt_ibox(&mut self) -> Result<Option<IBox>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.ibox()?)),
        }
    }

    fn desc(&mut self) -> Result<ObjectDesc, WireError> {
        let name = self.string()?;
        let version = self.u64()?;
        let bbox = self.ibox()?;
        let core = self.ibox()?;
        let dx = self.f64()?;
        let bytes = self.u64()?;
        let origin_rank = self.u64()? as usize;
        Ok(ObjectDesc {
            key: ObjectKey::new(name, version),
            bbox,
            core,
            dx,
            bytes,
            origin_rank,
        })
    }

    fn object(&mut self) -> Result<DataObject, WireError> {
        let desc = self.desc()?;
        let payload = Bytes::copy_from_slice(self.bytes()?);
        DataObject::from_wire(desc, payload).ok_or(WireError::InconsistentObject)
    }

    fn done(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// A raw frame: opcode + request id + verified payload bytes. The unit the
/// transport reads and writes; [`Request`]/[`Response`] decode the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame opcode.
    pub opcode: Opcode,
    /// Request id (responses echo the request's).
    pub request_id: u64,
    /// Opcode-specific body (checksum already verified).
    pub payload: Vec<u8>,
}

/// Encode a complete frame (header + payload) into one buffer.
pub fn encode_frame(opcode: Opcode, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = Wr {
        buf: Vec::with_capacity(HEADER_LEN + payload.len()),
    };
    w.buf.extend_from_slice(&MAGIC);
    w.u16(VERSION);
    w.u8(opcode as u8);
    w.u8(0); // flags, reserved
    w.u64(request_id);
    w.u32(payload.len() as u32);
    w.u32(checksum(payload));
    w.buf.extend_from_slice(payload);
    w.buf
}

/// Parsed header fields, prior to payload arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Frame opcode.
    pub opcode: Opcode,
    /// Request id.
    pub request_id: u64,
    /// Payload length in bytes (≤ [`MAX_PAYLOAD`]).
    pub payload_len: u32,
    /// FNV-1a-32 checksum of the payload.
    pub checksum: u32,
}

/// Decode and validate a 24-byte header.
pub fn decode_header(buf: &[u8; HEADER_LEN]) -> Result<Header, WireError> {
    let mut r = Rd::new(buf);
    let magic = r.take(4)?;
    if magic != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(magic);
        return Err(WireError::BadMagic(m));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let op = r.u8()?;
    let opcode = Opcode::from_u8(op).ok_or(WireError::BadOpcode(op))?;
    let flags = r.u8()?;
    if flags != 0 {
        return Err(WireError::BadFlags(flags));
    }
    let request_id = r.u64()?;
    let payload_len = r.u32()?;
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversize(payload_len));
    }
    let cks = r.u32()?;
    Ok(Header {
        opcode,
        request_id,
        payload_len,
        checksum: cks,
    })
}

/// Verify a received payload against its header's checksum.
pub fn verify_payload(header: &Header, payload: &[u8]) -> Result<(), WireError> {
    let computed = checksum(payload);
    if computed != header.checksum {
        return Err(WireError::ChecksumMismatch {
            header: header.checksum,
            computed,
        });
    }
    Ok(())
}

/// Build a 24-byte frame header for a payload whose bytes are sent
/// separately (the vectored-I/O send path): the caller supplies the total
/// payload length and its FNV-1a-32 checksum (composed with
/// [`checksum_update`] when the payload is scattered across buffers).
pub fn frame_header(
    opcode: Opcode,
    request_id: u64,
    payload_len: u32,
    cks: u32,
) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_le_bytes());
    h[6..8].copy_from_slice(&[opcode as u8, 0]); // opcode, reserved flags
    h[8..16].copy_from_slice(&request_id.to_le_bytes());
    h[16..20].copy_from_slice(&payload_len.to_le_bytes());
    h[20..24].copy_from_slice(&cks.to_le_bytes());
    h
}

/// Encode a single-frame `Put` as vectored parts: fills `scratch` with the
/// body minus the payload bytes (descriptor + payload length prefix) and
/// returns the frame header. Sending `[header, scratch, payload]` is
/// byte-identical to `Request::Put(obj).encode(request_id)` but never
/// copies the payload into a contiguous frame.
pub fn put_frame_parts(
    obj: &DataObject,
    request_id: u64,
    scratch: &mut Vec<u8>,
) -> [u8; HEADER_LEN] {
    scratch.clear();
    let mut w = Wr {
        buf: std::mem::take(scratch),
    };
    w.desc(&obj.desc);
    w.u32(obj.payload.len() as u32);
    *scratch = w.buf;
    let total = (scratch.len() + obj.payload.len()) as u32;
    let cks = checksum_update(checksum(scratch), obj.payload.as_ref());
    frame_header(Opcode::Put, request_id, total, cks)
}

// ---------------------------------------------------------------------------
// Chunked stream sub-frames
// ---------------------------------------------------------------------------
//
// A chunked stream is opened by a `PutChunked` request (client → service)
// or a `GetChunkedOk` response (service → client), and then consists of
// zero or more `ChunkData` frames followed by exactly one `ChunkEnd`, all
// carrying the stream's request id. Each `ChunkData` body is a fixed
// 12-byte prefix — `u32` object index + `u64` stream offset — followed by
// the chunk's data bytes; the frame header's checksum is
// `checksum(prefix) XOR checksum(data)` — two independent FNV-1a-32
// passes combined by XOR rather than one streaming pass over the
// concatenation. The XOR split keeps per-chunk integrity (either half
// flipping flips the result) while making the data component independent
// of the prefix, i.e. of the chunk's object index and stream offset in
// *this* response — so a service can compute each stored object's chunk
// sums once and reuse them across every later get stream
// ([`chunk_data_parts_cached`]). Offsets must
// be strictly sequential per object and every chunk except an object's
// last must be exactly the negotiated chunk size, so a receiver can
// assemble directly into a pre-sized destination buffer.

/// A decoded [`Opcode::ChunkData`] body, borrowing the chunk's data bytes
/// so the caller decides whether (and where) to copy them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkData<'a> {
    /// Which object of the stream this chunk belongs to (0-based; always 0
    /// for a put stream, which carries one object).
    pub index: u32,
    /// Byte offset of this chunk within the object's payload.
    pub offset: u64,
    /// The chunk's data bytes.
    pub data: &'a [u8],
}

/// Encode the header + body-prefix pair of a [`Opcode::ChunkData`] frame
/// whose data bytes are written separately (vectored), so the data —
/// typically a slice of an `Arc`-held object payload — is never copied
/// into a frame buffer.
pub fn chunk_data_parts(
    request_id: u64,
    index: u32,
    offset: u64,
    data: &[u8],
) -> ([u8; HEADER_LEN], [u8; CHUNK_PREFIX_LEN]) {
    chunk_data_parts_cached(request_id, index, offset, checksum(data), data.len())
}

/// [`chunk_data_parts`] with the data half of the checksum —
/// `checksum(data)` — supplied by the caller instead of recomputed. The
/// chunk checksum is `checksum(prefix) ^ checksum(data)`, so a sender
/// holding pre-computed per-chunk data sums for an immutable payload
/// (learned while verifying the put stream that delivered it, or from a
/// prior get) emits every later stream without touching the data bytes
/// beyond the socket write itself.
pub fn chunk_data_parts_cached(
    request_id: u64,
    index: u32,
    offset: u64,
    data_checksum: u32,
    data_len: usize,
) -> ([u8; HEADER_LEN], [u8; CHUNK_PREFIX_LEN]) {
    let mut prefix = [0u8; CHUNK_PREFIX_LEN];
    prefix[..4].copy_from_slice(&index.to_le_bytes());
    prefix[4..12].copy_from_slice(&offset.to_le_bytes());
    let cks = checksum(&prefix) ^ data_checksum;
    let len = (CHUNK_PREFIX_LEN + data_len) as u32;
    (
        frame_header(Opcode::ChunkData, request_id, len, cks),
        prefix,
    )
}

/// Decode a [`Opcode::ChunkData`] body (prefix + borrowed data).
pub fn decode_chunk_data(payload: &[u8]) -> Result<ChunkData<'_>, WireError> {
    let mut r = Rd::new(payload);
    let index = r.u32()?;
    let offset = r.u64()?;
    let data = r.take(r.remaining())?;
    Ok(ChunkData {
        index,
        offset,
        data,
    })
}

/// Decode just the fixed 12-byte [`Opcode::ChunkData`] prefix (object
/// index, stream offset). The receive hot path reads the prefix and the
/// data bytes in separate reads — the data lands directly in the
/// destination object buffer — so the prefix is decoded alone.
pub fn decode_chunk_prefix(prefix: &[u8; CHUNK_PREFIX_LEN]) -> (u32, u64) {
    let mut idx = [0u8; 4];
    idx.copy_from_slice(&prefix[..4]);
    let mut off = [0u8; 8];
    off.copy_from_slice(&prefix[4..12]);
    (u32::from_le_bytes(idx), u64::from_le_bytes(off))
}

/// Totals carried by a stream's terminal [`Opcode::ChunkEnd`] frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEnd {
    /// Number of objects the stream carried.
    pub objects: u32,
    /// Total data bytes across all chunks (excluding prefixes).
    pub total_bytes: u64,
}

/// Encode a complete [`Opcode::ChunkEnd`] frame.
pub fn encode_chunk_end(request_id: u64, end: ChunkEnd) -> Vec<u8> {
    let mut body = [0u8; 12];
    body[..4].copy_from_slice(&end.objects.to_le_bytes());
    body[4..12].copy_from_slice(&end.total_bytes.to_le_bytes());
    encode_frame(Opcode::ChunkEnd, request_id, &body)
}

/// Decode a [`Opcode::ChunkEnd`] body.
pub fn decode_chunk_end(payload: &[u8]) -> Result<ChunkEnd, WireError> {
    let mut r = Rd::new(payload);
    let objects = r.u32()?;
    let total_bytes = r.u64()?;
    r.done()?;
    Ok(ChunkEnd {
        objects,
        total_bytes,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Store one object in the staging space.
    Put(DataObject),
    /// Objects under `(name, version)`, optionally clipped to a query box.
    Get {
        /// Variable name.
        name: String,
        /// Version (simulation step).
        version: u64,
        /// Optional spatial filter.
        query: Option<IBox>,
    },
    /// Descriptors under `(name, version)` — metadata only.
    Query {
        /// Variable name.
        name: String,
        /// Version (simulation step).
        version: u64,
    },
    /// Evict versions of `name` older than `before_version`.
    Delete {
        /// Variable name.
        name: String,
        /// Versions `< before_version` are dropped.
        before_version: u64,
    },
    /// Fetch service statistics.
    Stats,
    /// Request a graceful service shutdown.
    Shutdown,
    /// Open a chunked put stream: the descriptor travels now, the payload
    /// follows in `ChunkData` sub-frames under the same request id.
    PutChunked {
        /// Descriptor of the object being streamed (carries total length).
        desc: ObjectDesc,
        /// Proposed sub-frame size; both sides clamp it with
        /// [`clamp_chunk_size`].
        chunk_size: u32,
    },
    /// Fetch objects as a chunked stream.
    GetChunked {
        /// Variable name.
        name: String,
        /// Version (simulation step).
        version: u64,
        /// Optional spatial filter.
        query: Option<IBox>,
        /// Proposed sub-frame size; the service clamps it and echoes the
        /// effective size in `GetChunkedOk`.
        chunk_size: u32,
    },
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Put(_) => Opcode::Put,
            Request::Get { .. } => Opcode::Get,
            Request::Query { .. } => Opcode::Query,
            Request::Delete { .. } => Opcode::Delete,
            Request::Stats => Opcode::Stats,
            Request::Shutdown => Opcode::Shutdown,
            Request::PutChunked { .. } => Opcode::PutChunked,
            Request::GetChunked { .. } => Opcode::GetChunked,
        }
    }

    /// Encode the body (everything after the header) into `out`, which is
    /// cleared first. Split from [`Request::encode`] so send paths can fill
    /// a pooled scratch buffer and write header + body vectored.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        out.clear();
        let mut w = Wr {
            buf: std::mem::take(out),
        };
        match self {
            Request::Put(obj) => w.object(obj),
            Request::Get {
                name,
                version,
                query,
            } => {
                w.string(name);
                w.u64(*version);
                w.opt_ibox(query.as_ref());
            }
            Request::Query { name, version } => {
                w.string(name);
                w.u64(*version);
            }
            Request::Delete {
                name,
                before_version,
            } => {
                w.string(name);
                w.u64(*before_version);
            }
            Request::Stats | Request::Shutdown => {}
            Request::PutChunked { desc, chunk_size } => {
                w.desc(desc);
                w.u32(*chunk_size);
            }
            Request::GetChunked {
                name,
                version,
                query,
                chunk_size,
            } => {
                w.string(name);
                w.u64(*version);
                w.opt_ibox(query.as_ref());
                w.u32(*chunk_size);
            }
        }
        *out = w.buf;
    }

    /// Encode into a complete frame under `request_id`.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        encode_frame(self.opcode(), request_id, &body)
    }

    /// Decode a request body from its opcode and verified payload bytes.
    pub fn decode_body(opcode: Opcode, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Rd::new(payload);
        let req = match opcode {
            Opcode::Put => Request::Put(r.object()?),
            Opcode::Get => Request::Get {
                name: r.string()?,
                version: r.u64()?,
                query: r.opt_ibox()?,
            },
            Opcode::Query => Request::Query {
                name: r.string()?,
                version: r.u64()?,
            },
            Opcode::Delete => Request::Delete {
                name: r.string()?,
                before_version: r.u64()?,
            },
            Opcode::Stats => Request::Stats,
            Opcode::Shutdown => Request::Shutdown,
            Opcode::PutChunked => Request::PutChunked {
                desc: r.desc()?,
                chunk_size: r.u32()?,
            },
            Opcode::GetChunked => Request::GetChunked {
                name: r.string()?,
                version: r.u64()?,
                query: r.opt_ibox()?,
                chunk_size: r.u32()?,
            },
            other => return Err(WireError::UnexpectedOpcode(other as u8)),
        };
        r.done()?;
        Ok(req)
    }

    /// Decode a request body from a verified frame.
    pub fn decode(frame: &Frame) -> Result<Request, WireError> {
        Request::decode_body(frame.opcode, &frame.payload)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of service counters, carried by the `Stats`
/// response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// `Put` requests served (including rejected ones).
    pub puts: u64,
    /// `Get` requests served.
    pub gets: u64,
    /// `Query` requests served.
    pub queries: u64,
    /// `Delete` requests served.
    pub deletes: u64,
    /// `Stats` requests served.
    pub stats_calls: u64,
    /// Frames that failed to decode (malformed requests).
    pub wire_errors: u64,
    /// Puts rejected because the staging space was out of memory.
    pub rejected_oom: u64,
    /// Connections accepted into the worker pool.
    pub conns_accepted: u64,
    /// Connections refused because the pool was full.
    pub conns_refused: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Bytes resident in the staging space.
    pub used: u64,
    /// Total staging capacity in bytes.
    pub capacity: u64,
    /// Wire-buffer acquisitions satisfied from the service's buffer pool.
    pub pool_hits: u64,
    /// Wire-buffer acquisitions that had to allocate fresh memory.
    pub pool_misses: u64,
    /// Pooled buffers currently checked out by service workers.
    pub pool_outstanding: u64,
    /// Objects demoted to the disk tier.
    pub tier_spilled: u64,
    /// Objects promoted from the disk tier back into memory.
    pub tier_promoted: u64,
    /// Live payload bytes currently on the disk tier.
    pub tier_disk_used: u64,
    /// Gets answered (at least partly) from the disk tier.
    pub tier_disk_hits: u64,
    /// Configured disk-tier capacity in bytes, summed across servers
    /// (`u64::MAX`-saturating; 0 when no tier is attached).
    pub tier_disk_budget: u64,
    /// Disk bytes still free under the budget (`budget - used`,
    /// saturating) — the headroom a placement policy steers by.
    pub tier_disk_headroom: u64,
    /// Chunked-get streams whose per-chunk sums came from the chunk-sum
    /// cache.
    pub chunksum_hits: u64,
    /// Chunked-get streams that had to recompute per-chunk sums.
    pub chunksum_misses: u64,
    /// `Busy` error frames actually written to refused peers (wire
    /// version 4; load generators reconcile this against client-side
    /// Busy-retry counts).
    pub busy_frames: u64,
}

/// A typed error response. `OutOfMemory` mirrors
/// [`xlayer_staging::StagingError`] so the memory-pressure policy signal
/// crosses the wire intact; the others are transport/service conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorFrame {
    /// The staging space rejected a put (paper Eq. 10's memory cap). This
    /// is a policy signal — clients must NOT retry it.
    OutOfMemory {
        /// Space capacity in bytes.
        cap: u64,
        /// Bytes already resident.
        used: u64,
        /// Size of the rejected object.
        requested: u64,
    },
    /// The request could not be decoded or was not legal.
    BadRequest {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// The connection pool is full; try again later (clients may retry
    /// with backoff).
    Busy {
        /// Connections currently being served.
        active: u32,
        /// The configured pool bound.
        max: u32,
    },
    /// The service is shutting down and takes no new work.
    ShuttingDown,
    /// The tier policy asks the producer to coarsen the object by `factor`
    /// per axis and retry. Like `OutOfMemory`, this is a policy signal —
    /// clients must NOT retry it unchanged.
    NeedsReduction {
        /// Per-axis coarsening factor to apply before retrying.
        factor: u32,
    },
}

impl ErrorFrame {
    fn code(&self) -> u16 {
        match self {
            ErrorFrame::OutOfMemory { .. } => 1,
            ErrorFrame::BadRequest { .. } => 2,
            ErrorFrame::Busy { .. } => 3,
            ErrorFrame::ShuttingDown => 4,
            ErrorFrame::NeedsReduction { .. } => 5,
        }
    }
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorFrame::OutOfMemory {
                cap,
                used,
                requested,
            } => write!(
                f,
                "staging out of memory: cap {cap} B, used {used} B, requested {requested} B"
            ),
            ErrorFrame::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ErrorFrame::Busy { active, max } => {
                write!(f, "service busy: {active}/{max} connections")
            }
            ErrorFrame::ShuttingDown => write!(f, "service shutting down"),
            ErrorFrame::NeedsReduction { factor } => write!(
                f,
                "staging under pressure: downsample by {factor} per axis and retry"
            ),
        }
    }
}

/// A service response.
#[derive(Clone, Debug)]
pub enum Response {
    /// Put accepted; the shard (server index) the object landed on.
    PutOk {
        /// Index of the staging server that stored the object.
        shard: u32,
    },
    /// Matching objects, payloads included.
    GetOk(Vec<DataObject>),
    /// Matching descriptors.
    QueryOk(Vec<ObjectDesc>),
    /// Eviction done.
    DeleteOk {
        /// Bytes freed across all servers.
        bytes_freed: u64,
    },
    /// Service statistics.
    StatsOk(ServiceSnapshot),
    /// Shutdown acknowledged; the service stops accepting work.
    ShutdownOk,
    /// Chunked put assembled and stored; the shard it landed on.
    PutChunkedOk {
        /// Index of the staging server that stored the object.
        shard: u32,
    },
    /// Header of a chunked get stream: the matching descriptors and the
    /// effective (clamped) chunk size. `ChunkData`/`ChunkEnd` frames with
    /// the same request id follow immediately.
    GetChunkedOk {
        /// Descriptors of the objects about to be streamed, in stream
        /// (object-index) order.
        descs: Vec<ObjectDesc>,
        /// The chunk size the service will actually use.
        chunk_size: u32,
    },
    /// Typed failure.
    Error(ErrorFrame),
}

impl Response {
    /// The opcode this response travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Response::PutOk { .. } => Opcode::PutOk,
            Response::GetOk(_) => Opcode::GetOk,
            Response::QueryOk(_) => Opcode::QueryOk,
            Response::DeleteOk { .. } => Opcode::DeleteOk,
            Response::StatsOk(_) => Opcode::StatsOk,
            Response::ShutdownOk => Opcode::ShutdownOk,
            Response::PutChunkedOk { .. } => Opcode::PutChunkedOk,
            Response::GetChunkedOk { .. } => Opcode::GetChunkedOk,
            Response::Error(_) => Opcode::Error,
        }
    }

    /// Encode the body (everything after the header) into `out`, which is
    /// cleared first — the scratch-buffer counterpart of
    /// [`Response::encode`].
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        out.clear();
        let mut w = Wr {
            buf: std::mem::take(out),
        };
        match self {
            Response::PutOk { shard } => w.u32(*shard),
            Response::GetOk(objs) => {
                w.u32(objs.len() as u32);
                for o in objs {
                    w.object(o);
                }
            }
            Response::QueryOk(descs) => {
                w.u32(descs.len() as u32);
                for d in descs {
                    w.desc(d);
                }
            }
            Response::DeleteOk { bytes_freed } => w.u64(*bytes_freed),
            Response::StatsOk(s) => {
                for v in [
                    s.puts,
                    s.gets,
                    s.queries,
                    s.deletes,
                    s.stats_calls,
                    s.wire_errors,
                    s.rejected_oom,
                    s.conns_accepted,
                    s.conns_refused,
                    s.bytes_in,
                    s.bytes_out,
                    s.used,
                    s.capacity,
                    s.pool_hits,
                    s.pool_misses,
                    s.pool_outstanding,
                    s.tier_spilled,
                    s.tier_promoted,
                    s.tier_disk_used,
                    s.tier_disk_hits,
                    s.tier_disk_budget,
                    s.tier_disk_headroom,
                    s.chunksum_hits,
                    s.chunksum_misses,
                    s.busy_frames,
                ] {
                    w.u64(v);
                }
            }
            Response::ShutdownOk => {}
            Response::PutChunkedOk { shard } => w.u32(*shard),
            Response::GetChunkedOk { descs, chunk_size } => {
                w.u32(descs.len() as u32);
                for d in descs {
                    w.desc(d);
                }
                w.u32(*chunk_size);
            }
            Response::Error(e) => {
                w.u16(e.code());
                match e {
                    ErrorFrame::OutOfMemory {
                        cap,
                        used,
                        requested,
                    } => {
                        w.u64(*cap);
                        w.u64(*used);
                        w.u64(*requested);
                    }
                    ErrorFrame::BadRequest { detail } => w.string(detail),
                    ErrorFrame::Busy { active, max } => {
                        w.u32(*active);
                        w.u32(*max);
                    }
                    ErrorFrame::ShuttingDown => {}
                    ErrorFrame::NeedsReduction { factor } => w.u32(*factor),
                }
            }
        }
        *out = w.buf;
    }

    /// Encode into a complete frame echoing `request_id`.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        encode_frame(self.opcode(), request_id, &body)
    }

    /// Decode a response body from its opcode and verified payload bytes.
    pub fn decode_body(opcode: Opcode, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Rd::new(payload);
        let resp = match opcode {
            Opcode::PutOk => Response::PutOk { shard: r.u32()? },
            Opcode::GetOk => {
                let n = r.u32()? as usize;
                // Each object needs at least a descriptor; cap the
                // preallocation by what the payload could possibly hold.
                let mut objs = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
                for _ in 0..n {
                    objs.push(r.object()?);
                }
                Response::GetOk(objs)
            }
            Opcode::QueryOk => {
                let n = r.u32()? as usize;
                let mut descs = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
                for _ in 0..n {
                    descs.push(r.desc()?);
                }
                Response::QueryOk(descs)
            }
            Opcode::DeleteOk => Response::DeleteOk {
                bytes_freed: r.u64()?,
            },
            Opcode::StatsOk => Response::StatsOk(ServiceSnapshot {
                puts: r.u64()?,
                gets: r.u64()?,
                queries: r.u64()?,
                deletes: r.u64()?,
                stats_calls: r.u64()?,
                wire_errors: r.u64()?,
                rejected_oom: r.u64()?,
                conns_accepted: r.u64()?,
                conns_refused: r.u64()?,
                bytes_in: r.u64()?,
                bytes_out: r.u64()?,
                used: r.u64()?,
                capacity: r.u64()?,
                pool_hits: r.u64()?,
                pool_misses: r.u64()?,
                pool_outstanding: r.u64()?,
                tier_spilled: r.u64()?,
                tier_promoted: r.u64()?,
                tier_disk_used: r.u64()?,
                tier_disk_hits: r.u64()?,
                tier_disk_budget: r.u64()?,
                tier_disk_headroom: r.u64()?,
                chunksum_hits: r.u64()?,
                chunksum_misses: r.u64()?,
                busy_frames: r.u64()?,
            }),
            Opcode::ShutdownOk => Response::ShutdownOk,
            Opcode::PutChunkedOk => Response::PutChunkedOk { shard: r.u32()? },
            Opcode::GetChunkedOk => {
                let n = r.u32()? as usize;
                let mut descs = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
                for _ in 0..n {
                    descs.push(r.desc()?);
                }
                Response::GetChunkedOk {
                    descs,
                    chunk_size: r.u32()?,
                }
            }
            Opcode::Error => {
                let code = r.u16()?;
                let e = match code {
                    1 => ErrorFrame::OutOfMemory {
                        cap: r.u64()?,
                        used: r.u64()?,
                        requested: r.u64()?,
                    },
                    2 => ErrorFrame::BadRequest {
                        detail: r.string()?,
                    },
                    3 => ErrorFrame::Busy {
                        active: r.u32()?,
                        max: r.u32()?,
                    },
                    4 => ErrorFrame::ShuttingDown,
                    5 => ErrorFrame::NeedsReduction { factor: r.u32()? },
                    c => return Err(WireError::BadErrorCode(c)),
                };
                Response::Error(e)
            }
            other => return Err(WireError::UnexpectedOpcode(other as u8)),
        };
        r.done()?;
        Ok(resp)
    }

    /// Decode a response body from a verified frame.
    pub fn decode(frame: &Frame) -> Result<Response, WireError> {
        Response::decode_body(frame.opcode, &frame.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::fab::Fab;

    fn tiny_object() -> DataObject {
        // One cell at the origin holding the value 3.0.
        let b = IBox::cube(1);
        let fab = Fab::filled(b, 1, 3.0);
        DataObject::from_fab("r", 2, &fab, 0, &b, 1).with_dx(0.5)
    }

    fn decode_whole(buf: &[u8]) -> Frame {
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&buf[..HEADER_LEN]);
        let header = decode_header(&h).unwrap();
        let payload = buf[HEADER_LEN..].to_vec();
        assert_eq!(payload.len(), header.payload_len as usize);
        verify_payload(&header, &payload).unwrap();
        Frame {
            opcode: header.opcode,
            request_id: header.request_id,
            payload,
        }
    }

    // --- golden byte-level layout pins -------------------------------------

    #[test]
    fn golden_stats_request_bytes() {
        // The empty-payload frame is the header alone; every byte pinned.
        let buf = Request::Stats.encode(7);
        assert_eq!(
            buf,
            vec![
                b'X', b'L', b'N', b'T', // magic
                0x04, 0x00, // version 4 LE
                0x05, // opcode Stats
                0x00, // flags
                0x07, 0, 0, 0, 0, 0, 0, 0, // request id 7 LE
                0x00, 0x00, 0x00, 0x00, // payload length 0
                0xc5, 0x9d, 0x1c, 0x81, // FNV-1a-32 offset basis (empty payload)
            ]
        );
        assert_eq!(buf.len(), HEADER_LEN);
    }

    #[test]
    fn golden_delete_request_bytes() {
        let buf = Request::Delete {
            name: "rho".into(),
            before_version: 9,
        }
        .encode(1);
        let payload = [
            3, 0, 0, 0, // name length 3
            b'r', b'h', b'o', // name bytes
            9, 0, 0, 0, 0, 0, 0, 0, // before_version 9 LE
        ];
        let mut expect = vec![
            b'X', b'L', b'N', b'T', 0x04, 0x00, 0x04, 0x00, // magic, v4, Delete, flags
            0x01, 0, 0, 0, 0, 0, 0, 0, // request id 1
            15, 0, 0, 0, // payload length 15
        ];
        expect.extend_from_slice(&checksum(&payload).to_le_bytes());
        expect.extend_from_slice(&payload);
        assert_eq!(buf, expect);
    }

    #[test]
    fn golden_put_request_bytes() {
        let buf = Request::Put(tiny_object()).encode(3);
        // Body: name "r", version 2, bbox [0,0]^3, core [0,0]^3, dx 0.5,
        // bytes 8, origin_rank 1, payload = 3.0f64.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'r');
        body.extend_from_slice(&2u64.to_le_bytes());
        for _ in 0..2 {
            // bbox then core: lo = (0,0,0), hi = (0,0,0)
            for v in [0i64, 0, 0, 0, 0, 0] {
                body.extend_from_slice(&v.to_le_bytes());
            }
        }
        body.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        body.extend_from_slice(&8u64.to_le_bytes());
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&8u32.to_le_bytes());
        body.extend_from_slice(&3.0f64.to_le_bytes());
        let mut expect = vec![b'X', b'L', b'N', b'T', 0x04, 0x00, 0x01, 0x00];
        expect.extend_from_slice(&3u64.to_le_bytes());
        expect.extend_from_slice(&(body.len() as u32).to_le_bytes());
        expect.extend_from_slice(&checksum(&body).to_le_bytes());
        expect.extend_from_slice(&body);
        assert_eq!(buf, expect);
    }

    #[test]
    fn checksum_is_fnv1a32() {
        assert_eq!(checksum(b""), 0x811c9dc5);
        assert_eq!(checksum(b"a"), 0xe40c292c);
        assert_eq!(checksum(b"foobar"), 0xbf9cf968);
    }

    #[test]
    fn checksum_update_composes() {
        // Streaming over split buffers equals one pass over the
        // concatenation — the invariant the vectored send/receive paths
        // rely on.
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..=data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(checksum_update(checksum(a), b), checksum(data));
        }
    }

    // --- chunked stream sub-frames -----------------------------------------

    #[test]
    fn golden_chunk_data_bytes() {
        // Header + prefix of a chunk at offset 2^20 of object 1, with the
        // data bytes themselves vectored separately. Every byte pinned.
        let data = [0xAAu8, 0xBB, 0xCC];
        let (header, prefix) = chunk_data_parts(9, 1, 1 << 20, &data);
        let mut whole = Vec::new();
        whole.extend_from_slice(&prefix);
        whole.extend_from_slice(&data);
        let cks = checksum(&prefix) ^ checksum(&data);
        assert_eq!(
            header,
            [
                b'X',
                b'L',
                b'N',
                b'T', // magic
                0x04,
                0x00, // version 4 LE
                0x09, // opcode ChunkData
                0x00, // flags
                0x09,
                0,
                0,
                0,
                0,
                0,
                0,
                0, // request id 9 LE
                15,
                0,
                0,
                0, // payload length 12 + 3
                // checksum(prefix) XOR checksum(data)
                cks.to_le_bytes()[0],
                cks.to_le_bytes()[1],
                cks.to_le_bytes()[2],
                cks.to_le_bytes()[3],
            ]
        );
        // Supplying the data sum from a cache produces the identical frame.
        assert_eq!(
            chunk_data_parts_cached(9, 1, 1 << 20, checksum(&data), data.len()),
            (header, prefix)
        );
        assert_eq!(
            prefix,
            [
                0x01, 0, 0, 0, // object index 1 LE
                0, 0, 0x10, 0, 0, 0, 0, 0, // offset 2^20 LE
            ]
        );
        // The vectored parts reassemble into exactly what decode expects.
        let cd = decode_chunk_data(&whole).unwrap();
        assert_eq!(cd.index, 1);
        assert_eq!(cd.offset, 1 << 20);
        assert_eq!(cd.data, &data);
        let mut p = [0u8; CHUNK_PREFIX_LEN];
        p.copy_from_slice(&prefix);
        assert_eq!(decode_chunk_prefix(&p), (1, 1 << 20));
    }

    #[test]
    fn golden_chunk_end_bytes() {
        let buf = encode_chunk_end(
            4,
            ChunkEnd {
                objects: 2,
                total_bytes: 0x0102,
            },
        );
        let payload = [
            2, 0, 0, 0, // objects 2 LE
            0x02, 0x01, 0, 0, 0, 0, 0, 0, // total_bytes 0x0102 LE
        ];
        let mut expect = vec![
            b'X', b'L', b'N', b'T', 0x04, 0x00, 0x0A, 0x00, // magic, v4, ChunkEnd, flags
            0x04, 0, 0, 0, 0, 0, 0, 0, // request id 4
            12, 0, 0, 0, // payload length 12
        ];
        expect.extend_from_slice(&checksum(&payload).to_le_bytes());
        expect.extend_from_slice(&payload);
        assert_eq!(buf, expect);
        let end = decode_chunk_end(&payload).unwrap();
        assert_eq!(end.objects, 2);
        assert_eq!(end.total_bytes, 0x0102);
    }

    #[test]
    fn golden_put_chunked_request_bytes() {
        let obj = tiny_object();
        let buf = Request::PutChunked {
            desc: obj.desc.clone(),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
        .encode(6);
        // Body: desc (as in golden_put_request_bytes, without payload) +
        // chunk size.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'r');
        body.extend_from_slice(&2u64.to_le_bytes());
        for _ in 0..2 {
            for v in [0i64, 0, 0, 0, 0, 0] {
                body.extend_from_slice(&v.to_le_bytes());
            }
        }
        body.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        body.extend_from_slice(&8u64.to_le_bytes());
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&DEFAULT_CHUNK_SIZE.to_le_bytes());
        let mut expect = vec![b'X', b'L', b'N', b'T', 0x04, 0x00, 0x07, 0x00];
        expect.extend_from_slice(&6u64.to_le_bytes());
        expect.extend_from_slice(&(body.len() as u32).to_le_bytes());
        expect.extend_from_slice(&checksum(&body).to_le_bytes());
        expect.extend_from_slice(&body);
        assert_eq!(buf, expect);
    }

    #[test]
    fn chunked_request_roundtrips() {
        let obj = tiny_object();
        let frame = decode_whole(
            &Request::PutChunked {
                desc: obj.desc.clone(),
                chunk_size: 4096,
            }
            .encode(8),
        );
        match Request::decode(&frame).unwrap() {
            Request::PutChunked { desc, chunk_size } => {
                assert_eq!(desc, obj.desc);
                assert_eq!(chunk_size, 4096);
            }
            other => panic!("wrong request: {other:?}"),
        }
        for query in [None, Some(IBox::cube(2))] {
            let frame = decode_whole(
                &Request::GetChunked {
                    name: "field".into(),
                    version: 3,
                    query,
                    chunk_size: 1 << 16,
                }
                .encode(9),
            );
            match Request::decode(&frame).unwrap() {
                Request::GetChunked {
                    name,
                    version,
                    query: q,
                    chunk_size,
                } => {
                    assert_eq!(name, "field");
                    assert_eq!(version, 3);
                    assert_eq!(q, query);
                    assert_eq!(chunk_size, 1 << 16);
                }
                other => panic!("wrong request: {other:?}"),
            }
        }
    }

    #[test]
    fn put_frame_parts_matches_whole_encode() {
        let obj = tiny_object();
        let mut scratch = Vec::new();
        let header = put_frame_parts(&obj, 3, &mut scratch);
        let mut vectored = header.to_vec();
        vectored.extend_from_slice(&scratch);
        vectored.extend_from_slice(obj.payload.as_ref());
        assert_eq!(vectored, Request::Put(obj).encode(3));
    }

    #[test]
    fn chunk_size_negotiation_clamps() {
        assert_eq!(clamp_chunk_size(0), MIN_CHUNK_SIZE);
        assert_eq!(clamp_chunk_size(MIN_CHUNK_SIZE), MIN_CHUNK_SIZE);
        assert_eq!(clamp_chunk_size(DEFAULT_CHUNK_SIZE), DEFAULT_CHUNK_SIZE);
        assert_eq!(clamp_chunk_size(u32::MAX), MAX_CHUNK_SIZE);
    }

    #[test]
    fn chunk_stream_frames_not_legal_as_requests_or_responses() {
        for op in [Opcode::ChunkData, Opcode::ChunkEnd] {
            let frame = Frame {
                opcode: op,
                request_id: 0,
                payload: vec![0u8; CHUNK_PREFIX_LEN],
            };
            assert!(matches!(
                Request::decode(&frame),
                Err(WireError::UnexpectedOpcode(_))
            ));
            assert!(matches!(
                Response::decode(&frame),
                Err(WireError::UnexpectedOpcode(_))
            ));
        }
    }

    // --- roundtrips --------------------------------------------------------

    #[test]
    fn put_roundtrip_is_bit_exact() {
        let obj = tiny_object();
        let frame = decode_whole(&Request::Put(obj.clone()).encode(11));
        assert_eq!(frame.request_id, 11);
        match Request::decode(&frame).unwrap() {
            Request::Put(back) => {
                assert_eq!(back.desc, obj.desc);
                assert_eq!(back.payload.as_ref(), obj.payload.as_ref());
                assert_eq!(back.desc.dx.to_bits(), obj.desc.dx.to_bits());
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn get_request_roundtrip_with_and_without_query() {
        for query in [None, Some(IBox::cube(4))] {
            let frame = decode_whole(
                &Request::Get {
                    name: "field".into(),
                    version: 42,
                    query,
                }
                .encode(5),
            );
            match Request::decode(&frame).unwrap() {
                Request::Get {
                    name,
                    version,
                    query: q,
                } => {
                    assert_eq!(name, "field");
                    assert_eq!(version, 42);
                    assert_eq!(q, query);
                }
                other => panic!("wrong request: {other:?}"),
            }
        }
    }

    #[test]
    fn response_roundtrips() {
        let objs = vec![tiny_object(), tiny_object()];
        let descs: Vec<ObjectDesc> = objs.iter().map(|o| o.desc.clone()).collect();
        let snap = ServiceSnapshot {
            puts: 1,
            gets: 2,
            queries: 3,
            deletes: 4,
            stats_calls: 5,
            wire_errors: 6,
            rejected_oom: 7,
            conns_accepted: 8,
            conns_refused: 9,
            bytes_in: 10,
            bytes_out: 11,
            used: 12,
            capacity: 13,
            pool_hits: 14,
            pool_misses: 15,
            pool_outstanding: 16,
            tier_spilled: 17,
            tier_promoted: 18,
            tier_disk_used: 19,
            tier_disk_hits: 20,
            tier_disk_budget: 21,
            tier_disk_headroom: 22,
            chunksum_hits: 23,
            chunksum_misses: 24,
            busy_frames: 25,
        };
        let cases: Vec<Response> = vec![
            Response::PutOk { shard: 3 },
            Response::GetOk(objs),
            Response::QueryOk(descs.clone()),
            Response::DeleteOk { bytes_freed: 512 },
            Response::StatsOk(snap),
            Response::ShutdownOk,
            Response::PutChunkedOk { shard: 1 },
            Response::GetChunkedOk {
                descs,
                chunk_size: DEFAULT_CHUNK_SIZE,
            },
            Response::Error(ErrorFrame::OutOfMemory {
                cap: 100,
                used: 90,
                requested: 20,
            }),
            Response::Error(ErrorFrame::BadRequest {
                detail: "nope".into(),
            }),
            Response::Error(ErrorFrame::Busy { active: 4, max: 4 }),
            Response::Error(ErrorFrame::ShuttingDown),
            Response::Error(ErrorFrame::NeedsReduction { factor: 2 }),
        ];
        for resp in cases {
            let frame = decode_whole(&resp.encode(77));
            assert_eq!(frame.request_id, 77);
            let back = Response::decode(&frame).unwrap();
            match (&resp, &back) {
                (Response::PutOk { shard: a }, Response::PutOk { shard: b }) => assert_eq!(a, b),
                (Response::GetOk(a), Response::GetOk(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.desc, y.desc);
                        assert_eq!(x.payload.as_ref(), y.payload.as_ref());
                    }
                }
                (Response::QueryOk(a), Response::QueryOk(b)) => assert_eq!(a, b),
                (Response::DeleteOk { bytes_freed: a }, Response::DeleteOk { bytes_freed: b }) => {
                    assert_eq!(a, b)
                }
                (Response::StatsOk(a), Response::StatsOk(b)) => assert_eq!(a, b),
                (Response::ShutdownOk, Response::ShutdownOk) => {}
                (Response::PutChunkedOk { shard: a }, Response::PutChunkedOk { shard: b }) => {
                    assert_eq!(a, b)
                }
                (
                    Response::GetChunkedOk {
                        descs: a,
                        chunk_size: ca,
                    },
                    Response::GetChunkedOk {
                        descs: b,
                        chunk_size: cb,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(ca, cb);
                }
                (Response::Error(a), Response::Error(b)) => assert_eq!(a, b),
                (a, b) => panic!("mismatched roundtrip: {a:?} vs {b:?}"),
            }
        }
    }

    // --- malformed input ---------------------------------------------------

    #[test]
    fn bad_magic_version_opcode_flags() {
        let good = Request::Stats.encode(0);
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&good[..HEADER_LEN]);

        let mut bad = h;
        bad[0] = b'Y';
        assert!(matches!(decode_header(&bad), Err(WireError::BadMagic(_))));

        let mut bad = h;
        bad[4] = 9;
        assert_eq!(decode_header(&bad), Err(WireError::BadVersion(9)));

        let mut bad = h;
        bad[6] = 0x55;
        assert_eq!(decode_header(&bad), Err(WireError::BadOpcode(0x55)));

        let mut bad = h;
        bad[7] = 1;
        assert_eq!(decode_header(&bad), Err(WireError::BadFlags(1)));
    }

    #[test]
    fn oversize_payload_rejected_before_allocation() {
        let good = Request::Stats.encode(0);
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&good[..HEADER_LEN]);
        h[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(decode_header(&h), Err(WireError::Oversize(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let buf = Request::Delete {
            name: "rho".into(),
            before_version: 1,
        }
        .encode(0);
        let mut h = [0u8; HEADER_LEN];
        h.copy_from_slice(&buf[..HEADER_LEN]);
        let header = decode_header(&h).unwrap();
        let mut payload = buf[HEADER_LEN..].to_vec();
        payload[0] ^= 0xFF;
        assert!(matches!(
            verify_payload(&header, &payload),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_and_trailing_bodies_rejected() {
        let obj = tiny_object();
        let full = Request::Put(obj).encode(0);
        let frame = decode_whole(&full);
        // Truncate the body at every prefix: must error, never panic.
        for cut in 0..frame.payload.len() {
            let t = Frame {
                opcode: Opcode::Put,
                request_id: 0,
                payload: frame.payload[..cut].to_vec(),
            };
            assert!(Request::decode(&t).is_err(), "prefix {cut} decoded");
        }
        // Trailing garbage after a valid body is also an error.
        let mut p = frame.payload.clone();
        p.push(0);
        let t = Frame {
            opcode: Opcode::Put,
            request_id: 0,
            payload: p,
        };
        match Request::decode(&t) {
            Err(WireError::TrailingBytes(1)) => {}
            other => panic!("expected TrailingBytes(1), got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_object_rejected() {
        // Declare 16 payload bytes for a 1-cell (8-byte) bbox.
        let obj = tiny_object();
        let mut w = Wr::default();
        let mut desc = obj.desc.clone();
        desc.bytes = 16;
        w.desc(&desc);
        w.bytes(&[0u8; 16]);
        let frame = Frame {
            opcode: Opcode::Put,
            request_id: 0,
            payload: w.buf,
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(WireError::InconsistentObject)
        ));
    }

    #[test]
    fn response_opcode_in_request_position_rejected() {
        let frame = Frame {
            opcode: Opcode::PutOk,
            request_id: 0,
            payload: Vec::new(),
        };
        assert!(matches!(
            Request::decode(&frame),
            Err(WireError::UnexpectedOpcode(0x81))
        ));
        let frame = Frame {
            opcode: Opcode::Put,
            request_id: 0,
            payload: Vec::new(),
        };
        assert!(Response::decode(&frame).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder() {
        // A cheap deterministic fuzz: feed pseudo-random bodies to every
        // decoder entry point.
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for len in 0..200usize {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 56) as u8;
            }
            if len >= HEADER_LEN {
                let mut h = [0u8; HEADER_LEN];
                h.copy_from_slice(&buf[..HEADER_LEN]);
                let _ = decode_header(&h);
            }
            for op in [
                Opcode::Put,
                Opcode::Get,
                Opcode::GetOk,
                Opcode::StatsOk,
                Opcode::Error,
                Opcode::PutChunked,
                Opcode::GetChunked,
                Opcode::ChunkData,
                Opcode::ChunkEnd,
                Opcode::PutChunkedOk,
                Opcode::GetChunkedOk,
            ] {
                let frame = Frame {
                    opcode: op,
                    request_id: 0,
                    payload: buf.clone(),
                };
                let _ = Request::decode(&frame);
                let _ = Response::decode(&frame);
            }
            let _ = decode_chunk_data(&buf);
            let _ = decode_chunk_end(&buf);
            if len >= CHUNK_PREFIX_LEN {
                let mut p = [0u8; CHUNK_PREFIX_LEN];
                p.copy_from_slice(&buf[..CHUNK_PREFIX_LEN]);
                let _ = decode_chunk_prefix(&p);
            }
        }
    }
}
