//! Micro-benchmarks of the later substrate additions: flux registers,
//! descriptive statistics, plotfile I/O and pub/sub dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use xlayer_amr::hierarchy::{AmrHierarchy, HierarchyConfig};
use xlayer_amr::layout::Grid;
use xlayer_amr::plotfile::{read_plotfile, write_plotfile};
use xlayer_amr::tagging::IntVectSet;
use xlayer_amr::{BoxLayout, Fab, FluxRegister, IBox, IntVect, ProblemDomain};
use xlayer_staging::{DataObject, DataSpace, PubSubSpace, Sharding};
use xlayer_viz::stats::{subset, BlockStats, Histogram};

fn hierarchy_2level() -> AmrHierarchy {
    let dom = ProblemDomain::periodic(IBox::cube(16));
    let mut h = AmrHierarchy::new(
        dom,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
    );
    h.level_mut(0).fill(1.0);
    let mut tags = IntVectSet::new();
    tags.insert_box(&IBox::new(IntVect::splat(6), IntVect::splat(9)));
    h.regrid(&[tags]);
    h
}

fn bench_extras(c: &mut Criterion) {
    c.bench_function("flux_register_build", |b| {
        let layout = BoxLayout::new(
            vec![Grid {
                bx: IBox::new(IntVect::splat(8), IntVect::splat(23)),
                rank: 0,
            }],
            1,
        );
        b.iter(|| FluxRegister::new(&layout, 2, 5))
    });

    c.bench_function("flux_register_cycle", |b| {
        let layout = BoxLayout::new(
            vec![Grid {
                bx: IBox::new(IntVect::splat(8), IntVect::splat(23)),
                rank: 0,
            }],
            1,
        );
        let mut reg = FluxRegister::new(&layout, 2, 1);
        let cflux = Fab::filled(IBox::cube(33), 1, 1.0);
        let fflux = Fab::filled(IBox::cube(34).grow(2), 1, 1.0);
        let domain = ProblemDomain::new(IBox::cube(16));
        let coarse_layout = BoxLayout::decompose(&domain, 16, 1);
        let mut coarse = xlayer_amr::LevelData::new(coarse_layout, domain, 1, 0);
        b.iter(|| {
            reg.set_to_zero();
            for d in 0..3 {
                reg.increment_coarse(&cflux, d);
                reg.increment_fine(&fflux, d);
            }
            reg.reflux(&mut coarse, 0.1);
        })
    });

    c.bench_function("block_stats_32c", |b| {
        let fab = Fab::filled(IBox::cube(32), 1, 1.5);
        b.iter(|| BlockStats::compute(&fab, 0, &IBox::cube(32)))
    });

    c.bench_function("histogram_32c_256bins", |b| {
        let mut fab = Fab::new(IBox::cube(32), 1);
        for iv in IBox::cube(32).cells() {
            fab.set(iv, 0, ((iv[0] * 7 + iv[1] * 3 + iv[2]) % 97) as f64);
        }
        b.iter(|| Histogram::compute(&fab, 0, &IBox::cube(32), 0.0, 97.0, 256))
    });

    c.bench_function("subset_query_32c", |b| {
        let mut fab = Fab::new(IBox::cube(32), 1);
        for iv in IBox::cube(32).cells() {
            fab.set(iv, 0, (iv[0] + iv[1] + iv[2]) as f64);
        }
        b.iter(|| subset(&fab, 0, &IBox::cube(32), 40.0, 50.0))
    });

    c.bench_function("plotfile_write_2level", |b| {
        let h = hierarchy_2level();
        let mut buf = Vec::with_capacity(1 << 22);
        b.iter(|| {
            buf.clear();
            write_plotfile(&mut buf, &h, 1, 0.5).expect("write")
        })
    });

    c.bench_function("plotfile_read_2level", |b| {
        let h = hierarchy_2level();
        let mut buf = Vec::new();
        write_plotfile(&mut buf, &h, 1, 0.5).expect("write");
        b.iter(|| read_plotfile(&mut buf.as_slice()).expect("read"))
    });

    c.bench_function("compress_smooth_32c", |b| {
        let bx = IBox::cube(32);
        let mut fab = Fab::new(bx, 1);
        for iv in bx.cells() {
            fab.set(
                iv,
                0,
                (iv[0] as f64 * 0.2).sin() + (iv[1] as f64 * 0.1).cos(),
            );
        }
        b.iter(|| xlayer_viz::compress_fab(&fab, 0, &bx, 1e-4))
    });

    c.bench_function("decompress_smooth_32c", |b| {
        let bx = IBox::cube(32);
        let mut fab = Fab::new(bx, 1);
        for iv in bx.cells() {
            fab.set(
                iv,
                0,
                (iv[0] as f64 * 0.2).sin() + (iv[1] as f64 * 0.1).cos(),
            );
        }
        let c2 = xlayer_viz::compress_fab(&fab, 0, &bx, 1e-4);
        b.iter(|| xlayer_viz::decompress(&c2).expect("decode"))
    });

    c.bench_function("bucket_index_query_256obj", |b| {
        let mut idx = xlayer_staging::BucketIndex::new(16);
        for i in 0..256i64 {
            idx.insert(IBox::cube(8).shift(IntVect::new((i % 16) * 8, (i / 16) * 8, 0)));
        }
        let probe = IBox::new(IntVect::new(40, 40, 0), IntVect::new(80, 80, 7));
        b.iter(|| idx.query(&probe))
    });

    c.bench_function("pubsub_publish_8subs", |b| {
        let ps = PubSubSpace::new(Arc::new(DataSpace::new(
            4,
            u64::MAX / 8,
            Sharding::BboxHash,
        )));
        let subs: Vec<_> = (0..8).map(|_| ps.subscribe("u", None)).collect();
        let bx = IBox::cube(8);
        let fab = Fab::filled(bx, 1, 1.0);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            let obj = DataObject::from_fab("u", v, &fab, 0, &bx, 0);
            let n = ps.publish(obj).expect("publish");
            for s in &subs {
                let _ = s.rx.try_recv();
            }
            n
        })
    });
}

criterion_group!(benches, bench_extras);
criterion_main!(benches);
