//! The application-layer reduction operators: per-block entropy (Eq. 11)
//! and factor-X down-sampling (`f_data_reduce`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xlayer_amr::{Fab, IBox};
use xlayer_viz::downsample::{downsample_fab, downsample_region, downsample_region_reference};
use xlayer_viz::entropy::{block_entropy, block_entropy_reference, block_entropy_scratch};

fn noisy_fab(n: i64) -> Fab {
    let b = IBox::cube(n);
    let mut f = Fab::new(b, 1);
    let mut state: u64 = 42;
    for iv in b.cells() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        f.set(iv, 0, (state >> 33) as f64 / (1u64 << 31) as f64);
    }
    f
}

fn bench_reduction(c: &mut Criterion) {
    let fab = noisy_fab(32);
    let region = IBox::cube(32);

    let mut group = c.benchmark_group("entropy");
    for bins in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, &bins| {
            b.iter(|| block_entropy(&fab, 0, &region, bins))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("downsample_32c");
    for x in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(x), &x, |b, &x| {
            b.iter(|| downsample_fab(&fab, 0, x))
        });
    }
    group.finish();

    // Flat strided-row kernels vs the per-cell references at 64³ — the
    // acceptance measurement for the allocation-free analysis data path.
    let fab = noisy_fab(64);
    let region = IBox::cube(64);

    let mut group = c.benchmark_group("downsample_64c_x4");
    group.bench_function("flat", |b| {
        b.iter(|| downsample_region(&fab, 0, &region, 4))
    });
    group.bench_function("reference", |b| {
        b.iter(|| downsample_region_reference(&fab, 0, &region, 4))
    });
    group.finish();

    let mut group = c.benchmark_group("entropy_64c_256bins");
    group.bench_function("flat", |b| b.iter(|| block_entropy(&fab, 0, &region, 256)));
    group.bench_function("flat_scratch", |b| {
        let mut hist = Vec::new();
        b.iter(|| block_entropy_scratch(&fab, 0, &region, 256, &mut hist))
    });
    group.bench_function("reference", |b| {
        b.iter(|| block_entropy_reference(&fab, 0, &region, 256))
    });
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
