//! Staging-substrate operations: put/get/query/assembly over the sharded
//! space — the per-object costs the staging servers pay per time step.

use criterion::{criterion_group, criterion_main, Criterion};
use xlayer_amr::{Fab, IBox, IntVect};
use xlayer_staging::{DataObject, DataSpace, Sharding};

fn obj(version: u64, lo: i64, n: i64) -> DataObject {
    let b = IBox::cube(n).shift(IntVect::splat(lo));
    let fab = Fab::filled(b, 1, 1.0);
    DataObject::from_fab("rho", version, &fab, 0, &b, 0)
}

fn bench_staging(c: &mut Criterion) {
    c.bench_function("object_pack_16c", |b| {
        let bx = IBox::cube(16);
        let fab = Fab::filled(bx, 1, 1.0);
        b.iter(|| DataObject::from_fab("rho", 1, &fab, 0, &bx, 0))
    });

    c.bench_function("object_unpack_16c", |b| {
        let o = obj(1, 0, 16);
        b.iter(|| o.to_fab())
    });

    c.bench_function("space_put_bboxhash", |b| {
        let space = DataSpace::new(8, u64::MAX / 16, Sharding::BboxHash);
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            space.put(obj(v, (v as i64 % 64) * 8, 8)).expect("put")
        })
    });

    c.bench_function("space_get_region_64obj", |b| {
        let space = DataSpace::new(8, u64::MAX / 16, Sharding::BboxHash);
        for i in 0..64i64 {
            space.put(obj(1, i * 8, 8)).expect("put");
        }
        let query = IBox::new(IntVect::splat(100), IntVect::splat(180));
        b.iter(|| space.get_region("rho", 1, &query))
    });

    c.bench_function("space_describe_64obj", |b| {
        let space = DataSpace::new(8, u64::MAX / 16, Sharding::BboxHash);
        for i in 0..64i64 {
            space.put(obj(1, i * 8, 8)).expect("put");
        }
        b.iter(|| space.describe("rho", 1))
    });
}

criterion_group!(benches, bench_staging);
criterion_main!(benches);
