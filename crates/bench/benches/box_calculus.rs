//! Micro-benchmarks of the box calculus — the hot path of ghost-exchange
//! planning, clustering and regridding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xlayer_amr::{IBox, IntVect};

fn bench_box_ops(c: &mut Criterion) {
    let a = IBox::new(IntVect::new(-10, -10, -10), IntVect::new(21, 21, 21));
    let b = IBox::new(IntVect::new(5, 5, 5), IntVect::new(40, 40, 40));

    c.bench_function("box_intersect", |bench| {
        bench.iter(|| black_box(a).intersect(&black_box(b)))
    });

    c.bench_function("box_subtract", |bench| {
        bench.iter(|| black_box(a).subtract(&black_box(b)))
    });

    c.bench_function("box_refine_coarsen", |bench| {
        bench.iter(|| black_box(a).refine(black_box(4)).coarsen(black_box(4)))
    });

    c.bench_function("box_cells_iterate_32k", |bench| {
        let big = IBox::cube(32);
        bench.iter(|| {
            let mut acc = 0i64;
            for iv in black_box(big).cells() {
                acc += iv[0];
            }
            acc
        })
    });

    c.bench_function("box_offsets_32k", |bench| {
        let big = IBox::cube(32);
        bench.iter(|| {
            let mut acc = 0usize;
            for iv in big.cells() {
                acc = acc.wrapping_add(big.offset(black_box(iv)));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_box_ops);
criterion_main!(benches);
