//! Solver kernels: one level step of the two workloads, plus the HLLC
//! Riemann solve itself — the numbers behind `KernelCosts`' relative
//! magnitudes (Euler ≫ advection per cell).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;
use xlayer_amr::IBox;
use xlayer_solvers::euler::{hllc_flux, EulerSolver, Primitive};
use xlayer_solvers::{scratch, AdvectDiffuseSolver, LevelSolver, VelocityField};

fn euler_level_32c_64box() -> (EulerSolver, LevelData) {
    let solver = EulerSolver::default();
    let domain = ProblemDomain::periodic(IBox::cube(32));
    let layout = BoxLayout::decompose(&domain, 8, 4);
    let mut ld = LevelData::new(layout, domain, solver.ncomp(), solver.nghost());
    ld.for_each_mut(|vb, fab| {
        for iv in vb.cells() {
            let w = Primitive {
                rho: 1.0 + 0.1 * ((iv[0] + iv[1]) % 5) as f64,
                vel: [0.2, 0.0, 0.0],
                p: 1.0,
            };
            EulerSolver::set_state(fab, iv, w.to_conserved(1.4));
        }
    });
    (solver, ld)
}

fn bench_solvers(c: &mut Criterion) {
    let n = 24i64;

    c.bench_function("hllc_flux", |b| {
        let l = Primitive {
            rho: 1.0,
            vel: [0.4, -0.1, 0.2],
            p: 1.0,
        };
        let r = Primitive {
            rho: 0.5,
            vel: [-0.3, 0.2, 0.0],
            p: 0.4,
        };
        b.iter(|| hllc_flux(black_box(l), black_box(r), 0, 1.4))
    });

    c.bench_function("euler_level_step_24c", |b| {
        let solver = EulerSolver::default();
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, n, 1);
        let mut ld = LevelData::new(layout, domain, solver.ncomp(), solver.nghost());
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                let w = Primitive {
                    rho: 1.0 + 0.1 * ((iv[0] + iv[1]) % 5) as f64,
                    vel: [0.2, 0.0, 0.0],
                    p: 1.0,
                };
                EulerSolver::set_state(fab, iv, w.to_conserved(1.4));
            }
        });
        ld.exchange();
        b.iter(|| solver.advance_level(&mut ld, 1.0, 0.05))
    });

    c.bench_function("advect_level_step_24c", |b| {
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.01, n);
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, n, 1);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                fab.set(iv, 0, ((iv[0] * iv[1]) % 7) as f64);
            }
        });
        ld.exchange();
        b.iter(|| solver.advance_level(&mut ld, 1.0, 0.05))
    });

    // Multi-grid periodic cases: 32³ in 8³ boxes is a 64-grid level, the
    // shape where the cached exchange schedule and the per-worker scratch
    // pool both engage. One iteration is a full level step: ghost exchange
    // plus the sweep.
    c.bench_function("euler_level_step_32c_64box_periodic", |b| {
        let (solver, mut ld) = euler_level_32c_64box();
        b.iter(|| {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.05)
        })
    });

    // The sweep-structured kernel vs the per-cell reference on one
    // ghost-filled 8³ grid: the isolated cost of cached primitives, slopes,
    // and predicted face states vs re-deriving them per face. Flux fabs go
    // back through the scratch pool, as in the real level step.
    c.bench_function("euler_sweep_kernel_32c_64box", |b| {
        let (solver, mut ld) = euler_level_32c_64box();
        ld.exchange();
        let valid = ld.valid_box(0);
        let old = ld.fab(0).clone();
        b.iter(|| {
            for f in solver.grid_fluxes(black_box(&old), &valid, 0.05, solver.gamma) {
                scratch::recycle_fab(f);
            }
        })
    });

    c.bench_function("euler_reference_kernel_32c_64box", |b| {
        let (solver, mut ld) = euler_level_32c_64box();
        ld.exchange();
        let valid = ld.valid_box(0);
        let old = ld.fab(0).clone();
        b.iter(|| {
            for f in solver.grid_fluxes_reference(black_box(&old), &valid, 0.05, solver.gamma) {
                scratch::recycle_fab(f);
            }
        })
    });

    // The refluxing variant: same sweep, but every grid's flux fabs are
    // collected (in grid order) for coarse–fine flux correction.
    c.bench_function("euler_capture_level_step_32c_64box_periodic", |b| {
        let (solver, mut ld) = euler_level_32c_64box();
        b.iter(|| {
            ld.exchange();
            solver.advance_level_capture(&mut ld, 1.0, 0.05)
        })
    });

    c.bench_function("euler_max_wave_speed_32c_64box_periodic", |b| {
        let (solver, ld) = euler_level_32c_64box();
        b.iter(|| solver.max_wave_speed(&ld))
    });

    c.bench_function("advect_level_step_32c_64box_periodic", |b| {
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.01, 32);
        let domain = ProblemDomain::periodic(IBox::cube(32));
        let layout = BoxLayout::decompose(&domain, 8, 4);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                fab.set(iv, 0, ((iv[0] * iv[1]) % 7) as f64);
            }
        });
        b.iter(|| {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.05)
        })
    });

    c.bench_function("euler_max_wave_speed_24c", |b| {
        let solver = EulerSolver::default();
        let domain = ProblemDomain::periodic(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, n, 1);
        let mut ld = LevelData::new(layout, domain, solver.ncomp(), solver.nghost());
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                EulerSolver::set_state(
                    fab,
                    iv,
                    Primitive {
                        rho: 1.0,
                        vel: [0.1, 0.0, 0.0],
                        p: 1.0,
                    }
                    .to_conserved(1.4),
                );
            }
        });
        b.iter(|| solver.max_wave_speed(&ld))
    });
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
