//! Adaptation-policy evaluation cost: the paper requires policies that
//! "can be efficiently and scalably implemented at runtime on very large
//! scale systems" (§4) — these must be microseconds, not milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use xlayer_core::policy::{app, middleware, resource};
use xlayer_core::{min_time_engine, EngineConfig, Estimator, OperationalState, UserHints};
use xlayer_platform::{CostModel, MachineSpec};

fn state() -> OperationalState {
    OperationalState {
        step: 17,
        now: 500.0,
        data_bytes: 8 << 30,
        cells: (8u64 << 30) / 8,
        surface_cells: (8u64 << 30) / 80,
        last_sim_time: 42.0,
        intransit_busy_until: 510.0,
        sim_cores: 16384,
        staging_cores: 1024,
        staging_cores_max: 1024,
        mem_available_insitu: 1 << 28,
        mem_available_intransit: 1 << 40,
        ..Default::default()
    }
}

fn bench_policies(c: &mut Criterion) {
    let est = Estimator::new(CostModel::new(MachineSpec::titan()));
    let s = state();

    c.bench_function("policy_app_select_factor", |b| {
        b.iter(|| app::select_factor(8 << 30, &[2, 4, 8, 16], 1 << 28))
    });

    c.bench_function("policy_middleware_placement", |b| {
        b.iter(|| middleware::decide_placement(&est, &s, s.data_bytes, s.cells, s.surface_cells))
    });

    c.bench_function("policy_resource_allocation", |b| {
        b.iter(|| {
            resource::select_staging_cores(
                &est,
                s.data_bytes,
                s.cells,
                s.surface_cells,
                s.last_sim_time,
                s.sim_cores,
                s.staging_cores_max,
            )
        })
    });

    c.bench_function("engine_adapt_global", |b| {
        let engine = min_time_engine(
            UserHints::paper_fig5_schedule(20),
            EngineConfig::global(),
            Estimator::new(CostModel::new(MachineSpec::titan())),
        );
        b.iter(|| engine.adapt(&s))
    });
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
