//! The visualization service's extraction kernel: cost scales with cells
//! scanned plus surface crossed (the `analysis_time_surface` model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xlayer_amr::{Fab, IBox, IntVect};
use xlayer_viz::{extract_block, TriMesh};

fn sphere_fab(n: i64) -> Fab {
    let b = IBox::cube(n);
    let mut f = Fab::new(b, 1);
    let c = n as f64 / 2.0;
    for iv in b.cells() {
        let r = ((iv[0] as f64 + 0.5 - c).powi(2)
            + (iv[1] as f64 + 0.5 - c).powi(2)
            + (iv[2] as f64 + 0.5 - c).powi(2))
        .sqrt();
        f.set(iv, 0, r);
    }
    f
}

fn bench_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("marching_cubes");
    for n in [16i64, 32] {
        let fab = sphere_fab(n);
        let region = IBox::cube(n);
        // Surface work: isovalue inside the volume.
        group.bench_with_input(BenchmarkId::new("sphere", n), &n, |b, &n| {
            b.iter(|| extract_block(&fab, 0, &region, n as f64 / 3.0, 1.0, [0.0; 3]))
        });
        // Scan-only: isovalue outside → quick-reject path.
        group.bench_with_input(BenchmarkId::new("scan_only", n), &n, |b, &n| {
            b.iter(|| extract_block(&fab, 0, &region, 10.0 * n as f64, 1.0, [0.0; 3]))
        });
    }
    group.finish();

    c.bench_function("weld_sphere_32", |b| {
        let fab = sphere_fab(32);
        let mesh = extract_block(&fab, 0, &IBox::cube(32), 10.0, 1.0, [0.0; 3]);
        b.iter(|| mesh.welded(1e-9))
    });

    // Merging per-grid surfaces into one level mesh: the parallel
    // prefix-sum concat vs the serial grow-and-append baseline.
    let fab = sphere_fab(32);
    let parts: Vec<TriMesh> = (0..4i64)
        .flat_map(|bz| (0..4i64).flat_map(move |by| (0..4i64).map(move |bx| (bx, by, bz))))
        .map(|(bx, by, bz)| {
            let lo = IntVect::new(bx * 8, by * 8, bz * 8);
            let region = IBox::new(lo, lo + IntVect::splat(7));
            extract_block(&fab, 0, &region, 10.0, 1.0, [0.0; 3])
        })
        .collect();
    let refs: Vec<&TriMesh> = parts.iter().collect();
    let mut group = c.benchmark_group("merge_64parts");
    group.bench_function("concat", |b| b.iter(|| TriMesh::concat(&refs)));
    group.bench_function("append", |b| {
        b.iter(|| {
            let mut total = TriMesh::new();
            for p in &parts {
                total.append(p);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
