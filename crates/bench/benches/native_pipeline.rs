//! End-to-end native workflow: solve + pack + stage + in-transit
//! extraction, comparing synchronous puts against the overlapped
//! (asynchronous back-pressured) staging pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_core::Placement;
use xlayer_solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, ScalarProblem, VelocityField,
};
use xlayer_workflow::{NativeConfig, NativeWorkflow};

fn blob_sim(n: i64) -> AmrSimulation<AdvectDiffuseSolver> {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

fn run_pipeline(overlap: bool, steps: usize) -> u64 {
    let mut wf = NativeWorkflow::new(
        blob_sim(16),
        NativeConfig {
            iso_value: 0.4,
            overlap_staging: overlap,
            placement_override: Some(Placement::InTransit),
            staging_servers: 1,
            workers: 1,
            ..Default::default()
        },
    );
    for _ in 0..steps {
        wf.step();
    }
    let (_, outcomes, moved) = wf.finish();
    assert_eq!(outcomes.len(), steps);
    moved
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_pipeline_16c_4steps");
    for overlap in [false, true] {
        let name = if overlap { "overlapped" } else { "sync" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &overlap, |b, &ov| {
            b.iter(|| run_pipeline(ov, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
