//! Ghost exchange over a multi-grid level — the communication pattern whose
//! cross-rank volume the platform model charges as network traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;
use xlayer_amr::IBox;

fn level(n: i64, max_box: i64, periodic: bool, nghost: i64) -> LevelData {
    let b = IBox::cube(n);
    let domain = if periodic {
        ProblemDomain::periodic(b)
    } else {
        ProblemDomain::new(b)
    };
    let layout = BoxLayout::decompose(&domain, max_box, 4);
    let mut ld = LevelData::new(layout, domain, 1, nghost);
    ld.fill(1.0);
    ld
}

fn bench_exchange(c: &mut Criterion) {
    c.bench_function("exchange_plan_32c_8box", |b| {
        let ld = level(32, 8, false, 1);
        b.iter(|| ld.exchange_plan())
    });

    c.bench_function("exchange_32c_8box_1ghost", |b| {
        let mut ld = level(32, 8, false, 1);
        b.iter(|| ld.exchange())
    });

    c.bench_function("exchange_32c_8box_periodic", |b| {
        let mut ld = level(32, 8, true, 1);
        b.iter(|| ld.exchange())
    });

    c.bench_function("exchange_32c_8box_2ghost", |b| {
        let mut ld = level(32, 8, false, 2);
        b.iter(|| ld.exchange())
    });

    // Multi-grid periodic layout: 32³ cut into 8³ boxes is a 64-grid level,
    // so the O(n_grids²) replanning dominates the uncached path. The
    // cached/uncached pair measures exactly what the ExchangeCopier buys;
    // `bench_summary` reports the same pair to BENCH_native_hotpath.json.
    c.bench_function("exchange_plan_32c_64box_periodic", |b| {
        let ld = level(32, 8, true, 2);
        b.iter(|| ld.exchange_plan())
    });

    c.bench_function("exchange_32c_64box_periodic_cached", |b| {
        let mut ld = level(32, 8, true, 2);
        b.iter(|| ld.exchange())
    });

    c.bench_function("exchange_32c_64box_periodic_uncached", |b| {
        let mut ld = level(32, 8, true, 2);
        b.iter(|| ld.exchange_uncached())
    });

    c.bench_function("exchange_64c_512box_periodic_cached", |b| {
        let mut ld = level(64, 8, true, 2);
        b.iter(|| ld.exchange())
    });

    c.bench_function("exchange_64c_512box_periodic_uncached", |b| {
        let mut ld = level(64, 8, true, 2);
        b.iter(|| ld.exchange_uncached())
    });
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
