//! Grid generation: Berger–Rigoutsos clustering and full-hierarchy regrid —
//! the cost the simulation pays at every refinement event.

use criterion::{criterion_group, criterion_main, Criterion};
use xlayer_amr::balance::{assign_ranks, Balancer};
use xlayer_amr::cluster::{cluster_tags, ClusterParams};
use xlayer_amr::hierarchy::{AmrHierarchy, HierarchyConfig};
use xlayer_amr::tagging::IntVectSet;
use xlayer_amr::{IBox, ProblemDomain};

fn shell_tags(n: i64, r: f64) -> IntVectSet {
    let c = n as f64 / 2.0;
    let mut tags = IntVectSet::new();
    for iv in IBox::cube(n).cells() {
        let d = ((iv[0] as f64 + 0.5 - c).powi(2)
            + (iv[1] as f64 + 0.5 - c).powi(2)
            + (iv[2] as f64 + 0.5 - c).powi(2))
        .sqrt();
        if (d - r).abs() < 1.0 {
            tags.insert(iv);
        }
    }
    tags
}

fn bench_cluster(c: &mut Criterion) {
    let tags = shell_tags(32, 10.0);
    let within = IBox::cube(32);

    c.bench_function("berger_rigoutsos_shell_32c", |b| {
        b.iter(|| cluster_tags(&tags, &within, &ClusterParams::default()))
    });

    let boxes = cluster_tags(&tags, &within, &ClusterParams::default());
    for bal in [
        Balancer::Knapsack,
        Balancer::MortonSfc,
        Balancer::RoundRobin,
    ] {
        c.bench_function(&format!("balance_{bal:?}"), |b| {
            b.iter(|| assign_ranks(&boxes, 64, bal))
        });
    }

    c.bench_function("hierarchy_regrid_2level", |b| {
        let dom = ProblemDomain::new(IBox::cube(32));
        let mut h = AmrHierarchy::new(
            dom,
            HierarchyConfig {
                max_levels: 2,
                base_max_box: 16,
                nranks: 8,
                ..Default::default()
            },
        );
        h.level_mut(0).fill(1.0);
        let tags = shell_tags(32, 10.0);
        b.iter(|| h.regrid(std::slice::from_ref(&tags)))
    });

    c.bench_function("tag_grow_buffer", |b| {
        let tags = shell_tags(32, 10.0);
        b.iter(|| tags.grow(1, &IBox::cube(32)))
    });
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
