//! # xlayer-bench — the experiment harness
//!
//! Shared machinery for the `figN_*` / `table2_*` experiment binaries that
//! regenerate every figure and table of the paper's evaluation (§5), plus
//! the Criterion micro-benchmarks of the substrate hot paths.
//!
//! Each experiment drives the *modeled-scale* workflow with a trace
//! recorded from a *real* small AMR run (see `xlayer-workflow::drive`), so
//! the dynamics — erratic growth, imbalance, regrid bursts — are genuine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, EulerSolver, GasProblem, LevelSolver,
    ScalarProblem, VelocityField,
};
use xlayer_workflow::{AmrDriver, DrivePoint, WorkloadDriver};

/// The bench names `bench_summary` writes into `BENCH_native_hotpath.json`
/// under `"benches"`. `bench_summary` asserts it produced exactly these
/// (in order) and `bench_schema_check` validates a summary file against
/// them, so a renamed or dropped hot-path measurement fails loudly instead
/// of silently vanishing from the regression record.
pub const EXPECTED_BENCH_KEYS: &[&str] = &[
    "exchange_plan_32c_64box_periodic",
    "exchange_32c_64box_periodic_cached",
    "exchange_32c_64box_periodic_uncached",
    "euler_level_step_32c_64box_periodic",
    "advect_level_step_32c_64box_periodic",
    "euler_sweep_kernel_32c_64box",
    "euler_reference_kernel_32c_64box",
    "euler_capture_level_step_32c_64box_periodic",
    "euler_max_wave_speed_32c_64box_periodic",
    "staging_get_region_64obj",
    "staging_get_handles_64obj",
    "downsample_flat_64c_x4",
    "downsample_reference_64c_x4",
    "mse_flat_64c_x4",
    "mse_reference_64c_x4",
    "entropy_flat_64c_256bins",
    "entropy_reference_64c_256bins",
    "level_entropy_scan_64c_flat",
    "level_entropy_scan_64c_reference",
    "mesh_concat_64parts",
    "mesh_append_64parts",
    "native_pipeline_sync_16c_4steps",
    "native_pipeline_overlapped_16c_4steps",
    "net_put_throughput",
    "net_get_throughput",
    "net_put_whole_64mib",
    "net_get_whole_64mib",
    "net_put_chunked_throughput",
    "net_get_chunked_throughput",
    "net_put_latency_p50",
    "net_put_latency_p95",
    "net_put_latency_p99",
    "net_put_latency_max",
    "net_get_latency_p50",
    "net_get_latency_p95",
    "net_get_latency_p99",
    "net_get_latency_max",
    "net_pool_hit_rate",
    "net_chunksum_hit_rate",
    "net_single_put_throughput",
    "net_single_get_throughput",
    "net_sharded_put_throughput",
    "net_sharded_get_throughput",
    "staging_spill_throughput",
    "staging_promote_throughput",
    "staging_tier_hit_rate",
    "xbench_saturation_goodput_mibps",
    "xbench_knee_offered_load",
    "xbench_retry_amplification",
];

/// The derived ratios `bench_summary` writes under `"derived"`.
pub const EXPECTED_DERIVED_KEYS: &[&str] = &[
    "exchange_cached_speedup",
    "euler_sweep_speedup",
    "downsample_flat_speedup",
    "mse_flat_speedup",
    "entropy_flat_speedup",
    "level_entropy_scan_speedup",
    "mesh_concat_speedup",
    "staging_overlap_speedup",
    "net_chunked_speedup_large",
    "net_sharded_speedup",
    "staging_tier_capacity_gain",
];

/// A recorded workload trace plus the real run's base-grid size, used to
/// compute virtual-scale factors.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Per-step drive points from the real run.
    pub points: Vec<DrivePoint>,
    /// Cells of the real run's base grid.
    pub base_cells: u64,
}

impl Trace {
    /// Scale factor mapping this trace onto a virtual base domain of
    /// `virtual_cells` cells.
    pub fn scale_to(&self, virtual_cells: u64) -> f64 {
        virtual_cells as f64 / self.base_cells as f64
    }
}

/// Build the advection–diffusion workload of §5.2.2: a Gaussian blob in a
/// vortex with dynamic refinement, run for `steps` real steps on an
/// `n`³ base grid.
pub fn advect_trace(n: i64, max_levels: usize, steps: u64, seed_shift: i64) -> Trace {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(
        VelocityField::Vortex {
            center: [n as f64 / 2.0, n as f64 / 2.0],
            strength: 0.08,
        },
        0.01,
        n,
    );
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels,
            base_max_box: 8,
            nranks: 16,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 4,
            ..Default::default()
        },
    );
    let c = n as f64 / 2.0;
    ScalarProblem::Gaussian {
        center: [c + seed_shift as f64, c, c],
        sigma: n as f64 / 8.0,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    record(sim, steps, n)
}

/// Build the Polytropic Gas workload of §5.2.1/§5.2.3: a 3-D blast wave
/// with dynamic refinement (growing refined region ⇒ growing memory,
/// Fig. 1 / Fig. 9 dynamics).
pub fn euler_trace(n: i64, max_levels: usize, steps: u64) -> Trace {
    let domain = ProblemDomain::new(IBox::cube(n));
    let solver = EulerSolver::default();
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels,
            base_max_box: 8,
            nranks: 16,
            ..Default::default()
        },
        solver,
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [n as f64 / 2.0; 3],
        radius: n as f64 / 8.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    record(sim, steps, n)
}

fn record<S: LevelSolver>(sim: AmrSimulation<S>, steps: u64, n: i64) -> Trace {
    let mut driver = AmrDriver::new(sim);
    let points = (0..steps).map(|_| driver.next_point()).collect();
    Trace {
        points,
        base_cells: (n * n * n) as u64,
    }
}

/// The §5.2.2 scale sweep: (simulation cores, virtual domain cells).
/// Domains are 1024²×512, 1024³, 2048×1024², 2048²×1024.
pub const SCALE_SWEEP: [(usize, u64); 4] = [
    (2048, 1024 * 1024 * 512),
    (4096, 1024 * 1024 * 1024),
    (8192, 2048 * 1024 * 1024),
    (16384, 2048 * 2048 * 1024),
];

/// Run one modeled workflow over `trace` at virtual scale.
pub fn run_strategy(
    trace: &Trace,
    sim_cores: usize,
    virt_cells: u64,
    strategy: xlayer_workflow::Strategy,
    hints: Option<xlayer_core::UserHints>,
) -> xlayer_workflow::WorkflowReport {
    let mut cfg = xlayer_workflow::WorkflowConfig::titan_advect(sim_cores, strategy);
    cfg.scale = trace.scale_to(virt_cells);
    if let Some(h) = hints {
        cfg.hints = h;
    }
    let wf = xlayer_workflow::ModeledWorkflow::new(cfg);
    let mut driver = xlayer_workflow::TraceDriver::new(trace.points.clone());
    wf.run(&mut driver, trace.points.len() as u64)
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Format bytes as GB with 2 decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

/// Format seconds with 1 decimal.
pub fn secs(t: f64) -> String {
    format!("{t:.1}")
}

/// Format a percentage with 2 decimals.
pub fn pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advect_trace_is_dynamic() {
        let t = advect_trace(16, 2, 6, 0);
        assert_eq!(t.points.len(), 6);
        assert!(t.points.iter().all(|p| p.cells > 0 && p.bytes > 0));
        assert!(t.points.iter().all(|p| p.imbalance >= 1.0));
        assert!(t.scale_to(1 << 29) > 1.0);
    }

    #[test]
    fn euler_trace_grows() {
        let t = euler_trace(16, 2, 6);
        assert_eq!(t.points.len(), 6);
        let first = t.points.first().unwrap().bytes;
        let max = t.points.iter().map(|p| p.bytes).max().unwrap();
        assert!(max >= first);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(gb(1 << 30), "1.00");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(pct(0.8711), "87.11%");
    }
}
