//! Figure 5 — application-layer adaptation of the data's spatial
//! resolution with user-defined down-sampling ranges, driven by runtime
//! memory availability.
//!
//! Paper setup: memory-intensive 3-D Polytropic Gas, 128×64×64 base
//! domain, 4K cores of Intrepid (512 MB/core), 40 steps. Acceptable
//! factors {2,4} for the first half, {2,4,8,16} for the second. Result:
//! while memory is ample (steps 0–30) the minimum factor (highest
//! resolution) is selected; from step ~31 the shrinking availability
//! forces larger factors, reaching the minimum resolution by step 40.

use xlayer_bench::{euler_trace, print_table};
use xlayer_core::policy::app::{reduction_memory, select_factor};
use xlayer_core::UserHints;
use xlayer_platform::MachineSpec;

fn main() {
    const STEPS: u64 = 40;
    let trace = euler_trace(16, 3, STEPS);
    let machine = MachineSpec::intrepid();
    let n_cores = 4096.0;
    let budget = machine.memory_per_core() as f64 * 0.9;

    // The worst-rank share of the data, smoothed the way a 4K-core run
    // smooths a 16³ driver: exponential averaging over steps (the paper's
    // grids are ~3·10⁴ cells per core; ours are ~1, so raw per-step
    // imbalance is far spikier than at scale) with the imbalance
    // contribution capped at the cross-node factor.
    let mut worst_shares = Vec::with_capacity(trace.points.len());
    let mut ewma = 0.0f64;
    for (i, p) in trace.points.iter().enumerate() {
        let w = p.bytes as f64 / n_cores * p.imbalance.min(2.0);
        ewma = if i == 0 { w } else { 0.85 * ewma + 0.15 * w };
        worst_shares.push(ewma);
    }
    // Scale so the highest resolution stops fitting at ~3/4 through the run
    // (the paper's step-31-of-40 crossing): at the crossing,
    // reduction_memory(worst, 2) = worst·3/2 = budget - worst ⇒
    // worst = budget / 2.5.
    let crossing = worst_shares[(STEPS as usize * 3) / 4];
    let scale = budget / 2.5 / crossing;

    let hints = UserHints::paper_fig5_schedule(STEPS / 2);
    let mb = |b: f64| b / (1 << 20) as f64;

    let mut rows = Vec::new();
    let mut adapted_at: Option<u64> = None;
    let mut min_res_at: Option<u64> = None;
    for (i, _p) in trace.points.iter().enumerate() {
        let step = i as u64 + 1;
        let worst = (worst_shares[i] * scale) as u64;
        let available = (budget as u64).saturating_sub(worst);
        let factors = hints.factors_at(step);
        let d = select_factor(worst, &factors, available);

        let f_min = *factors.first().expect("non-empty");
        let f_max = *factors.last().expect("non-empty");
        let mem_max_res = reduction_memory(worst, f_min);
        let mem_min_res = reduction_memory(worst, f_max);
        let mem_adaptive = reduction_memory(worst, d.factor);

        if d.factor > f_min && adapted_at.is_none() {
            adapted_at = Some(step);
        }
        if d.factor == f_max && step > STEPS / 2 && min_res_at.is_none() {
            min_res_at = Some(step);
        }

        rows.push(vec![
            format!("{step}"),
            format!("{:.1}", mb(available as f64)),
            format!("{:.1}", mb(mem_max_res as f64)),
            format!("{:.1}", mb(mem_min_res as f64)),
            format!("{:.1}", mb(mem_adaptive as f64)),
            format!("{}", d.factor),
        ]);
    }

    print_table(
        "Fig. 5 — app-layer adaptive resolution on Intrepid (4K cores, MB per core)",
        &[
            "step",
            "available",
            "MAX-res mem",
            "MIN-res mem",
            "adaptive mem",
            "factor",
        ],
        &rows,
    );
    match adapted_at {
        Some(s) => println!("\nresolution first reduced at step {s} (paper: step 31)"),
        None => println!("\nresolution never reduced — scale the workload up"),
    }
    if let Some(s) = min_res_at {
        println!("adaptive resolution reached the minimum at step {s} (paper: step 40)");
    }
    println!("Paper: factor minimal while memory lasts; escalates at step 31; minimal resolution by step 40.");
}
