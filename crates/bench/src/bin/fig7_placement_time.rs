//! Figure 7 — cumulative end-to-end execution time: static in-situ vs
//! static in-transit vs adaptive analysis placement, at 2K/4K/8K/16K AMR
//! cores on Titan with a 16:1 simulation-to-staging ratio.
//!
//! Paper result: adaptive placement achieves the smallest cumulative
//! end-to-end time at every scale; its end-to-end overhead is 50.00%,
//! 50.31%, 50.50%, 56.30% lower than static in-situ and 75.42%, 38.78%,
//! 21.29%, 48.22% lower than static in-transit (2K, 4K, 8K, 16K), and
//! stays below 6% of the simulation time.

use xlayer_bench::{advect_trace, print_table, secs, SCALE_SWEEP};
use xlayer_core::EngineConfig;
use xlayer_workflow::Strategy;

fn main() {
    const STEPS: u64 = 40;
    let mut rows = Vec::new();
    println!("running the real AMR advection–diffusion driver trace ({STEPS} steps)…");
    for (i, (cores, cells)) in SCALE_SWEEP.iter().enumerate() {
        let trace = advect_trace(16, 2, STEPS, i as i64);
        let mut totals = Vec::new();
        for strategy in [
            Strategy::StaticInSitu,
            Strategy::StaticInTransit,
            Strategy::Adaptive(EngineConfig::middleware_only()),
        ] {
            let r = xlayer_bench::run_strategy(&trace, *cores, *cells, strategy, None);
            rows.push(vec![
                format!("{}K", cores / 1024),
                strategy.label().to_string(),
                secs(r.end_to_end.sim_time),
                secs(r.end_to_end.overhead),
                secs(r.end_to_end.total()),
                format!("{:.2}%", 100.0 * r.end_to_end.overhead_fraction()),
            ]);
            totals.push(r.end_to_end.overhead);
        }
        let (insitu, intransit, adapt) = (totals[0], totals[1], totals[2]);
        rows.push(vec![
            format!("{}K", cores / 1024),
            "—".into(),
            "overhead ↓ vs InSitu:".into(),
            format!("{:.2}%", 100.0 * (1.0 - adapt / insitu)),
            "vs InTransit:".into(),
            format!("{:.2}%", 100.0 * (1.0 - adapt / intransit)),
        ]);
    }
    print_table(
        "Fig. 7 — end-to-end execution time, static vs adaptive placement (Titan, 16:1)",
        &[
            "cores",
            "strategy",
            "sim time (s)",
            "overhead (s)",
            "total (s)",
            "ovh/sim",
        ],
        &rows,
    );
    println!("\nPaper: adaptive overhead ↓ 50–56% vs InSitu, 21–75% vs InTransit; overhead <6% of sim time.");
}
