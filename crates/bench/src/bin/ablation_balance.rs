//! Ablation: load-balancing strategy for the dynamically refined grids —
//! knapsack (Chombo's default) vs Morton space-filling curve vs round-robin
//! — measured on the real layouts an evolving blast produces.
//!
//! The paper's Fig. 1 imbalance is what staging adaptations must absorb;
//! this quantifies how much of it the balancer itself can remove.

use xlayer_amr::balance::{assign_ranks, imbalance_of, Balancer};
use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_bench::print_table;
use xlayer_solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};

fn main() {
    let n = 16i64;
    let nranks = 16;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 3,
            base_max_box: 4,
            nranks,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    let mut count = 0;
    for step in 0..20u64 {
        let stats = sim.advance();
        if !stats.regridded && step != 0 {
            continue;
        }
        // Collect the fine level's boxes (the imbalanced ones).
        if sim.hierarchy.num_levels() < 2 {
            continue;
        }
        let boxes: Vec<IBox> = sim
            .hierarchy
            .level(sim.hierarchy.num_levels() - 1)
            .layout()
            .grids()
            .iter()
            .map(|g| g.bx)
            .collect();
        let mut row = vec![format!("{}", stats.step), format!("{}", boxes.len())];
        for (i, bal) in [
            Balancer::Knapsack,
            Balancer::MortonSfc,
            Balancer::RoundRobin,
        ]
        .iter()
        .enumerate()
        {
            let a = assign_ranks(&boxes, nranks, *bal);
            let imb = imbalance_of(&boxes, &a, nranks);
            sums[i] += imb;
            row.push(format!("{imb:.3}"));
        }
        count += 1;
        rows.push(row);
    }
    print_table(
        &format!("Ablation — balancer imbalance (max/mean cells) over {nranks} ranks, finest level at regrids"),
        &["step", "boxes", "knapsack", "morton-sfc", "round-robin"],
        &rows,
    );
    println!(
        "\nmean imbalance: knapsack {:.3}, morton {:.3}, round-robin {:.3}",
        sums[0] / count as f64,
        sums[1] / count as f64,
        sums[2] / count as f64
    );
    println!(
        "knapsack flattens compute load; morton preserves locality at a small imbalance cost."
    );
}
