//! Validate a `bench_summary` output file against the pinned key schema.
//!
//! CI and `scripts/check.sh` run this over the committed
//! `BENCH_native_hotpath.json` (and over freshly generated summaries) so a
//! renamed, dropped, or non-finite hot-path measurement fails loudly. The
//! workspace has no JSON dependency, so the check is a deliberately simple
//! scan: every expected key must appear exactly once as a quoted name
//! followed by a finite positive number.
//!
//! Usage: `cargo run -p xlayer-bench --bin bench_schema_check [summary.json]`

use xlayer_bench::{EXPECTED_BENCH_KEYS, EXPECTED_DERIVED_KEYS};

/// Extract the number following `"key":`, requiring exactly one occurrence.
fn value_of(text: &str, key: &str) -> Result<f64, String> {
    let needle = format!("\"{key}\":");
    let mut hits = text.match_indices(&needle);
    let (at, _) = hits.next().ok_or_else(|| format!("missing key {key:?}"))?;
    if hits.next().is_some() {
        return Err(format!("key {key:?} appears more than once"));
    }
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("key {key:?}: unparsable value {:?}: {e}", &rest[..end]))
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_native_hotpath.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_schema_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut errors: Vec<String> = Vec::new();
    if !text.contains("\"unit\": \"ns_per_iter\"") {
        errors.push("missing or wrong \"unit\" (want ns_per_iter)".to_string());
    }
    for key in EXPECTED_BENCH_KEYS {
        match value_of(&text, key) {
            Ok(v) if v.is_finite() && v > 0.0 => {}
            Ok(v) => errors.push(format!("bench {key:?}: non-positive value {v}")),
            Err(e) => errors.push(e),
        }
    }
    for key in EXPECTED_DERIVED_KEYS {
        match value_of(&text, key) {
            Ok(v) if v.is_finite() && v > 0.0 => {}
            Ok(v) => errors.push(format!("derived {key:?}: non-positive value {v}")),
            Err(e) => errors.push(e),
        }
    }

    if errors.is_empty() {
        println!(
            "bench_schema_check: {path} OK ({} benches, {} derived)",
            EXPECTED_BENCH_KEYS.len(),
            EXPECTED_DERIVED_KEYS.len()
        );
    } else {
        for e in &errors {
            eprintln!("bench_schema_check: {path}: {e}");
        }
        std::process::exit(1);
    }
}
