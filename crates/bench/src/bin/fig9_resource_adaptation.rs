//! Figure 9 + §5.2.3 — resource-layer adaptation: number of in-transit
//! cores per time step, static (256) vs adaptive, for the Polytropic Gas
//! workload with 4,096 simulation cores.
//!
//! Paper result: early in the run only ~50 in-transit cores are needed;
//! as the grid refines and data grows, more staging cores are allocated.
//! CPU utilization efficiency (Eq. 12): 87.11% adaptive vs 54.57% static.

use xlayer_bench::{euler_trace, pct, print_table};
use xlayer_core::EngineConfig;
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = euler_trace(16, 3, STEPS);
    // Virtual domain: paper's 128×64×64 Polytropic Gas base on Intrepid.
    let scale = trace.scale_to(128 * 64 * 64) * 48.0; // ×48: 3 refined levels' working set

    let run = |strategy| {
        let mut cfg = WorkflowConfig::intrepid_gas(strategy);
        cfg.scale = scale;
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        wf.run(&mut d, STEPS)
    };

    let stat = run(Strategy::StaticInTransit);
    let adapt = run(Strategy::Adaptive(EngineConfig::resource_only()));

    let series = adapt.staging_core_series();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(step, m)| vec![format!("{step}"), "256".into(), format!("{m}")])
        .collect();
    print_table(
        "Fig. 9 — in-transit cores per time step (Polytropic Gas, 4K sim cores)",
        &["step", "static", "adaptive"],
        &rows,
    );

    let first = series.first().expect("non-empty").1;
    let last = series.last().expect("non-empty").1;
    println!("\nadaptive allocation: {first} cores at start → {last} cores at end (paper: ~50 → grows with refinement)");
    println!(
        "CPU utilization efficiency (Eq. 12): adaptive {} vs static {}",
        pct(adapt.staging_efficiency()),
        pct(stat.staging_efficiency())
    );
    println!("Paper: 87.11% adaptive vs 54.57% static.");
}
