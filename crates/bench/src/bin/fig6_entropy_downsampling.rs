//! Figure 6 — entropy-based data down-sampling (quantitative equivalent).
//!
//! The paper renders two isosurfaces of the Polytropic Gas density at step
//! 60 before and after entropy-adaptive reduction: regions with high
//! entropy (9.21 bits) keep full resolution, regions with low entropy
//! (5.14 bits) are down-sampled 4× with little visual loss; finest-level
//! block entropies span 5.14–9.85 bits.
//!
//! Without a display we report the quantitative equivalent per block:
//! entropy, chosen factor, isosurface triangle counts at full vs adapted
//! resolution, and the reconstruction MSE.

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_bench::print_table;
use xlayer_solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer_viz::downsample::{downsample_fab, reconstruction_mse};
use xlayer_viz::entropy::{block_entropy, factors_from_entropy, DEFAULT_BINS};
use xlayer_viz::extract_block;

fn main() {
    let n = 16i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 3,
            base_max_box: 8,
            nranks: 8,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [n as f64 / 2.0; 3],
        radius: n as f64 / 8.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    // Evolve the blast so the density field develops structure.
    for _ in 0..20 {
        sim.advance();
    }
    sim.hierarchy.fill_ghosts();

    // Finest level blocks, density component (0).
    let finest = sim.hierarchy.num_levels() - 1;
    let level = sim.hierarchy.level(finest);
    let comp = 0;
    let entropies: Vec<f64> = (0..level.len())
        .map(|i| block_entropy(level.fab(i), comp, &level.valid_box(i), DEFAULT_BINS))
        .collect();
    let h_lo = entropies.iter().cloned().fold(f64::INFINITY, f64::min);
    let h_hi = entropies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    // Thresholds: below the 40th percentile of the observed range → 4×;
    // mid-range → 2×; high entropy → full resolution.
    let t1 = h_lo + 0.4 * (h_hi - h_lo);
    let t2 = h_lo + 0.7 * (h_hi - h_lo);
    let thresholds = [(0.0, 4u32), (t1, 2), (t2, 1)];
    let factors = factors_from_entropy(&entropies, &thresholds);

    // Isovalue: median density over the level.
    let iso = 0.5 * (level.min(comp) + level.max(comp));

    let mut rows = Vec::new();
    let (mut tri_full_total, mut tri_adapt_total) = (0usize, 0usize);
    let (mut bytes_full, mut bytes_adapt) = (0u64, 0u64);
    for i in 0..level.len() {
        let fab = level.fab(i);
        let region = level.valid_box(i);
        let full = extract_block(fab, comp, &region, iso, 1.0, [0.0; 3]);
        let ds = downsample_fab(fab, comp, factors[i]);
        let adapted = extract_block(
            &ds,
            0,
            &region.coarsen(factors[i] as i64),
            iso,
            factors[i] as f64,
            [0.0; 3],
        );
        let mse = reconstruction_mse(fab, comp, factors[i]);
        tri_full_total += full.num_triangles();
        tri_adapt_total += adapted.num_triangles();
        bytes_full += region.num_cells() * 8;
        bytes_adapt += region.coarsen(factors[i] as i64).num_cells() * 8;
        rows.push(vec![
            format!("{i}"),
            format!("{:.2}", entropies[i]),
            format!("{}", factors[i]),
            format!("{}", full.num_triangles()),
            format!("{}", adapted.num_triangles()),
            format!("{:.2e}", mse),
        ]);
    }

    print_table(
        "Fig. 6 — entropy-adaptive down-sampling of the finest-level density",
        &[
            "block",
            "entropy(bits)",
            "factor",
            "tris full",
            "tris adapted",
            "recon MSE",
        ],
        &rows,
    );
    println!("\nblock entropy range: {h_lo:.2} – {h_hi:.2} bits (paper: 5.14 – 9.85)");
    println!(
        "data: {:.1} KB -> {:.1} KB ({:.1}% of full)",
        bytes_full as f64 / 1024.0,
        bytes_adapt as f64 / 1024.0,
        100.0 * bytes_adapt as f64 / bytes_full as f64
    );
    println!(
        "triangles: {tri_full_total} -> {tri_adapt_total} ({:.1}% kept; high-entropy regions preserved)",
        100.0 * tri_adapt_total as f64 / tri_full_total.max(1) as f64
    );
    // The defining property: high-entropy blocks keep full resolution.
    let preserved = entropies
        .iter()
        .zip(&factors)
        .filter(|(h, f)| **h >= t2 && **f == 1)
        .count();
    println!("high-entropy blocks kept at full resolution: {preserved}");
}
