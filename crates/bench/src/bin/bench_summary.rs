//! Machine-readable summary of the native hot-path micro-benchmarks.
//!
//! Re-times the headline cases of `benches/ghost_exchange.rs`,
//! `benches/solver_kernels.rs`, and `benches/staging_ops.rs` with a plain
//! `std::time::Instant` harness (Criterion is a dev-dependency, not
//! available to binaries) and writes `BENCH_native_hotpath.json` — one
//! ns/iter figure per bench plus the cached/uncached exchange speedup —
//! so CI and later sessions can diff hot-path performance without parsing
//! bench output.
//!
//! Usage: `cargo run --release -p xlayer-bench --bin bench_summary [out.json]`

use std::time::Instant;
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;
use xlayer_amr::{Fab, IBox, IntVect};
use xlayer_solvers::euler::{EulerSolver, Primitive};
use xlayer_solvers::{AdvectDiffuseSolver, LevelSolver, VelocityField};
use xlayer_staging::{DataObject, DataSpace, Sharding};

/// Median ns/iter of `f`: one calibration call sizes batches to ~25 ms,
/// then the median over five batches is reported (same shape as the
/// Criterion harness, minus the statistics).
fn time_ns(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as f64;
    let iters = ((25e6 / once).ceil() as u64).clamp(1, 1_000_000);
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn level(n: i64, max_box: i64, periodic: bool, nghost: i64) -> LevelData {
    let b = IBox::cube(n);
    let domain = if periodic {
        ProblemDomain::periodic(b)
    } else {
        ProblemDomain::new(b)
    };
    let layout = BoxLayout::decompose(&domain, max_box, 4);
    let mut ld = LevelData::new(layout, domain, 1, nghost);
    ld.fill(1.0);
    ld
}

fn euler_level(n: i64, max_box: i64) -> (EulerSolver, LevelData) {
    let solver = EulerSolver::default();
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let layout = BoxLayout::decompose(&domain, max_box, 4);
    let mut ld = LevelData::new(layout, domain, solver.ncomp(), solver.nghost());
    ld.for_each_mut(|vb, fab| {
        for iv in vb.cells() {
            let w = Primitive {
                rho: 1.0 + 0.1 * ((iv[0] + iv[1]) % 5) as f64,
                vel: [0.2, 0.0, 0.0],
                p: 1.0,
            };
            EulerSolver::set_state(fab, iv, w.to_conserved(1.4));
        }
    });
    (solver, ld)
}

fn staging_obj(version: u64, lo: i64, n: i64) -> DataObject {
    let b = IBox::cube(n).shift(IntVect::splat(lo));
    let fab = Fab::filled(b, 1, 1.0);
    DataObject::from_fab("rho", version, &fab, 0, &b, 0)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_native_hotpath.json".to_string());

    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut run = |name: &'static str, f: &mut dyn FnMut()| {
        let ns = time_ns(f);
        println!("{name:<44} {ns:>14.1} ns/iter");
        results.push((name, ns));
    };

    // Ghost exchange over a 64-grid periodic level (32³ in 8³ boxes): the
    // cached/uncached pair is the ExchangeCopier acceptance measurement.
    {
        let ld = level(32, 8, true, 2);
        run("exchange_plan_32c_64box_periodic", &mut || {
            let _ = ld.exchange_plan();
        });
    }
    {
        let mut ld = level(32, 8, true, 2);
        run("exchange_32c_64box_periodic_cached", &mut || {
            let _ = ld.exchange();
        });
    }
    {
        let mut ld = level(32, 8, true, 2);
        run("exchange_32c_64box_periodic_uncached", &mut || {
            let _ = ld.exchange_uncached();
        });
    }

    // Solver level steps (exchange + sweep) on the same 64-grid shape.
    {
        let (solver, mut ld) = euler_level(32, 8);
        run("euler_level_step_32c_64box_periodic", &mut || {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.05);
        });
    }
    {
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.01, 32);
        let domain = ProblemDomain::periodic(IBox::cube(32));
        let layout = BoxLayout::decompose(&domain, 8, 4);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.fill(1.0);
        run("advect_level_step_32c_64box_periodic", &mut || {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.05);
        });
    }

    // Staging substrate: shared-handle reads over a populated space.
    {
        let space = DataSpace::new(8, u64::MAX / 16, Sharding::BboxHash);
        for i in 0..64i64 {
            space.put(staging_obj(1, i * 8, 8)).expect("put");
        }
        let query = IBox::new(IntVect::splat(100), IntVect::splat(180));
        run("staging_get_region_64obj", &mut || {
            let _ = space.get_region("rho", 1, &query);
        });
        run("staging_get_handles_64obj", &mut || {
            let _ = space.get("rho", 1, None);
        });
    }

    let cached = results
        .iter()
        .find(|(n, _)| *n == "exchange_32c_64box_periodic_cached")
        .map(|(_, ns)| *ns)
        .unwrap_or(f64::NAN);
    let uncached = results
        .iter()
        .find(|(n, _)| *n == "exchange_32c_64box_periodic_uncached")
        .map(|(_, ns)| *ns)
        .unwrap_or(f64::NAN);
    let speedup = uncached / cached;
    println!("\nexchange cached vs uncached speedup: {speedup:.2}x");

    let mut json = String::from("{\n  \"unit\": \"ns_per_iter\",\n  \"benches\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{sep}\n"));
    }
    json.push_str(&format!(
        "  }},\n  \"derived\": {{\n    \"exchange_cached_speedup\": {speedup:.2}\n  }}\n}}\n"
    ));
    std::fs::write(&out_path, json).expect("write summary");
    println!("wrote {out_path}");
}
