//! Machine-readable summary of the native hot-path micro-benchmarks.
//!
//! Re-times the headline cases of `benches/ghost_exchange.rs`,
//! `benches/solver_kernels.rs`, `benches/staging_ops.rs`,
//! `benches/entropy_downsample.rs`, `benches/marching_cubes.rs`, and
//! `benches/native_pipeline.rs` with a plain `std::time::Instant` harness
//! (Criterion is a dev-dependency, not available to binaries) and writes
//! `BENCH_native_hotpath.json` — one ns/iter figure per bench plus derived
//! speedups — so CI and later sessions can diff hot-path performance
//! without parsing bench output. The key set is pinned by
//! [`xlayer_bench::EXPECTED_BENCH_KEYS`] and validated by the
//! `bench_schema_check` binary.
//!
//! Usage: `cargo run --release -p xlayer-bench --bin bench_summary [out.json]`

use std::time::Instant;
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;
use xlayer_amr::{Fab, IBox, IntVect};
use xlayer_bench::{EXPECTED_BENCH_KEYS, EXPECTED_DERIVED_KEYS};
use xlayer_core::Placement;
use xlayer_net::client::{ClientConfig, RemoteClient};
use xlayer_net::cluster::{ShardedClient, StagingCluster};
use xlayer_net::service::{ServiceConfig, StagingService};
use xlayer_solvers::euler::{EulerSolver, Primitive};
use xlayer_solvers::{
    AdvectDiffuseSolver, AmrSimulation, DriverConfig, LevelSolver, ScalarProblem, VelocityField,
};
use xlayer_staging::{DataObject, DataSpace, Sharding};
use xlayer_viz::downsample::{
    downsample_region, downsample_region_reference, reconstruction_mse,
    reconstruction_mse_reference,
};
use xlayer_viz::entropy::{block_entropy, block_entropy_reference, level_entropies};
use xlayer_viz::TriMesh;
use xlayer_workflow::{NativeConfig, NativeWorkflow};

/// Best-batch ns/iter of `f`: one calibration call sizes batches to
/// ~25 ms, then the minimum over seven batches is reported. Timing noise
/// on a shared host is strictly additive (preemption, frequency dips), so
/// the minimum is the robust estimator of the true cost — medians still
/// wander by tens of percent between whole-summary runs here.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as f64;
    let iters = ((25e6 / once).ceil() as u64).clamp(1, 1_000_000);
    (0..7)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn level(n: i64, max_box: i64, periodic: bool, nghost: i64) -> LevelData {
    let b = IBox::cube(n);
    let domain = if periodic {
        ProblemDomain::periodic(b)
    } else {
        ProblemDomain::new(b)
    };
    let layout = BoxLayout::decompose(&domain, max_box, 4);
    let mut ld = LevelData::new(layout, domain, 1, nghost);
    ld.fill(1.0);
    ld
}

fn euler_level(n: i64, max_box: i64) -> (EulerSolver, LevelData) {
    let solver = EulerSolver::default();
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let layout = BoxLayout::decompose(&domain, max_box, 4);
    let mut ld = LevelData::new(layout, domain, solver.ncomp(), solver.nghost());
    ld.for_each_mut(|vb, fab| {
        for iv in vb.cells() {
            let w = Primitive {
                rho: 1.0 + 0.1 * ((iv[0] + iv[1]) % 5) as f64,
                vel: [0.2, 0.0, 0.0],
                p: 1.0,
            };
            EulerSolver::set_state(fab, iv, w.to_conserved(1.4));
        }
    });
    (solver, ld)
}

fn staging_obj(version: u64, lo: i64, n: i64) -> DataObject {
    let b = IBox::cube(n).shift(IntVect::splat(lo));
    let fab = Fab::filled(b, 1, 1.0);
    DataObject::from_fab("rho", version, &fab, 0, &b, 0)
}

fn noisy_fab(n: i64) -> Fab {
    let b = IBox::cube(n);
    let mut f = Fab::new(b, 1);
    let mut state: u64 = 42;
    for iv in b.cells() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        f.set(iv, 0, (state >> 33) as f64 / (1u64 << 31) as f64);
    }
    f
}

fn blob_sim(n: i64) -> AmrSimulation<AdvectDiffuseSolver> {
    let domain = ProblemDomain::periodic(IBox::cube(n));
    let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.0, 0.0]), 0.0, n);
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            ..Default::default()
        },
        solver,
        DriverConfig {
            tag_threshold: 0.02,
            regrid_interval: 3,
            ..Default::default()
        },
    );
    ScalarProblem::Gaussian {
        center: [n as f64 / 2.0; 3],
        sigma: 2.5,
    }
    .init_hierarchy(&mut sim.hierarchy);
    sim.regrid_now();
    sim
}

/// Producer-blocking time for `steps` coupled steps against a live staging
/// service: the wall time for the *simulation* to get through its step
/// loop, construction and the trailing consumer drain excluded.
///
/// This is the quantity staging overlap optimizes — how long the solve is
/// held up by data movement — and the paper's own claim (§5.2: hide the
/// staging I/O behind computation). End-to-end wall time is the wrong
/// meter on a single-core host: the hidden transfers still timeshare the
/// one CPU, so totals are work-conserving there and only the producer's
/// critical path shows the overlap. `finish()` still runs (untimed) and
/// every step's analysis outcome is asserted, so both variants complete
/// the identical pipeline.
fn run_pipeline(overlap: bool, steps: usize, remote: &str) -> std::time::Duration {
    let mut wf = NativeWorkflow::new(
        blob_sim(16),
        NativeConfig {
            iso_value: 0.4,
            overlap_staging: overlap,
            placement_override: Some(Placement::InTransit),
            staging_servers: 1,
            workers: 1,
            remote: Some(remote.to_string()),
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    for _ in 0..steps {
        wf.step();
    }
    let stepped = t0.elapsed();
    let (_, outcomes, _) = wf.finish();
    assert_eq!(outcomes.len(), steps);
    stepped
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_native_hotpath.json".to_string());

    // RefCell so `run` and the interleaved pipeline block below can both
    // record results without fighting over a mutable capture.
    let results: std::cell::RefCell<Vec<(&str, f64)>> = std::cell::RefCell::new(Vec::new());
    let run = |name: &'static str, f: &mut dyn FnMut()| {
        let ns = time_ns(f);
        println!("{name:<44} {ns:>14.1} ns/iter");
        results.borrow_mut().push((name, ns));
    };

    // Ghost exchange over a 64-grid periodic level (32³ in 8³ boxes): the
    // cached/uncached pair is the ExchangeCopier acceptance measurement.
    {
        let ld = level(32, 8, true, 2);
        run("exchange_plan_32c_64box_periodic", &mut || {
            let _ = ld.exchange_plan();
        });
    }
    {
        let mut ld = level(32, 8, true, 2);
        run("exchange_32c_64box_periodic_cached", &mut || {
            let _ = ld.exchange();
        });
    }
    {
        let mut ld = level(32, 8, true, 2);
        run("exchange_32c_64box_periodic_uncached", &mut || {
            let _ = ld.exchange_uncached();
        });
    }

    // Solver level steps (exchange + sweep) on the same 64-grid shape.
    {
        let (solver, mut ld) = euler_level(32, 8);
        run("euler_level_step_32c_64box_periodic", &mut || {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.05);
        });
    }
    {
        let solver = AdvectDiffuseSolver::new(VelocityField::Constant([1.0, 0.5, 0.0]), 0.01, 32);
        let domain = ProblemDomain::periodic(IBox::cube(32));
        let layout = BoxLayout::decompose(&domain, 8, 4);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.fill(1.0);
        run("advect_level_step_32c_64box_periodic", &mut || {
            ld.exchange();
            solver.advance_level(&mut ld, 1.0, 0.05);
        });
    }

    // Sweep-structured Euler kernel vs the per-cell reference on one
    // ghost-filled 8³ grid of the level above — the acceptance measurement
    // for the cached-primitives/slopes restructuring. Flux fabs are
    // recycled through the scratch pool exactly as the level step does.
    {
        let (solver, mut ld) = euler_level(32, 8);
        ld.exchange();
        let valid = ld.valid_box(0);
        let old = ld.fab(0).clone();
        run("euler_sweep_kernel_32c_64box", &mut || {
            for f in solver.grid_fluxes(&old, &valid, 0.05, solver.gamma) {
                xlayer_solvers::scratch::recycle_fab(f);
            }
        });
        run("euler_reference_kernel_32c_64box", &mut || {
            for f in solver.grid_fluxes_reference(&old, &valid, 0.05, solver.gamma) {
                xlayer_solvers::scratch::recycle_fab(f);
            }
        });
    }

    // The refluxing variant of the level step (captures per-grid flux fabs
    // for coarse–fine correction) and the CFL wave-speed reduction, both
    // parallel over grids.
    {
        let (solver, mut ld) = euler_level(32, 8);
        run("euler_capture_level_step_32c_64box_periodic", &mut || {
            ld.exchange();
            let _ = solver.advance_level_capture(&mut ld, 1.0, 0.05);
        });
    }
    {
        let (solver, ld) = euler_level(32, 8);
        run("euler_max_wave_speed_32c_64box_periodic", &mut || {
            let _ = solver.max_wave_speed(&ld);
        });
    }

    // Staging substrate: shared-handle reads over a populated space.
    {
        let space = DataSpace::new(8, u64::MAX / 16, Sharding::BboxHash);
        for i in 0..64i64 {
            space.put(staging_obj(1, i * 8, 8)).expect("put");
        }
        let query = IBox::new(IntVect::splat(100), IntVect::splat(180));
        run("staging_get_region_64obj", &mut || {
            let _ = space.get_region("rho", 1, &query);
        });
        run("staging_get_handles_64obj", &mut || {
            let _ = space.get("rho", 1, None);
        });
    }

    // Flat viz kernels vs their per-cell references at 64³ — the
    // acceptance measurement for the allocation-free analysis data path.
    {
        let fab = noisy_fab(64);
        let region = IBox::cube(64);
        run("downsample_flat_64c_x4", &mut || {
            let _ = downsample_region(&fab, 0, &region, 4);
        });
        run("downsample_reference_64c_x4", &mut || {
            let _ = downsample_region_reference(&fab, 0, &region, 4);
        });
        run("mse_flat_64c_x4", &mut || {
            let _ = reconstruction_mse(&fab, 0, 4);
        });
        run("mse_reference_64c_x4", &mut || {
            let _ = reconstruction_mse_reference(&fab, 0, 4);
        });
        run("entropy_flat_64c_256bins", &mut || {
            let _ = block_entropy(&fab, 0, &region, 256);
        });
        run("entropy_reference_64c_256bins", &mut || {
            let _ = block_entropy_reference(&fab, 0, &region, 256);
        });
    }

    // The entropy-driven adaptation's real unit of work: scan every grid
    // of a 64³ level (64 grids of 16³). Flat+parallel scan with a reused
    // histogram vs the seed's serial per-cell loop.
    {
        let domain = ProblemDomain::new(IBox::cube(64));
        let layout = BoxLayout::decompose(&domain, 16, 4);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        let mut state: u64 = 7;
        ld.for_each_mut(|vb, f| {
            for iv in vb.cells() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                f.set(iv, 0, (state >> 33) as f64 / (1u64 << 31) as f64);
            }
        });
        run("level_entropy_scan_64c_flat", &mut || {
            let _ = level_entropies(&ld, 0, 256);
        });
        run("level_entropy_scan_64c_reference", &mut || {
            let _: Vec<f64> = (0..ld.len())
                .map(|i| block_entropy_reference(ld.fab(i), 0, &ld.valid_box(i), 256))
                .collect();
        });
    }

    // Merging 64 per-grid surfaces: parallel prefix-sum concat vs serial
    // grow-and-append.
    {
        let fab = noisy_fab(32);
        let parts: Vec<TriMesh> = (0..4i64)
            .flat_map(|bz| (0..4i64).flat_map(move |by| (0..4i64).map(move |bx| (bx, by, bz))))
            .map(|(bx, by, bz)| {
                let lo = IntVect::new(bx * 8, by * 8, bz * 8);
                let region = IBox::new(lo, lo + IntVect::splat(7));
                xlayer_viz::extract_block(&fab, 0, &region, 0.5, 1.0, [0.0; 3])
            })
            .collect();
        let refs: Vec<&TriMesh> = parts.iter().collect();
        run("mesh_concat_64parts", &mut || {
            let _ = TriMesh::concat(&refs);
        });
        run("mesh_append_64parts", &mut || {
            let mut total = TriMesh::new();
            for p in &parts {
                total.append(p);
            }
        });
    }

    // Native pipeline (solve + pack + stage over the wire + in-transit
    // extraction) against a loopback staging service: synchronous blocking
    // puts vs the overlapped transport, measured as producer-blocking time
    // (see `run_pipeline`). The two variants are sampled interleaved
    // (sync, overlapped, sync, …) so slow drift — allocator state,
    // frequency scaling — cancels between them instead of biasing
    // whichever ran second, and the best sample of each is reported (noise
    // is additive, as in `time_ns`).
    {
        let service = StagingService::start(ServiceConfig {
            servers: 1,
            memory_per_server: 1 << 30,
            ..ServiceConfig::default()
        })
        .expect("bind loopback staging service");
        let addr = service.local_addr().to_string();
        let mut sync_ns = f64::INFINITY;
        let mut over_ns = f64::INFINITY;
        for _ in 0..7 {
            sync_ns = sync_ns.min(run_pipeline(false, 4, &addr).as_nanos() as f64);
            over_ns = over_ns.min(run_pipeline(true, 4, &addr).as_nanos() as f64);
        }
        service.shutdown();
        for (name, ns) in [
            ("native_pipeline_sync_16c_4steps", sync_ns),
            ("native_pipeline_overlapped_16c_4steps", over_ns),
        ] {
            println!("{name:<44} {ns:>14.1} ns/iter");
            results.borrow_mut().push((name, ns));
        }
    }

    // Loopback staging service: full-protocol put and get round trips for
    // one 8³ object (512 B payload + descriptor) against a live
    // `StagingService`, warm client pool. This is the wire overhead a
    // remote placement pays per object over the in-process path.
    {
        let service = StagingService::start(ServiceConfig {
            servers: 2,
            memory_per_server: 1 << 30,
            ..ServiceConfig::default()
        })
        .expect("bind loopback staging service");
        let client =
            RemoteClient::connect(&service.local_addr().to_string(), ClientConfig::default())
                .expect("loopback client");
        let template = staging_obj(0, 0, 8);
        let mut version = 0u64;
        run("net_put_throughput", &mut || {
            version += 1;
            let mut obj = template.clone();
            obj.desc.key.version = version;
            client.put(&obj).expect("remote put");
        });
        client.evict_before("rho", u64::MAX).expect("evict");
        client.put(&staging_obj(1, 0, 8)).expect("seed get bench");
        run("net_get_throughput", &mut || {
            let got = client.get("rho", 1, None).expect("remote get");
            assert_eq!(got.len(), 1);
        });

        // Large-object transfers: one 64 MiB object (256×256×128 cells of
        // f64) moved as a single frame vs the chunked sub-frame stream.
        // The whole-frame path allocates and checksums the full payload in
        // one go; the chunked path streams fixed sub-frames through the
        // recycled buffer pool with vectored writes. Same service, same
        // client pool — only the framing differs. Each put evicts its
        // object before the next iteration so the service's memory stays
        // flat (puts append, they do not overwrite); both variants pay the
        // identical evict round-trip. The get benches read one seeded
        // object repeatedly — gets are read-only, so no re-seed per
        // iteration.
        {
            let b = IBox::new(IntVect::new(0, 0, 0), IntVect::new(255, 255, 127));
            let fab = Fab::filled(b, 1, 1.0);
            let big = DataObject::from_fab("big", 1, &fab, 0, &b, 0);
            assert_eq!(big.desc.bytes, 64 << 20, "bench object is 64 MiB");
            let whole_client = RemoteClient::connect(
                &service.local_addr().to_string(),
                ClientConfig {
                    chunk_threshold: u64::MAX,
                    ..ClientConfig::default()
                },
            )
            .expect("whole-frame client");
            // The default threshold (8 MiB) sends a 64 MiB object chunked.
            let chunked_client =
                RemoteClient::connect(&service.local_addr().to_string(), ClientConfig::default())
                    .expect("chunked client");
            run("net_put_whole_64mib", &mut || {
                whole_client.put(&big).expect("whole put");
                whole_client.evict_before("big", u64::MAX).expect("evict");
            });
            whole_client.put(&big).expect("seed whole get");
            run("net_get_whole_64mib", &mut || {
                let got = whole_client.get_whole("big", 1, None).expect("whole get");
                assert_eq!(got.len(), 1);
            });
            whole_client.evict_before("big", u64::MAX).expect("evict");
            run("net_put_chunked_throughput", &mut || {
                chunked_client.put(&big).expect("chunked put");
                chunked_client.evict_before("big", u64::MAX).expect("evict");
            });
            chunked_client.put(&big).expect("seed chunked get");
            run("net_get_chunked_throughput", &mut || {
                let got = chunked_client
                    .get_chunked("big", 1, None)
                    .expect("chunked get");
                assert_eq!(got.len(), 1);
            });
            chunked_client.evict_before("big", u64::MAX).expect("evict");
        }

        // Per-op wire latency percentiles, read back from the small-object
        // client's lock-free histograms: every successful put/get of the
        // `net_put_throughput` / `net_get_throughput` loops above recorded
        // its round trip into log-spaced buckets (~25 % resolution), so
        // these are real percentiles over thousands of ops, not re-timed
        // single shots. Percentiles report the covering bucket's floor
        // (never overstating), max is exact.
        {
            let put = client.put_latency();
            let get = client.get_latency();
            assert!(put.count > 0 && get.count > 0, "latency histograms empty");
            for (name, ns) in [
                ("net_put_latency_p50", put.p50_ns),
                ("net_put_latency_p95", put.p95_ns),
                ("net_put_latency_p99", put.p99_ns),
                ("net_put_latency_max", put.max_ns),
                ("net_get_latency_p50", get.p50_ns),
                ("net_get_latency_p95", get.p95_ns),
                ("net_get_latency_p99", get.p99_ns),
                ("net_get_latency_max", get.max_ns),
            ] {
                println!("{name:<44} {ns:>14} ns");
                results.borrow_mut().push((name, ns as f64));
            }
        }

        // Cache effectiveness on the service side, read from the same
        // snapshot the Stats opcode serves: the fraction of wire-buffer
        // acquisitions the recycling pool satisfied without allocating,
        // and the fraction of chunked-get streams whose per-chunk sums
        // came from the chunk-sum cache (the repeated 64 MiB gets above
        // recompute once, then hit).
        {
            let snap = client.service_stats().expect("service stats");
            let rate = |hits: u64, misses: u64| -> f64 {
                let total = hits + misses;
                if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                }
            };
            let pool_rate = rate(snap.pool_hits, snap.pool_misses);
            let sum_rate = rate(snap.chunksum_hits, snap.chunksum_misses);
            assert!(
                snap.chunksum_hits > 0,
                "chunked gets never hit the chunk-sum cache"
            );
            for (name, v) in [
                ("net_pool_hit_rate", pool_rate),
                ("net_chunksum_hit_rate", sum_rate),
            ] {
                println!("{name:<44} {v:>14.3} ratio");
                results.borrow_mut().push((name, v));
            }
        }
        service.shutdown();
    }

    // Sharded staging cluster: aggregate-capacity throughput, the paper's
    // multi-node staging claim scaled onto loopback. A 16 MiB working set
    // (64 objects × 256 KiB, region-routed by box hash) is staged against
    // 5 MiB of memory per shard: one shard delivers at most 5 MiB of each
    // batch (the remainder are typed OutOfMemory rejects that still paid
    // the wire transfer), four shards absorb the entire set. Values are
    // ns per *delivered* MiB — the keys measure what the cluster actually
    // staged, not how long it took to refuse work. On this single-core
    // host the four shards timeshare one CPU, so per-byte wire cost is
    // flat and the derived speedup isolates delivered-capacity scaling —
    // exactly the axis the paper scales by adding staging nodes.
    {
        let cluster_cfg = ServiceConfig {
            servers: 1,
            memory_per_server: 5 << 20,
            sharding: Sharding::RoundRobin,
            ..ServiceConfig::default()
        };
        // 64 cubes of 32³ f64 cells (256 KiB each) on a 64-aligned lattice:
        // each fits one placement bucket, and the lattice spreads buckets
        // across every shard of a 4-way map.
        let objects: Vec<DataObject> = (0..64i64)
            .map(|i| {
                let lo = IntVect::new((i % 8) * 64, (i / 8) * 64, 0);
                let b = IBox::cube(32).shift(lo);
                let fab = Fab::filled(b, 1, 1.0);
                DataObject::from_fab("shard", 1, &fab, 0, &b, i as usize)
            })
            .collect();
        let total: u64 = objects.iter().map(|o| o.desc.bytes).sum();
        assert_eq!(total, 16 << 20, "working set is 16 MiB");

        // (put ns/batch, get ns/batch, delivered bytes/batch) for a
        // cluster of `nshards` loopback shards.
        let cluster_bench = |nshards: usize| -> (f64, f64, u64) {
            let cluster = StagingCluster::start(nshards, &cluster_cfg).expect("start cluster");
            let client = ShardedClient::connect(
                &cluster.addrs(),
                xlayer_staging::shard::DEFAULT_SPAN,
                ClientConfig::default(),
            )
            .expect("cluster client");
            let deliver = |version: u64| -> u64 {
                let mut bytes = 0u64;
                for obj in &objects {
                    let mut o = obj.clone();
                    o.desc.key.version = version;
                    if client.put(&o).is_ok() {
                        bytes += o.desc.bytes;
                    }
                }
                bytes
            };
            let delivered = deliver(1);
            client.evict_before("shard", u64::MAX).expect("evict");
            let mut version = 1u64;
            let put_ns = time_ns(|| {
                version += 1;
                let got = deliver(version);
                client.evict_before("shard", u64::MAX).expect("evict");
                assert_eq!(got, delivered, "placement drifted between batches");
            });
            version += 1;
            let seeded = deliver(version);
            assert_eq!(seeded, delivered, "get seed drifted");
            let get_ns = time_ns(|| {
                let objs = client.get("shard", version, None).expect("cluster get");
                let bytes: u64 = objs.iter().map(|o| o.desc.bytes).sum();
                assert_eq!(bytes, delivered, "get returned a different set");
            });
            cluster.shutdown();
            (put_ns, get_ns, delivered)
        };

        let (single_put, single_get, single_bytes) = cluster_bench(1);
        assert!(
            single_bytes > 0 && single_bytes < total,
            "single shard should hold part of the working set, delivered {single_bytes}"
        );
        let (shard_put, shard_get, shard_bytes) = cluster_bench(4);
        assert_eq!(
            shard_bytes, total,
            "4-shard cluster failed to absorb the working set"
        );
        let mib = |b: u64| b as f64 / (1u64 << 20) as f64;
        for (name, ns, bytes) in [
            ("net_single_put_throughput", single_put, single_bytes),
            ("net_single_get_throughput", single_get, single_bytes),
            ("net_sharded_put_throughput", shard_put, shard_bytes),
            ("net_sharded_get_throughput", shard_get, shard_bytes),
        ] {
            let per_mib = ns / mib(bytes);
            println!("{name:<44} {per_mib:>14.1} ns/MiB delivered");
            results.borrow_mut().push((name, per_mib));
        }
    }

    // Disk spill tier: the demote and promote directions of the tier pipe
    // in ns per MiB (2 MiB object, chunked + checksummed extents through
    // the shared buffer pool), and the disk-hit rate of a working set held
    // at 4x the staging memory — every get past the resident quarter is
    // answered by the tier instead of a rejection. The capacity gain that
    // buys is the derived `staging_tier_capacity_gain`.
    let tier_capacity_gain;
    {
        use std::sync::Arc;
        use xlayer_staging::{BufferPool, DiskTier, ObjectKey, StagingServer, TierConfig};

        let dir = std::env::temp_dir().join(format!("xlayer-tier-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tier scratch dir");
        let b = IBox::cube(64);
        let fab = Fab::filled(b, 1, 1.0);
        let obj = DataObject::from_fab("spill", 1, &fab, 0, &b, 0);
        let mib = obj.desc.bytes as f64 / (1u64 << 20) as f64;
        assert_eq!(obj.desc.bytes, 2 << 20, "bench object is 2 MiB");
        let key = ObjectKey::new("spill", 1);
        // Compact eagerly so the log's on-disk footprint stays bounded by
        // the batch loop instead of growing with every timed iteration.
        let cfg = TierConfig::new(&dir).with_compact_min_dead(32 << 20);
        let tier =
            DiskTier::open(dir.join("bench.log"), &cfg, Arc::new(BufferPool::new())).expect("tier");
        let spill_ns = time_ns(|| {
            tier.spill(&obj).expect("spill");
            tier.remove(&key).expect("remove");
        });
        tier.spill(&obj).expect("seed promote bench");
        let promote_ns = time_ns(|| {
            let got = tier.fetch(&key, None).expect("fetch");
            assert_eq!(got.len(), 1, "promote read lost the object");
        });

        // Hit rate: 8 x 2 MiB versions against 4 MiB of memory (4x the
        // cap). Walking every version front to back promotes each cold
        // version and demotes a resident one, so most gets touch disk.
        let hit_cfg = TierConfig::new(&dir).with_compact_min_dead(32 << 20);
        let hit_tier = Arc::new(
            DiskTier::open(dir.join("hit.log"), &hit_cfg, Arc::new(BufferPool::new()))
                .expect("hit tier"),
        );
        let cap = 2 * obj.desc.bytes;
        let server = StagingServer::with_tier(0, cap, Arc::clone(&hit_tier));
        for v in 1..=8u64 {
            let mut o = obj.clone();
            o.desc.key.version = v;
            server.put(o).expect("tiered put");
        }
        let mut served = 0u64;
        for v in 1..=8u64 {
            let got = server.get(&ObjectKey::new("spill", v), None);
            assert_eq!(got.len(), 1, "4x working set lost version {v}");
            served += 1;
        }
        let snap = hit_tier.snapshot();
        let hit_rate = snap.disk_hits as f64 / served as f64;
        tier_capacity_gain = (server.used() + hit_tier.disk_used()) as f64 / cap as f64;
        assert!(snap.disk_hits > 0, "4x working set never touched the tier");

        for (name, v, unit) in [
            ("staging_spill_throughput", spill_ns / mib, "ns/MiB"),
            ("staging_promote_throughput", promote_ns / mib, "ns/MiB"),
            ("staging_tier_hit_rate", hit_rate, "ratio"),
        ] {
            println!("{name:<44} {v:>14.3} {unit}");
            results.borrow_mut().push((name, v));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // xbench: a short loopback saturation sweep — 2 staging shards and 2
    // in-process load agents on ephemeral ports, offered load doubled
    // once. The goodput at the knee, the knee's offered load, and the
    // fleet-wide retry amplification (wire attempts per completed op,
    // exactly 1.0 when no retry fired) land in the summary so regressions
    // in the distributed path are caught by the same schema gate as the
    // kernel numbers.
    {
        use xlayer_xbench::ctl::{run_loopback_sweep, SweepOptions};
        use xlayer_xbench::WorkloadSpec;

        let spec = WorkloadSpec {
            seed: 7,
            agents: 2,
            connections: 2,
            ops_per_conn: 30,
            warmup_ops: 5,
            side_min: 4,
            side_max: 8,
            names: 3,
            spread: 2,
            ..WorkloadSpec::default()
        };
        let opts = SweepOptions {
            start_rate_bytes_per_sec: 4 << 20,
            max_steps: 2,
            improve_frac: 0.05,
        };
        let sweep = run_loopback_sweep(2, 2, &spec, &opts).expect("xbench loopback sweep");
        assert!(
            !sweep.rows.is_empty() && sweep.saturation_goodput_mibps > 0.0,
            "xbench sweep measured nothing"
        );
        for (name, v, unit) in [
            (
                "xbench_saturation_goodput_mibps",
                sweep.saturation_goodput_mibps,
                "MiB/s",
            ),
            (
                "xbench_knee_offered_load",
                sweep.knee_offered_mibps,
                "MiB/s",
            ),
            ("xbench_retry_amplification", sweep.retry_amplification, "x"),
        ] {
            println!("{name:<44} {v:>14.3} {unit}");
            results.borrow_mut().push((name, v));
        }
    }

    let results = results.into_inner();
    let produced: Vec<&str> = results.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        produced, EXPECTED_BENCH_KEYS,
        "bench_summary and EXPECTED_BENCH_KEYS are out of sync"
    );

    let ns_of = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
            .unwrap_or(f64::NAN)
    };
    let derived: Vec<(&str, f64)> = vec![
        (
            "exchange_cached_speedup",
            ns_of("exchange_32c_64box_periodic_uncached")
                / ns_of("exchange_32c_64box_periodic_cached"),
        ),
        (
            "euler_sweep_speedup",
            ns_of("euler_reference_kernel_32c_64box") / ns_of("euler_sweep_kernel_32c_64box"),
        ),
        (
            "downsample_flat_speedup",
            ns_of("downsample_reference_64c_x4") / ns_of("downsample_flat_64c_x4"),
        ),
        (
            "mse_flat_speedup",
            ns_of("mse_reference_64c_x4") / ns_of("mse_flat_64c_x4"),
        ),
        (
            "entropy_flat_speedup",
            ns_of("entropy_reference_64c_256bins") / ns_of("entropy_flat_64c_256bins"),
        ),
        (
            "level_entropy_scan_speedup",
            ns_of("level_entropy_scan_64c_reference") / ns_of("level_entropy_scan_64c_flat"),
        ),
        (
            "mesh_concat_speedup",
            ns_of("mesh_append_64parts") / ns_of("mesh_concat_64parts"),
        ),
        (
            "staging_overlap_speedup",
            ns_of("native_pipeline_sync_16c_4steps")
                / ns_of("native_pipeline_overlapped_16c_4steps"),
        ),
        (
            "net_chunked_speedup_large",
            (ns_of("net_put_whole_64mib") + ns_of("net_get_whole_64mib"))
                / (ns_of("net_put_chunked_throughput") + ns_of("net_get_chunked_throughput")),
        ),
        (
            "net_sharded_speedup",
            (ns_of("net_single_put_throughput") / ns_of("net_sharded_put_throughput")
                + ns_of("net_single_get_throughput") / ns_of("net_sharded_get_throughput"))
                / 2.0,
        ),
        ("staging_tier_capacity_gain", tier_capacity_gain),
    ];
    let derived_names: Vec<&str> = derived.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        derived_names, EXPECTED_DERIVED_KEYS,
        "bench_summary and EXPECTED_DERIVED_KEYS are out of sync"
    );
    println!();
    for (name, v) in &derived {
        println!("{name:<44} {v:>13.2}x");
    }

    let mut json = String::from("{\n  \"unit\": \"ns_per_iter\",\n  \"benches\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns:.1}{sep}\n"));
    }
    json.push_str("  },\n  \"derived\": {\n");
    for (i, (name, v)) in derived.iter().enumerate() {
        let sep = if i + 1 < derived.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v:.2}{sep}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write summary");
    println!("wrote {out_path}");
}
