//! Extension experiment — the paper's two under-explored application-layer
//! knobs: **temporal resolution** ("adapt the spatial and/or temporal
//! resolution", §2/§3: "adjust the frequency of in-situ data reduction")
//! and **region-of-interest analysis** ("limit the analytics to
//! 'interesting' regions", §2).

use xlayer_bench::{advect_trace, gb, print_table, secs};
use xlayer_core::EngineConfig;
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = advect_trace(16, 2, STEPS, 0);
    let cells = 1024u64 * 1024 * 1024;

    let run = |max_interval: u64, budget: f64, roi: f64| {
        let mut cfg =
            WorkflowConfig::titan_advect(4096, Strategy::Adaptive(EngineConfig::global()));
        cfg.scale = trace.scale_to(cells);
        cfg.hints.max_analysis_interval = max_interval;
        cfg.hints.analysis_budget_frac = budget;
        cfg.hints.roi_fraction = roi;
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        wf.run(&mut d, STEPS)
    };

    let mut rows = Vec::new();
    for (label, k, budget, roi) in [
        ("baseline (every step, full domain)", 1, 0.10, 1.0),
        ("temporal: ≤ every 4th, 2% budget", 4, 0.02, 1.0),
        ("ROI: hottest 25% of the domain", 1, 0.10, 0.25),
        ("temporal + ROI", 4, 0.02, 0.25),
    ] {
        let r = run(k, budget, roi);
        let analyzed = r.steps.iter().filter(|s| s.analyzed).count();
        rows.push(vec![
            label.into(),
            format!("{analyzed}/{STEPS}"),
            secs(r.end_to_end.overhead),
            gb(r.data_moved()),
            format!("{:.1}", r.energy.total() / 1e6),
        ]);
    }
    print_table(
        "Extension — temporal-resolution and ROI adaptation (global engine, Titan 4K)",
        &[
            "configuration",
            "steps analyzed",
            "overhead (s)",
            "moved (GB)",
            "energy (MJ)",
        ],
        &rows,
    );
    println!("\nBoth knobs trade analysis fidelity (fewer snapshots / smaller region) for");
    println!("overhead, movement and energy — the §2 trade-off space, now adaptable at runtime.");
}
