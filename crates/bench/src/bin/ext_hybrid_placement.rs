//! Extension experiment — the hybrid placement (§3 names "in-situ,
//! in-transit or hybrid (in-situ + in-transit)"; the evaluation only
//! exercises the pure placements): when the staging queue is busy but will
//! drain mid-analysis, splitting the step's work between the simulation
//! cores and the staging cores beats both pure choices.

use xlayer_bench::{advect_trace, print_table, secs};
use xlayer_core::EngineConfig;
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = advect_trace(16, 2, STEPS, 0);
    let cells = 1024u64 * 1024 * 1024;

    // At the paper's 16:1 ratio the staging side cannot quite keep up in
    // the late (surface-heavy) steps; the keep-up split sends exactly what
    // staging can absorb per production period and analyzes the overflow
    // in-situ.
    let run = |hybrid: bool| {
        let mut engine = EngineConfig::middleware_only();
        engine.enable_hybrid = hybrid;
        let mut cfg = WorkflowConfig::titan_advect(4096, Strategy::Adaptive(engine));
        cfg.scale = trace.scale_to(cells);
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        wf.run(&mut d, STEPS)
    };

    let pure = run(false);
    let hybrid = run(true);

    let rows = vec![
        vec![
            "pure (in-situ | in-transit)".into(),
            secs(pure.end_to_end.overhead),
            secs(pure.end_to_end.total()),
            format!("{}", pure.hybrid_steps()),
        ],
        vec![
            "with hybrid splits".into(),
            secs(hybrid.end_to_end.overhead),
            secs(hybrid.end_to_end.total()),
            format!("{}", hybrid.hybrid_steps()),
        ],
    ];
    print_table(
        "Extension — hybrid placement (Titan 4K, adaptive middleware)",
        &["policy", "overhead (s)", "total (s)", "hybrid steps"],
        &rows,
    );
    if hybrid.hybrid_steps() > 0 {
        println!(
            "\n{} steps used a split; overhead changed {:+.1}% vs the pure policy.",
            hybrid.hybrid_steps(),
            100.0 * (hybrid.end_to_end.overhead / pure.end_to_end.overhead - 1.0)
        );
    } else {
        println!("\nno step offered an interior split at this configuration");
    }
}
