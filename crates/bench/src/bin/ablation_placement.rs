//! Ablation: the middleware placement estimator (Eq. 7) against
//! alternatives — always-in-situ, always-in-transit, and an oracle that
//! per-step picks whichever placement yields the smaller incremental cost.
//!
//! Shows how much of the adaptive gain comes from the *estimate-based*
//! decision rather than from merely mixing placements.

use xlayer_bench::{advect_trace, print_table, secs};
use xlayer_core::EngineConfig;
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = advect_trace(16, 2, STEPS, 0);
    let cells = 1024u64 * 1024 * 1024;

    let run = |strategy| {
        let mut cfg = WorkflowConfig::titan_advect(4096, strategy);
        cfg.scale = trace.scale_to(cells);
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        wf.run(&mut d, STEPS)
    };

    let insitu = run(Strategy::StaticInSitu);
    let intransit = run(Strategy::StaticInTransit);
    let adaptive = run(Strategy::Adaptive(EngineConfig::middleware_only()));

    // The best *static* choice (what a pre-configured workflow could do,
    // the paper's §1 argument against static placement).
    let best_static = insitu
        .end_to_end
        .overhead
        .min(intransit.end_to_end.overhead);

    let rows = vec![
        vec![
            "AlwaysInSitu".into(),
            secs(insitu.end_to_end.overhead),
            secs(insitu.end_to_end.total()),
        ],
        vec![
            "AlwaysInTransit".into(),
            secs(intransit.end_to_end.overhead),
            secs(intransit.end_to_end.total()),
        ],
        vec![
            "Adaptive (Eq. 7)".into(),
            secs(adaptive.end_to_end.overhead),
            secs(adaptive.end_to_end.total()),
        ],
        vec![
            "Best static".into(),
            secs(best_static),
            secs(insitu.end_to_end.sim_time + best_static),
        ],
    ];
    print_table(
        "Ablation — placement policy (Titan 4K, advection)",
        &["policy", "overhead (s)", "total (s)"],
        &rows,
    );
    let gain = best_static / adaptive.end_to_end.overhead.max(1e-9);
    println!(
        "\nadaptive placement beats the best static configuration by {gain:.2}x on overhead —\n         mixing placements per-step is strictly better than any pre-configuration."
    );
    let (a, b) = adaptive.placement_counts();
    println!("adaptive placement mix: {a} in-situ / {b} in-transit steps");
}
