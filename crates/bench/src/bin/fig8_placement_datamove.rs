//! Figure 8 — total simulation→staging data movement with and without the
//! middleware (placement) adaptation, 2K–16K cores.
//!
//! Paper result: adaptive placement reduces overall data movement by
//! 50.00%, 48.00%, 47.90%, 39.04% at 2K, 4K, 8K, 16K vs static
//! in-transit placement (steps adapted to run in-situ move no data).

use xlayer_bench::{advect_trace, gb, print_table, SCALE_SWEEP};
use xlayer_core::EngineConfig;
use xlayer_workflow::Strategy;

fn main() {
    const STEPS: u64 = 40;
    let mut rows = Vec::new();
    for (i, (cores, cells)) in SCALE_SWEEP.iter().enumerate() {
        let trace = advect_trace(16, 2, STEPS, i as i64);
        let rt =
            xlayer_bench::run_strategy(&trace, *cores, *cells, Strategy::StaticInTransit, None);
        let ra = xlayer_bench::run_strategy(
            &trace,
            *cores,
            *cells,
            Strategy::Adaptive(EngineConfig::middleware_only()),
            None,
        );
        let (insitu_steps, intransit_steps) = ra.placement_counts();
        rows.push(vec![
            format!("{}K", cores / 1024),
            gb(rt.data_moved()),
            gb(ra.data_moved()),
            format!(
                "{:.2}%",
                100.0 * (1.0 - ra.data_moved() as f64 / rt.data_moved() as f64)
            ),
            format!("{insitu_steps}/{intransit_steps}"),
        ]);
    }
    print_table(
        "Fig. 8 — aggregated in-situ→in-transit data transfers (GB)",
        &[
            "cores",
            "InTransit (GB)",
            "Adaptive (GB)",
            "reduction",
            "insitu/intransit steps",
        ],
        &rows,
    );
    println!("\nPaper: data movement ↓ 50.00%, 48.00%, 47.90%, 39.04% at 2K/4K/8K/16K.");
}
