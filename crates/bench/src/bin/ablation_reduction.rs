//! Ablation: the application-layer reduction selector — none vs
//! user-defined range-based (Eqs. 1–3) vs entropy-based (Eq. 11) — on the
//! same workload, comparing end-to-end overhead, data movement, and the
//! information actually lost (reconstruction MSE of the finest level).

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_bench::{euler_trace, gb, print_table, secs};
use xlayer_core::{EngineConfig, UserHints};
use xlayer_solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer_viz::downsample::reconstruction_mse;
use xlayer_viz::entropy::{block_entropy, factors_from_entropy, DEFAULT_BINS};
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = euler_trace(16, 3, STEPS);
    let scale = trace.scale_to(128 * 64 * 64) * 24.0;

    // --- timing/data-movement arm: modeled workflow ---
    let run = |engine: EngineConfig, hints: Option<UserHints>| {
        let mut cfg = WorkflowConfig::intrepid_gas(Strategy::Adaptive(engine));
        cfg.scale = scale;
        if let Some(h) = hints {
            cfg.hints = h;
        }
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        wf.run(&mut d, STEPS)
    };
    let none = run(EngineConfig::middleware_only(), None);
    let range = run(
        EngineConfig::global(),
        Some(UserHints::paper_fig5_schedule(STEPS / 2)),
    );

    // --- information-loss arm: real data, per-block factors ---
    let n = 16i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 4,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    for _ in 0..10 {
        sim.advance();
    }
    let level = sim.hierarchy.level(0);
    let entropies: Vec<f64> = (0..level.len())
        .map(|i| block_entropy(level.fab(i), 0, &level.valid_box(i), DEFAULT_BINS))
        .collect();
    let h_lo = entropies.iter().cloned().fold(f64::INFINITY, f64::min);
    let h_hi = entropies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let t = h_lo + 0.5 * (h_hi - h_lo);
    let entropy_factors = factors_from_entropy(&entropies, &[(0.0, 2), (t, 1)]);
    let uniform_factors = vec![2u32; level.len()];

    let mse_of = |factors: &[u32]| -> f64 {
        (0..level.len())
            .map(|i| reconstruction_mse(level.fab(i), 0, factors[i]))
            .sum::<f64>()
            / level.len() as f64
    };

    let rows = vec![
        vec![
            "none".into(),
            secs(none.end_to_end.overhead),
            gb(none.data_moved()),
            format!("{:.3e}", 0.0),
        ],
        vec![
            "range-based (Eqs.1-3)".into(),
            secs(range.end_to_end.overhead),
            gb(range.data_moved()),
            format!("{:.3e}", mse_of(&uniform_factors)),
        ],
        vec![
            "entropy-based (Eq.11)".into(),
            "—".into(),
            "—".into(),
            format!("{:.3e}", mse_of(&entropy_factors)),
        ],
    ];
    print_table(
        "Ablation — reduction selector (overhead & movement from modeled run; MSE from real data)",
        &["selector", "overhead (s)", "moved (GB)", "mean recon MSE"],
        &rows,
    );
    println!(
        "\nentropy-based reduction loses {:.1}x less information than uniform reduction\n\
         at a comparable volume (only low-entropy blocks are reduced).",
        mse_of(&uniform_factors) / mse_of(&entropy_factors).max(1e-300)
    );
}
