//! Figure 1 — distribution of peak memory consumption for an AMR-based
//! Polytropic Gas simulation (Chombo) on 4K cores over 50 time steps.
//!
//! Paper observation: memory usage varies significantly across cores and
//! over time; growth is erratic; peak per-node reaches several GB when
//! memory-hungry processes share a node.
//!
//! We run the real Polytropic Gas blast on a dynamically refining hierarchy
//! distributed over 64 ranks, map each rank onto a block of virtual
//! Intrepid cores (4096 total), and report the per-core memory
//! distribution at every step.

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::memory::{MemoryHistory, MemoryProfile};
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_bench::print_table;
use xlayer_platform::MachineSpec;
use xlayer_solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};

fn main() {
    const REAL_RANKS: usize = 64;
    const VIRT_CORES: usize = 4096;
    const STEPS: u64 = 50;
    let n = 16i64;

    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 3,
            base_max_box: 4,
            nranks: REAL_RANKS,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [n as f64 / 2.0; 3],
        radius: n as f64 / 8.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    // Virtual domain: the paper's 128×64×64 base with 3 levels of factor-2
    // refinement on 4K cores. Scale real bytes up to that domain, then down
    // to per-core (64 virtual cores per real rank). Two calibration factors
    // map stored grid state to the resident set Chombo's probes report:
    // the unsplit Godunov solver keeps ~12 state-sized temporaries (flux,
    // primitive and predictor boxes per direction), and the per-core spread
    // within one rank's block of cores mirrors the cross-rank imbalance
    // (×4 on the loaded cores).
    const SOLVER_TEMPORARIES: f64 = 12.0;
    const WITHIN_RANK_SPREAD: f64 = 4.0;
    let virt_base_cells = 128.0 * 64.0 * 64.0;
    let real_base_cells = (n * n * n) as f64;
    let bytes_scale = virt_base_cells / real_base_cells * SOLVER_TEMPORARIES * WITHIN_RANK_SPREAD
        / (VIRT_CORES / REAL_RANKS) as f64;

    let mb = |b: f64| b * bytes_scale / (1 << 20) as f64;
    let mut history = MemoryHistory::new();
    let mut rows = Vec::new();
    for step in 0..STEPS {
        sim.advance();
        let p = sim.memory_profile();
        let sorted = {
            let mut v = p.bytes_per_rank.clone();
            v.sort_unstable();
            v
        };
        let q = |f: f64| sorted[((f * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
        rows.push(vec![
            format!("{}", step + 1),
            format!("{:.1}", mb(p.min() as f64)),
            format!("{:.1}", mb(q(0.25) as f64)),
            format!("{:.1}", mb(q(0.5) as f64)),
            format!("{:.1}", mb(q(0.75) as f64)),
            format!("{:.1}", mb(p.max() as f64)),
            format!("{:.2}", p.imbalance()),
        ]);
        history.record(MemoryProfile {
            step,
            bytes_per_rank: p.bytes_per_rank,
        });
    }

    print_table(
        "Fig. 1 — per-core memory (MB) distribution, Polytropic Gas on 4K virtual cores",
        &["step", "min", "p25", "median", "p75", "max", "imbalance"],
        &rows,
    );

    let peaks = history.peak_per_rank();
    let peak_max = *peaks.iter().max().unwrap() as f64;
    let peak_min = *peaks.iter().min().unwrap() as f64;
    let growth = history.growth();
    let sign_changes = growth
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum())
        .count();
    println!(
        "\npeak per-core memory: min {:.1} MB, max {:.1} MB (x{:.1} spread across ranks)",
        mb(peak_min),
        mb(peak_max),
        peak_max / peak_min.max(1.0)
    );
    println!("step-over-step growth sign changes: {sign_changes} (erratic growth)");
    println!(
        "per-node peak ({} cores/node): {:.2} GB",
        MachineSpec::intrepid().cores_per_node,
        mb(peak_max) * MachineSpec::intrepid().cores_per_node as f64 / 1024.0
    );
    println!(
        "\nPaper: peak memory 20 MB – >300 MB per processor, erratic growth, strong imbalance."
    );
}
