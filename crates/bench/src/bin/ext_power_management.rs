//! Extension experiment — power management (the paper's stated future
//! work, §7: "utilizing such approach on power management in dynamic
//! simulations").
//!
//! Energy consequences of the placement/reduction/allocation decisions:
//! static in-situ burns simulation cores on analysis; static in-transit
//! burns interconnect joules and idles over-allocated staging cores;
//! adaptive and cross-layer configurations reduce both.

use xlayer_bench::{advect_trace, print_table};
use xlayer_core::{EngineConfig, UserHints};
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = advect_trace(16, 2, STEPS, 0);
    let cells = 1024u64 * 1024 * 1024;
    let mj = |j: f64| format!("{:.1}", j / 1e6);

    let mut rows = Vec::new();
    for strategy in [
        Strategy::StaticInSitu,
        Strategy::StaticInTransit,
        Strategy::Adaptive(EngineConfig::middleware_only()),
        Strategy::Adaptive(EngineConfig::global()),
    ] {
        let mut cfg = WorkflowConfig::titan_advect(4096, strategy);
        cfg.scale = trace.scale_to(cells);
        if matches!(strategy, Strategy::Adaptive(c) if c == EngineConfig::global()) {
            cfg.hints = UserHints::paper_fig5_schedule(STEPS / 2);
        }
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        let r = wf.run(&mut d, STEPS);
        rows.push(vec![
            strategy.label().to_string(),
            mj(r.energy.sim_joules),
            mj(r.energy.staging_joules),
            mj(r.energy.network_joules),
            mj(r.energy.total()),
            format!("{:.1}", r.end_to_end.total()),
        ]);
    }
    print_table(
        "Extension — energy by strategy (Titan 4K + 256 staging, MJ)",
        &[
            "strategy",
            "sim MJ",
            "staging MJ",
            "network MJ",
            "total MJ",
            "time (s)",
        ],
        &rows,
    );
    println!("\nCross-layer adaptation reduces energy along with time-to-solution: fewer");
    println!("idle staging core-hours, less interconnect traffic, shorter critical path.");
    println!(
        "(Paper §7 future work; per-core power parameters documented in xlayer-platform::power.)"
    );
}
