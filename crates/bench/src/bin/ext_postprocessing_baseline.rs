//! Extension experiment — the disk-bound post-processing baseline the
//! paper's introduction (and §6) argues against: writing every step's
//! output to the parallel filesystem and analyzing after the run.
//!
//! "The increasing performance gap between computation and I/O in high-end
//! computing environments renders traditional post-processing data
//! analysis approaches based on disk I/O infeasible."

use xlayer_bench::{advect_trace, gb, print_table, secs};
use xlayer_core::EngineConfig;
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

fn main() {
    const STEPS: u64 = 40;
    let trace = advect_trace(16, 2, STEPS, 0);
    let cells = 1024u64 * 1024 * 1024;

    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for strategy in [
        Strategy::PostProcessing,
        Strategy::StaticInSitu,
        Strategy::StaticInTransit,
        Strategy::Adaptive(EngineConfig::middleware_only()),
    ] {
        let mut cfg = WorkflowConfig::titan_advect(4096, strategy);
        cfg.scale = trace.scale_to(cells);
        let wf = ModeledWorkflow::new(cfg);
        let mut d = TraceDriver::new(trace.points.clone());
        let r = wf.run(&mut d, STEPS);
        rows.push(vec![
            strategy.label().to_string(),
            secs(r.end_to_end.sim_time),
            secs(r.end_to_end.overhead),
            secs(r.end_to_end.total()),
            gb(r.data_moved()),
        ]);
        totals.push((strategy.label(), r.end_to_end.total()));
    }
    print_table(
        "Extension — post-processing vs simulation-time analysis (Titan 4K, 40 steps)",
        &[
            "strategy",
            "sim (s)",
            "overhead (s)",
            "total (s)",
            "net moved (GB)",
        ],
        &rows,
    );
    let pp = totals[0].1;
    let adapt = totals[3].1;
    println!(
        "\npost-processing total is {:.2}x the adaptive simulation-time pipeline —",
        pp / adapt
    );
    println!("the I/O gap that motivates in-situ/in-transit processing in the first place.");
}
