//! Figure 10 — cumulative end-to-end execution time: global (cross-layer)
//! adaptation vs local (middleware-only) adaptation, 2K–16K cores.
//!
//! Paper result: the global root–leaf coordination (application-layer
//! reduction feeding the resource and middleware mechanisms) lowers the
//! end-to-end overhead by 52.16%, 84.22%, 97.84%, 88.87% at 2K, 4K, 8K,
//! 16K relative to local middleware adaptation; all three mechanisms are
//! employed and interact.

use xlayer_bench::{advect_trace, print_table, secs, SCALE_SWEEP};
use xlayer_core::{EngineConfig, UserHints};
use xlayer_workflow::Strategy;

fn main() {
    const STEPS: u64 = 40;
    let hints = UserHints::paper_fig5_schedule(STEPS / 2);
    let mut rows = Vec::new();
    for (i, (cores, cells)) in SCALE_SWEEP.iter().enumerate() {
        let trace = advect_trace(16, 2, STEPS, i as i64);
        let local = xlayer_bench::run_strategy(
            &trace,
            *cores,
            *cells,
            Strategy::Adaptive(EngineConfig::middleware_only()),
            None,
        );
        let global = xlayer_bench::run_strategy(
            &trace,
            *cores,
            *cells,
            Strategy::Adaptive(EngineConfig::global()),
            Some(hints.clone()),
        );
        for (label, r) in [("Local", &local), ("Global", &global)] {
            rows.push(vec![
                format!("{}K", cores / 1024),
                label.into(),
                secs(r.end_to_end.sim_time),
                secs(r.end_to_end.overhead),
                secs(r.end_to_end.total()),
            ]);
        }
        rows.push(vec![
            format!("{}K", cores / 1024),
            "—".into(),
            "overhead ↓".into(),
            format!(
                "{:.2}%",
                100.0 * (1.0 - global.end_to_end.overhead / local.end_to_end.overhead)
            ),
            String::new(),
        ]);
    }
    print_table(
        "Fig. 10 — end-to-end time: global (cross-layer) vs local (middleware) adaptation",
        &["cores", "mode", "sim time (s)", "overhead (s)", "total (s)"],
        &rows,
    );
    println!("\nPaper: overhead ↓ 52.16%, 84.22%, 97.84%, 88.87% at 2K/4K/8K/16K.");
}
