//! Ablation: the two in-situ data-reduction operators the paper's
//! application layer can select between (§3: "down-sample factor,
//! compression rate, etc.") — volumetric down-sampling vs error-bounded
//! compression — on real blast-wave density data.
//!
//! Down-sampling gives a fixed, resolution-style reduction; compression
//! adapts to the field's information content with a hard error bound.

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, ProblemDomain};
use xlayer_bench::print_table;
use xlayer_solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer_viz::compress::{compress_fab, decompress};
use xlayer_viz::downsample::{downsample_fab, reconstruction_mse};

fn main() {
    // Real evolved blast density on the base level.
    let n = 16i64;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 16,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    for _ in 0..10 {
        sim.advance();
    }
    let level = sim.hierarchy.level(0);
    let fab = level.fab(0);
    let region = level.valid_box(0);
    let raw_bytes = region.num_cells() * 8;

    let mut rows = Vec::new();
    // Down-sampling arm: per-dimension strides.
    for x in [2u32, 4] {
        let ds = downsample_fab(fab, 0, x);
        let bytes = ds.ibox().num_cells() * 8;
        let mse = reconstruction_mse(fab, 0, x);
        rows.push(vec![
            format!("downsample {x}x/dim"),
            format!("{bytes}"),
            format!("{:.1}x", raw_bytes as f64 / bytes as f64),
            format!("{:.3e}", mse.sqrt()),
            "resolution loss".into(),
        ]);
    }
    // Compression arm: error-bounded.
    for tol in [1e-2f64, 1e-4] {
        let c = compress_fab(fab, 0, &region, tol);
        let back = decompress(&c).expect("decode");
        let mut se = 0.0;
        for iv in region.cells() {
            se += (back.get(iv, 0) - fab.get(iv, 0)).powi(2);
        }
        let rmse = (se / region.num_cells() as f64).sqrt();
        rows.push(vec![
            format!("compress tol={tol:.0e}"),
            format!("{}", c.bytes()),
            format!("{:.1}x", c.ratio()),
            format!("{:.3e}", rmse),
            format!("max err ≤ {:.0e}", tol / 2.0),
        ]);
    }
    print_table(
        &format!("Ablation — reduction operators on blast density ({raw_bytes} raw bytes)"),
        &["operator", "bytes", "ratio", "RMSE", "guarantee"],
        &rows,
    );
    println!("\nCompression reaches similar ratios at orders-of-magnitude lower error on");
    println!("smooth regions, but offers no resolution semantics; down-sampling composes");
    println!("with marching cubes directly. The §3 reduction module exposes both knobs.");
}
