//! Figure 11 — total data movement: global (cross-layer) vs local
//! (middleware-only) adaptation, 2K–16K cores.
//!
//! Paper result: although global adaptation runs *more* steps in-transit
//! (faster post-reduction analysis keeps the staging cores free, Table 2),
//! the application-layer reduction dominates and total transfers drop by
//! 45.93%, 17.25%, 5.76%, 32.41% at 2K, 4K, 8K, 16K vs local adaptation.

use xlayer_bench::{advect_trace, gb, print_table, SCALE_SWEEP};
use xlayer_core::{EngineConfig, UserHints};
use xlayer_workflow::Strategy;

fn main() {
    const STEPS: u64 = 40;
    let hints = UserHints::paper_fig5_schedule(STEPS / 2);
    let mut rows = Vec::new();
    for (i, (cores, cells)) in SCALE_SWEEP.iter().enumerate() {
        let trace = advect_trace(16, 2, STEPS, i as i64);
        let local = xlayer_bench::run_strategy(
            &trace,
            *cores,
            *cells,
            Strategy::Adaptive(EngineConfig::middleware_only()),
            None,
        );
        let global = xlayer_bench::run_strategy(
            &trace,
            *cores,
            *cells,
            Strategy::Adaptive(EngineConfig::global()),
            Some(hints.clone()),
        );
        let (_, local_it) = local.placement_counts();
        let (_, global_it) = global.placement_counts();
        rows.push(vec![
            format!("{}K", cores / 1024),
            gb(local.data_moved()),
            gb(global.data_moved()),
            format!(
                "{:.2}%",
                100.0 * (1.0 - global.data_moved() as f64 / local.data_moved().max(1) as f64)
            ),
            format!("{local_it} → {global_it}"),
        ]);
    }
    print_table(
        "Fig. 11 — data movement: global vs local adaptation (GB)",
        &[
            "cores",
            "Local (GB)",
            "Global (GB)",
            "reduction",
            "in-transit steps",
        ],
        &rows,
    );
    println!("\nPaper: ↓ 45.93%, 17.25%, 5.76%, 32.41% at 2K/4K/8K/16K; in-transit steps increase under global.");
}
