//! Ablation: staging-space sharding — deterministic bbox-hash (DHT-like,
//! reader can locate data without a directory) vs round-robin — comparing
//! shard balance and query fan-out on real AMR object streams.

use xlayer_amr::hierarchy::HierarchyConfig;
use xlayer_amr::{IBox, IntVect, ProblemDomain};
use xlayer_bench::print_table;
use xlayer_solvers::{AmrSimulation, DriverConfig, EulerSolver, GasProblem};
use xlayer_staging::{DataObject, DataSpace, Sharding};

fn main() {
    let n = 16i64;
    let nservers = 8;
    let domain = ProblemDomain::new(IBox::cube(n));
    let mut sim = AmrSimulation::new(
        domain,
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 4,
            ..Default::default()
        },
        EulerSolver::default(),
        DriverConfig {
            cfl: 0.3,
            regrid_interval: 2,
            tag_threshold: 0.04,
            base_dx: 1.0,
            subcycle: false,
            reflux: false,
        },
    );
    let problem = GasProblem::Blast {
        center: [8.0; 3],
        radius: 3.0,
        p_in: 10.0,
        p_out: 0.1,
    };
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);
    sim.regrid_now();
    problem.init_hierarchy(&mut sim.hierarchy, 1.4);

    let mut rows = Vec::new();
    for sharding in [Sharding::BboxHash, Sharding::RoundRobin] {
        let space = DataSpace::new(nservers, 1 << 30, sharding);
        // Stream 6 steps of real per-grid objects.
        let mut objects = 0u64;
        for v in 1..=6u64 {
            sim.advance();
            for l in 0..sim.hierarchy.num_levels() {
                let level = sim.hierarchy.level(l);
                for i in 0..level.len() {
                    let obj =
                        DataObject::from_fab("rho", v, level.fab(i), 0, &level.valid_box(i), 0);
                    space.put(obj).expect("staging put");
                    objects += 1;
                }
            }
        }
        let used = space.used_per_server();
        let total: u64 = used.iter().sum();
        let mean = total as f64 / nservers as f64;
        let max = *used.iter().max().expect("servers") as f64;
        // Query fan-out: how many servers a subregion get must touch.
        let probe = IBox::new(IntVect::splat(4), IntVect::splat(11));
        let hit_servers = space
            .servers()
            .iter()
            .filter(|s| {
                (1..=6).any(|v| {
                    !s.get(&xlayer_staging::ObjectKey::new("rho", v), Some(&probe))
                        .is_empty()
                })
            })
            .count();
        rows.push(vec![
            format!("{sharding:?}"),
            format!("{objects}"),
            format!("{:.3}", max / mean),
            format!("{hit_servers}/{nservers}"),
        ]);
    }
    print_table(
        "Ablation — staging sharding (8 servers, real blast object stream)",
        &["sharding", "objects", "shard imbalance", "query fan-out"],
        &rows,
    );
    println!("\nbbox-hash keeps location deterministic (no directory lookup) at a modest");
    println!("balance cost; round-robin balances bytes but every query touches all shards.");
}
