//! Table 2 — actual in-transit core utilization while performing
//! in-transit analysis under global (cross-layer) adaptation.
//!
//! Paper: with sim:staging ratios 2K:128, 4K:256, 8K:512, 16K:1024, each
//! run's time steps bucket by the fraction of preallocated in-transit
//! cores actually used (100% / 75% / 50% / <50%); in the 4K and 16K cases
//! some steps use less than half the preallocated cores.

use xlayer_bench::{advect_trace, print_table, SCALE_SWEEP};
use xlayer_core::{EngineConfig, UserHints};
use xlayer_workflow::Strategy;

fn main() {
    const STEPS: u64 = 40;
    let hints = UserHints::paper_fig5_schedule(STEPS / 2);
    let mut rows = Vec::new();
    for (i, (cores, cells)) in SCALE_SWEEP.iter().enumerate() {
        let trace = advect_trace(16, 2, STEPS, i as i64);
        let r = xlayer_bench::run_strategy(
            &trace,
            *cores,
            *cells,
            Strategy::Adaptive(EngineConfig::global()),
            Some(hints.clone()),
        );
        let b = r.utilization_buckets();
        let mean_used: f64 = {
            let it: Vec<usize> = r
                .utilization
                .records()
                .iter()
                .filter(|x| x.used > 0)
                .map(|x| x.used)
                .collect();
            it.iter().sum::<usize>() as f64 / it.len().max(1) as f64
        };
        rows.push(vec![
            format!("{}K:{}", cores / 1024, r.preallocated_staging),
            format!("{}", b.total()),
            format!("{}", b.full),
            format!("{}", b.three_quarters),
            format!("{}", b.half),
            format!("{}", b.less_than_half),
            format!("{:.0}", mean_used),
        ]);
    }
    print_table(
        "Table 2 — in-transit core utilization buckets under global adaptation",
        &[
            "sim:staging",
            "IT steps",
            "100%",
            "75%",
            "50%",
            "<50%",
            "mean cores",
        ],
        &rows,
    );
    println!("\nPaper (steps per bucket): 2K:128 → 27 = 25/2/-/-; 4K:256 → 42 = 8/13/4/17;");
    println!("                           8K:512 → 49 = 4/23/22/-; 16K:1024 → 41 = 10/12/10/9.");
}
