//! `xlayer_run` — command-line driver for modeled-scale workflow runs.
//!
//! ```sh
//! cargo run --release -p xlayer-bench --bin xlayer_run -- \
//!     --workload advect --strategy global --cores 4096 --steps 40
//! ```
//!
//! Options (defaults in parentheses):
//! ```text
//!   --workload advect|gas        driving AMR workload        (advect)
//!   --strategy insitu|intransit|postproc|local|global        (global)
//!   --machine titan|intrepid     target machine              (titan)
//!   --cores N                    simulation cores            (4096)
//!   --steps N                    time steps                  (40)
//!   --virt-cells N               virtual base-domain cells   (2^30)
//!   --max-interval K             temporal-adaptation cap     (1)
//!   --roi F                      region-of-interest fraction (1.0)
//!   --hybrid true|false          allow hybrid placement      (false)
//! ```

use xlayer_bench::{advect_trace, euler_trace, gb, pct, print_table, secs, Trace};
use xlayer_core::EngineConfig;
use xlayer_workflow::{ModeledWorkflow, Strategy, TraceDriver, WorkflowConfig};

struct Args {
    workload: String,
    strategy: String,
    machine: String,
    cores: usize,
    steps: u64,
    virt_cells: u64,
    max_interval: u64,
    roi: f64,
    hybrid: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        workload: "advect".into(),
        strategy: "global".into(),
        machine: "titan".into(),
        cores: 4096,
        steps: 40,
        virt_cells: 1 << 30,
        max_interval: 1,
        roi: 1.0,
        hybrid: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        match key {
            "--workload" => a.workload = val.clone(),
            "--strategy" => a.strategy = val.clone(),
            "--machine" => a.machine = val.clone(),
            "--cores" => a.cores = val.parse().map_err(|e| format!("--cores: {e}"))?,
            "--steps" => a.steps = val.parse().map_err(|e| format!("--steps: {e}"))?,
            "--virt-cells" => {
                a.virt_cells = val.parse().map_err(|e| format!("--virt-cells: {e}"))?
            }
            "--max-interval" => {
                a.max_interval = val.parse().map_err(|e| format!("--max-interval: {e}"))?
            }
            "--roi" => a.roi = val.parse().map_err(|e| format!("--roi: {e}"))?,
            "--hybrid" => a.hybrid = val.parse().map_err(|e| format!("--hybrid: {e}"))?,
            other => return Err(format!("unknown option {other}")),
        }
        i += 2;
    }
    Ok(a)
}

fn strategy_of(name: &str, hybrid: bool) -> Result<Strategy, String> {
    let with_hybrid = |mut c: EngineConfig| {
        c.enable_hybrid = hybrid;
        c
    };
    Ok(match name {
        "insitu" => Strategy::StaticInSitu,
        "intransit" => Strategy::StaticInTransit,
        "postproc" => Strategy::PostProcessing,
        "local" => Strategy::Adaptive(with_hybrid(EngineConfig::middleware_only())),
        "global" => Strategy::Adaptive(with_hybrid(EngineConfig::global())),
        "app" => Strategy::Adaptive(with_hybrid(EngineConfig::app_only())),
        "resource" => Strategy::Adaptive(with_hybrid(EngineConfig::resource_only())),
        other => return Err(format!("unknown strategy {other}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nsee the module docs for usage");
            std::process::exit(2);
        }
    };

    println!(
        "recording a real {} AMR trace ({} steps)…",
        args.workload, args.steps
    );
    let trace: Trace = match args.workload.as_str() {
        "advect" => advect_trace(16, 2, args.steps, 0),
        "gas" => euler_trace(16, 3, args.steps),
        other => {
            eprintln!("error: unknown workload {other}");
            std::process::exit(2);
        }
    };
    let strategy = match strategy_of(&args.strategy, args.hybrid) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut cfg = match args.machine.as_str() {
        "titan" => WorkflowConfig::titan_advect(args.cores, strategy),
        "intrepid" => {
            let mut c = WorkflowConfig::intrepid_gas(strategy);
            c.partition.sim_cores = args.cores;
            c
        }
        other => {
            eprintln!("error: unknown machine {other}");
            std::process::exit(2);
        }
    };
    cfg.scale = trace.scale_to(args.virt_cells);
    cfg.hints.max_analysis_interval = args.max_interval;
    cfg.hints.roi_fraction = args.roi;

    let wf = ModeledWorkflow::new(cfg);
    let mut d = TraceDriver::new(trace.points.clone());
    let r = wf.run(&mut d, args.steps);

    let (insitu, intransit) = r.placement_counts();
    let analyzed = r.steps.iter().filter(|s| s.analyzed).count();
    print_table(
        &format!(
            "xlayer_run — {} / {} on {} ({} cores, {} steps)",
            args.workload, args.strategy, args.machine, args.cores, args.steps
        ),
        &["metric", "value"],
        &[
            vec!["sim time (s)".into(), secs(r.end_to_end.sim_time)],
            vec!["overhead (s)".into(), secs(r.end_to_end.overhead)],
            vec!["total (s)".into(), secs(r.end_to_end.total())],
            vec![
                "overhead / sim".into(),
                pct(r.end_to_end.overhead_fraction()),
            ],
            vec!["data moved (GB)".into(), gb(r.data_moved())],
            vec!["in-situ steps".into(), insitu.to_string()],
            vec!["in-transit steps".into(), intransit.to_string()],
            vec![
                "steps analyzed".into(),
                format!("{analyzed}/{}", args.steps),
            ],
            vec!["staging efficiency".into(), pct(r.staging_efficiency())],
            vec![
                "energy (MJ)".into(),
                format!("{:.1}", r.energy.total() / 1e6),
            ],
        ],
    );
}
