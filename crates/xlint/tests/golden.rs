//! Golden tests over the fixture corpus: every rule class has a failing
//! "bad" fixture and a passing "good" fixture, waivers suppress exactly
//! one finding, reason-less waivers are errors, the CLI's exit codes are
//! stable, and the real workspace stays clean under the checked-in
//! config (the acceptance criterion CI enforces).

use std::path::{Path, PathBuf};
use xlint::crossfile::CrossReport;
use xlint::{scan_source, wire_schema, Baseline, Config, CrossFile, Report, Rule};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let p = fixture_dir().join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Scope exactly one rule class at the fixture corpus so each golden test
/// observes only its own rule's findings.
fn cfg_for(rule: Rule) -> Config {
    let scope = vec![PathBuf::from("fixtures")];
    let mut cfg = Config {
        predictor_fns: vec!["predict".to_string()],
        ..Config::default()
    };
    match rule {
        Rule::Determinism => {
            cfg.determinism_paths = scope.clone();
            cfg.kernel_modules = scope;
        }
        Rule::PanicFreedom => cfg.panic_freedom_paths = scope,
        Rule::FloatDiscipline => cfg.float_discipline_paths = scope,
        Rule::KernelFloors => cfg.kernel_floor_modules = scope,
        Rule::WaiverSyntax => cfg.determinism_paths = scope,
        Rule::LockDiscipline => {
            cfg.lock_paths = scope;
            cfg.guarded_by = vec![
                ("spilled_key_count".to_string(), "inner".to_string()),
                ("has_spilled".to_string(), "inner".to_string()),
            ];
        }
        Rule::Atomics => cfg.atomics_paths = scope,
        // Rule S runs over the wire module directly (see the s_* tests);
        // fixture-tree scans don't need a scope for it.
        Rule::WireSchema => {}
    }
    cfg
}

/// Run the cross-file passes (rules L and A) over a single fixture.
fn cross_scan(name: &str, cfg: &Config) -> CrossReport {
    let mut cf = CrossFile::new();
    cf.add_file(&fixture(name), &Path::new("fixtures").join(name), cfg);
    cf.finish(cfg)
}

fn scan(name: &str, cfg: &Config) -> Report {
    let mut report = Report::default();
    let rel = Path::new("fixtures").join(name);
    scan_source(&fixture(name), &rel, cfg, &mut report);
    report
}

#[test]
fn d_bad_flags_hashed_collections_and_clock() {
    let r = scan("d_bad.rs", &cfg_for(Rule::Determinism));
    assert!(!r.violations.is_empty());
    assert!(r.violations.iter().all(|v| v.rule == Rule::Determinism));
    for needle in ["HashMap", "HashSet", "Instant"] {
        assert!(
            r.violations.iter().any(|v| v.message.contains(needle)),
            "expected a finding mentioning {needle}"
        );
    }
}

#[test]
fn d_good_is_clean() {
    let r = scan("d_good.rs", &cfg_for(Rule::Determinism));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn p_bad_flags_unwrap_expect_panic_and_literal_index() {
    let r = scan("p_bad.rs", &cfg_for(Rule::PanicFreedom));
    assert!(r.violations.iter().all(|v| v.rule == Rule::PanicFreedom));
    for needle in ["unwrap", "expect", "panic!", "index"] {
        assert!(
            r.violations.iter().any(|v| v.message.contains(needle)),
            "expected a finding mentioning {needle}: {:?}",
            r.violations
        );
    }
    assert_eq!(r.violations.len(), 4);
}

#[test]
fn p_good_is_clean() {
    let r = scan("p_good.rs", &cfg_for(Rule::PanicFreedom));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn f_bad_flags_exact_float_comparison() {
    let r = scan("f_bad.rs", &cfg_for(Rule::FloatDiscipline));
    assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
    assert!(r.violations.iter().all(|v| v.rule == Rule::FloatDiscipline));
}

#[test]
fn f_good_bitwise_and_tolerance_are_clean() {
    let r = scan("f_good.rs", &cfg_for(Rule::FloatDiscipline));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn k_bad_predictor_without_marker_fails() {
    let r = scan("k_bad.rs", &cfg_for(Rule::KernelFloors));
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    assert_eq!(r.violations[0].rule, Rule::KernelFloors);
    assert_eq!(r.markers, 0);
}

#[test]
fn k_good_marker_attests_the_predictor() {
    let r = scan("k_good.rs", &cfg_for(Rule::KernelFloors));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.markers, 1);
}

#[test]
fn l_bad_flags_cycle_held_io_and_late_probe() {
    let r = cross_scan("l_bad.rs", &cfg_for(Rule::LockDiscipline));
    assert!(r.violations.iter().all(|v| v.rule == Rule::LockDiscipline));
    assert!(
        r.violations.iter().any(|v| v.message.contains("cycle")),
        "{:?}",
        r.violations
    );
    assert!(r
        .violations
        .iter()
        .any(|v| v.message.contains("blocking I/O")));
    assert!(r
        .violations
        .iter()
        .any(|v| v.message.contains("has_spilled")));
}

#[test]
fn l_good_is_clean() {
    let r = cross_scan("l_good.rs", &cfg_for(Rule::LockDiscipline));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn l_waiver_suppresses_exactly_one_hold() {
    let r = cross_scan("l_waiver.rs", &cfg_for(Rule::LockDiscipline));
    assert_eq!(r.waived.len(), 1, "waived: {:?}", r.waived);
    assert_eq!(r.violations.len(), 1, "violations: {:?}", r.violations);
    assert!(r.violations[0].line > r.waived[0].line);
}

/// Reverting the PR 8 `get()` race fix — probing the tier's spilled state
/// before taking the store lock — must re-trigger rule L.
#[test]
fn l_regression_pre_fix_get_shape_fails() {
    let r = cross_scan("l_regression_get.rs", &cfg_for(Rule::LockDiscipline));
    assert!(
        r.violations
            .iter()
            .any(|v| v.message.contains("re-check-after-release")),
        "{:?}",
        r.violations
    );
}

#[test]
fn a_bad_flags_mixed_ordering_and_unfused_rmw() {
    let r = cross_scan("a_bad.rs", &cfg_for(Rule::Atomics));
    assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
    assert!(r.violations.iter().all(|v| v.rule == Rule::Atomics));
    assert!(r.violations.iter().any(|v| v.message.contains("fetch_")));
    assert!(r.violations.iter().any(|v| v.message.contains("SeqCst")));
}

#[test]
fn a_good_is_clean() {
    let r = cross_scan("a_good.rs", &cfg_for(Rule::Atomics));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

// --- rule S: the real wire module against the committed pin ------------

fn wire_source() -> String {
    std::fs::read_to_string(workspace_root().join("crates/net/src/wire.rs")).unwrap()
}

fn committed_pin() -> Vec<String> {
    wire_schema::parse_pin(&std::fs::read_to_string(workspace_root().join("xlint.wire")).unwrap())
}

#[test]
fn s_wire_fingerprint_matches_committed_pin() {
    let ws = wire_schema::extract(&wire_source());
    assert_eq!(wire_schema::compare(&ws, &committed_pin()), None);
}

/// Mutating a `StatsOk` body field without bumping `VERSION` must fail
/// the scan, and the message must say so — the acceptance criterion.
#[test]
fn s_field_mutation_without_version_bump_fails() {
    let mutated = wire_source().replace("pub tier_disk_hits: u64", "pub tier_hits_disk: u64");
    let ws = wire_schema::extract(&mutated);
    let (rule, _, message) = wire_schema::compare(&ws, &committed_pin()).expect("must drift");
    assert_eq!(rule, Rule::WireSchema);
    assert!(message.contains("without a VERSION bump"), "{message}");
}

#[test]
fn s_error_code_renumber_without_version_bump_fails() {
    let mutated = wire_source().replace(
        "ErrorFrame::ShuttingDown => 4,",
        "ErrorFrame::ShuttingDown => 6,",
    );
    let ws = wire_schema::extract(&mutated);
    let (_, _, message) = wire_schema::compare(&ws, &committed_pin()).expect("must drift");
    assert!(message.contains("without a VERSION bump"), "{message}");
}

/// The same layout change *with* a bump still drifts (the pin is stale),
/// but the message flips to "regenerate the pin".
#[test]
fn s_version_bump_asks_for_pin_regeneration() {
    let mutated = wire_source()
        .replace("pub tier_disk_hits: u64", "pub tier_hits_disk: u64")
        .replace("pub const VERSION: u16 = 3;", "pub const VERSION: u16 = 4;");
    let ws = wire_schema::extract(&mutated);
    let (_, _, message) = wire_schema::compare(&ws, &committed_pin()).expect("must drift");
    assert!(message.contains("--write-wire-pin"), "{message}");
}

#[test]
fn waiver_suppresses_exactly_one_finding() {
    let r = scan("waiver_one.rs", &cfg_for(Rule::Determinism));
    assert_eq!(r.waived.len(), 1, "waived: {:?}", r.waived);
    assert_eq!(r.violations.len(), 1, "violations: {:?}", r.violations);
    assert!(r.violations[0].line > r.waived[0].line);
}

#[test]
fn reasonless_waiver_is_an_error_and_does_not_waive() {
    let r = scan("waiver_noreason.rs", &cfg_for(Rule::Determinism));
    assert!(
        r.violations.iter().any(|v| v.rule == Rule::WaiverSyntax),
        "{:?}",
        r.violations
    );
    // The malformed waiver must not suppress the HashMap finding below it.
    assert!(r.violations.iter().any(|v| v.rule == Rule::Determinism));
    assert!(r.waived.is_empty());
}

// --- acceptance regressions over real workspace sources ---------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace_config() -> Config {
    let text = std::fs::read_to_string(workspace_root().join("xlint.toml")).unwrap();
    Config::parse(&text).unwrap()
}

/// The checked-in config over the real tree: zero unwaived violations.
/// This is the same gate `scripts/check.sh` and CI run.
#[test]
fn workspace_self_scan_is_clean() {
    let root = workspace_root();
    let cfg = workspace_config();
    let baseline = match &cfg.baseline {
        Some(p) => Baseline::parse(&std::fs::read_to_string(root.join(p)).unwrap()).unwrap(),
        None => Baseline::default(),
    };
    let report = xlint::run(&root, &cfg, &baseline).unwrap();
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "unwaived violations:\n{}",
        rendered.join("\n")
    );
    assert!(report.markers >= 2, "euler.rs floor markers missing");
}

/// Deleting a `floors-applied` marker from the Euler predictors must make
/// the scan fail (K), and reintroducing a HashMap into the welded-mesh
/// path must make it fail (D) — the two incidents this linter encodes.
#[test]
fn stripped_marker_and_rehashed_mesh_fail() {
    let root = workspace_root();
    let cfg = workspace_config();

    let euler = std::fs::read_to_string(root.join("crates/solvers/src/euler.rs")).unwrap();
    let stripped: String = euler
        .lines()
        .filter(|l| !l.contains("xlint: floors-applied"))
        .map(|l| format!("{l}\n"))
        .collect();
    let mut r = Report::default();
    scan_source(
        &stripped,
        Path::new("crates/solvers/src/euler.rs"),
        &cfg,
        &mut r,
    );
    assert!(
        r.violations.iter().any(|v| v.rule == Rule::KernelFloors),
        "deleting markers should fail rule K"
    );

    let mesh = std::fs::read_to_string(root.join("crates/viz/src/mesh.rs")).unwrap();
    let rehashed = mesh.replace("BTreeMap", "HashMap");
    let mut r = Report::default();
    scan_source(&rehashed, Path::new("crates/viz/src/mesh.rs"), &cfg, &mut r);
    assert!(
        r.violations.iter().any(|v| v.rule == Rule::Determinism),
        "reverting the BTreeMap weld fix should fail rule D"
    );
}

// --- CLI exit codes ----------------------------------------------------

fn run_cli(tree: &str) -> std::process::ExitStatus {
    std::process::Command::new(env!("CARGO_BIN_EXE_xlint"))
        .arg("--root")
        .arg(fixture_dir().join(tree))
        .status()
        .unwrap()
}

#[test]
fn exit_codes_distinguish_clean_violation_and_internal_error() {
    assert_eq!(run_cli("tree_good").code(), Some(0));
    assert_eq!(run_cli("tree_bad").code(), Some(1));
    assert_eq!(run_cli("tree_badcfg").code(), Some(2));
}

fn run_cli_args(tree: &str, args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xlint"))
        .arg("--root")
        .arg(fixture_dir().join(tree))
        .args(args)
        .output()
        .unwrap()
}

#[test]
fn check_wire_pin_distinguishes_match_and_drift() {
    let ok = run_cli_args("tree_wire", &["--check-wire-pin"]);
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    let drift = run_cli_args("tree_wire_drift", &["--check-wire-pin"]);
    assert_eq!(drift.status.code(), Some(1));
    let text = String::from_utf8(drift.stdout).unwrap();
    assert!(text.contains("[S]"), "{text}");
    assert!(text.contains("src/wire.rs"), "{text}");
}

/// The `--waivers` audit lists every inline waiver as `file:line: [RULES]
/// reason` — pinned verbatim so the output stays machine-greppable.
#[test]
fn waivers_audit_output_is_pinned() {
    let out = run_cli_args("tree_waivers", &["--waivers"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        text,
        "src/lib.rs:1: [D] counts only, never iterated\n\
         src/lib.rs:5: [D] length query, order-free\n\
         xlint: 2 inline waivers\n"
    );
}

#[test]
fn json_format_emits_machine_readable_violations() {
    let out = run_cli_args("tree_bad", &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("{\"violations\":["), "{text}");
    assert!(text.contains("\"rule\":\"D\""), "{text}");
    assert!(text.contains("\"file\":"), "{text}");
    assert!(text.contains("\"line\":"), "{text}");
    // Exactly one line of output: a single JSON object.
    assert_eq!(text.lines().count(), 1, "{text}");

    let waivers = run_cli_args("tree_waivers", &["--waivers", "--format", "json"]);
    let text = String::from_utf8(waivers.stdout).unwrap();
    assert!(text.starts_with("{\"waivers\":["), "{text}");
    assert!(
        text.contains("\"reason\":\"counts only, never iterated\""),
        "{text}"
    );
}
