//! Fixture: rule D clean — ordered collections, no wall-clock.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn ordered() -> usize {
    let m: BTreeMap<u64, f64> = BTreeMap::new();
    let s: BTreeSet<u64> = BTreeSet::new();
    m.len() + s.len()
}
