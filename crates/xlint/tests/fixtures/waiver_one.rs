//! Fixture: an inline waiver suppresses exactly one finding — the one on
//! its own line or the line directly below, never anything further away.
// xlint: allow(D) -- bounded scratch map, never iterated
use std::collections::HashMap;
use std::collections::HashMap as AlsoHashed;
