//! Rule A fixture, clean variant: one Ordering class per field and an
//! RMW where the increment must be atomic.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct C {
    hits: AtomicU64,
    total: AtomicU64,
}

impl C {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn read(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    fn write(&self) {
        self.total.store(1, Ordering::Release);
    }
}
