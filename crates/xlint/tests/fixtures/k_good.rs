//! Fixture: rule K clean — the predictor carries the marker.
pub fn predict_faces(lo: &mut [f64; 5], hi: &mut [f64; 5], slope: &[f64; 5]) {
    for c in 0..5 {
        lo[c] -= 0.5 * slope[c];
        hi[c] += 0.5 * slope[c];
    }
    // xlint: floors-applied -- density and pressure clamped to SMALL
    lo[0] = lo[0].max(1.0e-12);
    hi[0] = hi[0].max(1.0e-12);
}
