//! Fixture: a reason-less waiver is itself an error, and does not waive.
// xlint: allow(D)
use std::collections::HashMap;
