//! Fixture: rule P violations — unwrap/expect/panic!/literal indexing in
//! a service path.
pub fn service(v: &[u64]) -> u64 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("second element");
    if *first == 0 {
        panic!("peer sent zero");
    }
    v[0] + first + second
}
