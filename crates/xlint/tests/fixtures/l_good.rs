//! Rule L fixture, clean variant: one consistent acquisition order, the
//! guard dropped before I/O, and the probe called under a live guard.

use parking_lot::{Mutex, RwLock};
use std::io::Write;

pub struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
    inner: RwLock<u64>,
    file: std::fs::File,
}

impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let _ = (*ga, *gb);
    }

    fn ab_again(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let _ = (*ga, *gb);
    }

    fn io_after(&mut self) {
        let v = {
            let g = self.a.lock();
            *g as u8
        };
        let _ = self.file.write_all(&[v]);
    }

    fn probe_under(&self) -> bool {
        let s = self.inner.read();
        *s == 0 && self.has_spilled(7)
    }

    fn has_spilled(&self, _k: u64) -> bool {
        false
    }
}
