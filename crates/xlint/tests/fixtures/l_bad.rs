//! Rule L fixture: an a/b vs b/a acquisition-order cycle, a guard held
//! across file I/O, and a guarded probe called outside its guard.

use parking_lot::{Mutex, RwLock};
use std::io::Write;

pub struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
    inner: RwLock<u64>,
    file: std::fs::File,
}

impl S {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let _ = (*ga, *gb);
    }

    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let _ = (*ga, *gb);
    }

    fn held_io(&mut self) {
        let g = self.a.lock();
        let _ = self.file.write_all(&[*g as u8]);
    }

    fn probe_late(&self) -> bool {
        let resident = self.inner.read().count_ones();
        resident == 0 && self.has_spilled(7)
    }

    fn has_spilled(&self, _k: u64) -> bool {
        false
    }
}
