use std::collections::HashMap;

pub fn hashed() -> HashMap<u64, f64> {
    HashMap::new()
}
