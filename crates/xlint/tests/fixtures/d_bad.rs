//! Fixture: rule D violations — hashed collections and wall-clock use.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn hashed() -> usize {
    let m: HashMap<u64, f64> = HashMap::new();
    let s: HashSet<u64> = HashSet::new();
    m.len() + s.len()
}

pub fn timed() -> std::time::Instant {
    std::time::Instant::now()
}
