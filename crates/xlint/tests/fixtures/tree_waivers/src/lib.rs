// xlint: allow(D) -- counts only, never iterated
use std::collections::HashMap;

pub fn count(m: &HashMap<u64, u64>) -> usize {
    // xlint: allow(D) -- length query, order-free
    let n: HashMap<u64, u64> = m.clone();
    n.len()
}
