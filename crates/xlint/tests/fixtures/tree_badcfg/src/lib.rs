pub fn fine() {}
