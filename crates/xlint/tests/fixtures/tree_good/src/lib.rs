use std::collections::BTreeMap;

pub fn ordered() -> BTreeMap<u64, f64> {
    BTreeMap::new()
}
