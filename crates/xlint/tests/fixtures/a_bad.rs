//! Rule A fixture: one field mixes Ordering classes across sites, and an
//! unlocked load-then-store sequence should be a `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct C {
    hits: AtomicU64,
    total: AtomicU64,
}

impl C {
    fn bump(&self) {
        let v = self.hits.load(Ordering::Relaxed);
        self.hits.store(v + 1, Ordering::Relaxed);
    }

    fn read1(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn read2(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn write3(&self) {
        self.total.store(1, Ordering::SeqCst);
    }
}
