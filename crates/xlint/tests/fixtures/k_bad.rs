//! Fixture: rule K violation — a predictor writing primitive states with
//! no `floors-applied` attestation.
pub fn predict_faces(lo: &mut [f64; 5], hi: &mut [f64; 5], slope: &[f64; 5]) {
    for c in 0..5 {
        lo[c] -= 0.5 * slope[c];
        hi[c] += 0.5 * slope[c];
    }
}
