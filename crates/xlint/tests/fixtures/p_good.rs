//! Fixture: rule P clean — Result/Option propagation, checked access.
pub fn service(v: &[u64]) -> Option<u64> {
    let first = v.first()?;
    let second = v.get(1)?;
    Some(first + second)
}
