//! Fixture: rule F violations — exact float comparison.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn not_unit(y: f64) -> bool {
    y != 1.0
}
