//! Rule L regression fixture: the pre-PR 8 `get()` shape. The spilled
//! probes run before the store lock is taken, so a concurrent demoting
//! put can spill the key in the gap and this get returns empty for data
//! that lives on disk. The fixed shape probes under the read guard
//! (see `StagingServer::get`); reverting it must re-trigger rule L.

use parking_lot::RwLock;

pub struct S {
    inner: RwLock<u64>,
}

impl S {
    fn get(&self, key: u64) -> u64 {
        if self.spilled_key_count(key) > 0 && self.has_spilled(key) {
            return self.promote(key);
        }
        let s = self.inner.read();
        *s
    }

    fn spilled_key_count(&self, _k: u64) -> u64 {
        0
    }

    fn has_spilled(&self, _k: u64) -> bool {
        false
    }

    fn promote(&self, k: u64) -> u64 {
        k
    }
}
