//! A miniature wire module for the pin-check CLI fixtures.

pub const VERSION: u16 = 1;

pub enum Op {
    Put = 0x01,
    Get = 0x02,
}

impl Op {
    pub fn from_u8(v: u8) -> Option<Op> {
        match v {
            1 => Some(Op::Put),
            2 => Some(Op::Get),
            _ => None,
        }
    }
}

pub struct Header {
    pub opcode: u8,
    pub request_id: u64,
}

pub enum Frame {
    Put { key: u64, body: Vec<u8> },
    Get { key: u64 },
}

impl Frame {
    pub fn opcode(&self) -> Op {
        match self {
            Frame::Put { .. } => Op::Put,
            Frame::Get { .. } => Op::Get,
        }
    }
}

pub enum Code {
    Bad,
}

impl Code {
    pub fn code(&self) -> u16 {
        match self {
            Code::Bad => 2,
        }
    }
}
