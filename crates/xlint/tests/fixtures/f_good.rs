//! Fixture: rule F clean — bit equality and tolerances.
pub fn is_zero(x: f64) -> bool {
    x.to_bits() == 0.0f64.to_bits()
}

pub fn near_unit(y: f64) -> bool {
    (y - 1.0).abs() < 1e-12
}
