//! Rule L fixture: two identical guard-across-I/O holds, one carrying a
//! reasoned waiver on its acquisition line. Exactly one must survive.

use parking_lot::Mutex;
use std::io::Write;

pub struct S {
    a: Mutex<u64>,
    file: std::fs::File,
}

impl S {
    fn waived(&mut self) {
        // xlint: allow(L) -- this mutex serializes the file itself by design
        let g = self.a.lock();
        let _ = self.file.write_all(&[*g as u8]);
    }

    fn unwaived(&mut self) {
        let g = self.a.lock();
        let _ = self.file.write_all(&[*g as u8]);
    }
}
