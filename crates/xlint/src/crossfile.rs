//! Cross-file analysis: lock discipline (rule L) and atomics discipline
//! (rule A).
//!
//! Unlike the per-file passes in `rules.rs`, these rules need facts from
//! every file before they can judge any one of them: a lock-order cycle
//! is two functions in two files each acquiring the other's lock second,
//! and an atomic field's ordering discipline is defined by all of its
//! use sites together. The [`CrossFile`] accumulator collects per-function
//! facts file by file (`add_file`), then `finish` runs the whole-program
//! passes.
//!
//! The function model is a token-level approximation, not a real CFG:
//!
//! - A *lock acquisition* is `.lock()`, `.read()`, or `.write()` with an
//!   **empty** argument list; the lock's identity is the receiver field
//!   name (`self.inner.read()` acquires `inner`). Non-empty parens
//!   (`file.read(buf)`) are ordinary calls, which disambiguates
//!   `RwLock::read()` from `io::Read::read(buf)`.
//! - A `let`-bound guard lives until its block closes or `drop(var)`;
//!   any other acquisition is a statement-temporary that dies at the
//!   next `;` or block open. (A `match` scrutinee temporary really
//!   lives to the end of the match — a known false-negative.)
//! - Call edges are by *name only*: same-named functions merge. A
//!   stoplist drops ubiquitous std method names (`get`, `take`, ...)
//!   that would otherwise conflate container calls with service
//!   functions; the cost is false negatives through those names.
//!
//! DESIGN.md §6 documents these limits.

use crate::config::Config;
use crate::lexer::{lex, TokKind};
use crate::rules::{FileAnalysis, Rule, Waiver};
use crate::Violation;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Guard-producing methods when called with no arguments.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Identifiers that mean blocking file/socket I/O when they appear in a
/// function body. Bare `read`/`write` are deliberately absent (they are
/// the lock methods); `write_all`/`read_exact`/... carry the signal.
const IO_PRIMITIVES: &[&str] = &[
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "accept",
    "connect",
    "connect_timeout",
    "sync_all",
    "sync_data",
    "write_all",
    "write_vectored",
    "read_exact",
    "read_vectored",
    "read_to_end",
    "read_to_string",
    "flush",
    "set_len",
    "seek",
    "rename",
    "remove_file",
    "create_dir_all",
];

/// Atomic methods. An occurrence only counts as an atomic op when an
/// `Ordering::X` argument is found inside the call parens — that is what
/// separates `AtomicU64::swap` from `slice::swap`.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Keywords and constructors that are never call edges.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "as", "in", "fn", "pub", "unsafe", "impl", "struct", "enum", "trait", "where",
    "use", "mod", "const", "static", "type", "dyn", "crate", "super", "self", "Self", "Some",
    "None", "Ok", "Err", "Box", "Arc", "Rc", "Vec", "String", "Option", "Result", "drop",
];

/// Ubiquitous std method names excluded from the call graph: with
/// name-only merging, `map.get(k)` would otherwise inherit the lock and
/// I/O facts of every service function named `get`. Excluding them
/// trades false negatives through these names for a signal-heavy graph.
const CALL_STOPLIST: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "push",
    "pop",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "extend",
    "drain",
    "retain",
    "first",
    "last",
    "append",
    "split_off",
    "clone",
    "to_vec",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "into",
    "from",
    "new",
    "default",
    "cmp",
    "min",
    "max",
    "take",
    "replace",
    "swap",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok_or",
    "ok_or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "filter",
    "find",
    "any",
    "all",
    "fold",
    "sum",
    "count",
    "collect",
    "into_iter",
    "next",
    "rev",
    "zip",
    "chain",
    "enumerate",
    "copied",
    "cloned",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "starts_with",
    "ends_with",
    "trim",
    "split",
    "split_once",
    "parse",
    "push_str",
    "join",
    "with_capacity",
    "reserve",
    "truncate",
    "resize",
    "sort",
    "sort_by",
    "sort_by_key",
    "position",
    "windows",
    "chunks",
    "unwrap",
    "expect",
    "into_inner",
];

/// Guard adapters: chained onto an acquisition they still yield the
/// guard (`.lock().unwrap()` on a poisoned-capable `std::sync` mutex),
/// so the binding after them is a real guard binding.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// A lock currently held, with the line its guard was acquired on (the
/// line a waiver must sit on to suppress held-across findings).
#[derive(Clone, Debug)]
struct HeldLock {
    lock: String,
    acq_line: u32,
}

/// A live guard during body simulation.
struct Guard {
    /// `Some(name)` for `let`-bound guards, `None` for temporaries.
    var: Option<String>,
    lock: String,
    acq_line: u32,
    /// Brace depth the guard was created at; it dies when the simulation
    /// leaves that depth.
    depth: usize,
}

/// A lock acquisition site with the locks already held at that point.
#[derive(Clone, Debug)]
struct AcqSite {
    lock: String,
    line: u32,
    held: Vec<HeldLock>,
}

/// A call site with the locks held across it.
#[derive(Clone, Debug)]
struct CallSite {
    callee: String,
    line: u32,
    held: Vec<HeldLock>,
}

/// A blocking-I/O primitive used while at least one lock is held.
#[derive(Clone, Debug)]
struct IoSite {
    what: String,
    line: u32,
    held: Vec<HeldLock>,
}

/// One atomic operation (only recorded when an `Ordering::X` argument
/// identifies it as genuinely atomic).
#[derive(Clone, Debug)]
struct AtomicOp {
    field: String,
    method: String,
    ordering: String,
    line: u32,
    /// Token index within the function, for load-then-store sequencing.
    idx: usize,
    /// True if any lock guard was live at this site (a lock-protected
    /// load-then-store is serialized and not flagged).
    locked: bool,
}

/// Facts extracted from one function body.
struct FnFacts {
    name: String,
    file: PathBuf,
    acquires: Vec<AcqSite>,
    calls: Vec<CallSite>,
    io_sites: Vec<IoSite>,
    atomics: Vec<AtomicOp>,
    direct_io: bool,
    lock_scope: bool,
    atomics_scope: bool,
}

/// Result of the cross-file passes, already partitioned by inline
/// waivers (the caller merges these into its [`crate::Report`]).
#[derive(Debug, Default)]
pub struct CrossReport {
    pub violations: Vec<Violation>,
    pub waived: Vec<Violation>,
}

/// Accumulates per-function facts across files, then runs the L and A
/// passes over the merged call graph.
#[derive(Default)]
pub struct CrossFile {
    fns: Vec<FnFacts>,
    waivers: BTreeMap<PathBuf, Vec<Waiver>>,
}

impl CrossFile {
    pub fn new() -> CrossFile {
        CrossFile::default()
    }

    /// Extract facts from one file if it falls in the L or A scope.
    pub fn add_file(&mut self, src: &str, rel: &Path, cfg: &Config) {
        let lock_scope = Config::in_scope(rel, &cfg.lock_paths);
        let atomics_scope = Config::in_scope(rel, &cfg.atomics_paths);
        if !lock_scope && !atomics_scope {
            return;
        }
        let a = FileAnalysis::new(lex(src));
        self.waivers.insert(rel.to_path_buf(), a.waivers.clone());
        let mut i = 0;
        while i < a.code.len() {
            let t = &a.code[i];
            if t.kind == TokKind::Ident
                && t.text == "fn"
                && !a.test.get(i).copied().unwrap_or(false)
            {
                if let Some(name) = a.code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    if let Some((open, close)) = a.body_span(i + 2) {
                        self.fns.push(extract_fn(
                            &a,
                            name.text.clone(),
                            rel,
                            open,
                            close,
                            lock_scope,
                            atomics_scope,
                        ));
                        // Continue *inside* the body so nested fns are
                        // found too (extract_fn skips over them itself).
                        i = open + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    /// Run the cross-file passes and partition findings by the inline
    /// waivers collected from each file.
    pub fn finish(&self, cfg: &Config) -> CrossReport {
        let mut findings: Vec<(PathBuf, Rule, u32, String)> = Vec::new();

        // Merge functions by name (the call-edge approximation).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }

        // Fixpoint: does this function (transitively) perform blocking I/O?
        let mut does_io: Vec<bool> = self.fns.iter().map(|f| f.direct_io).collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if does_io[i] {
                    continue;
                }
                let reaches_io = self.fns[i].calls.iter().any(|c| {
                    by_name
                        .get(c.callee.as_str())
                        .is_some_and(|v| v.iter().any(|&k| does_io[k]))
                });
                if reaches_io {
                    does_io[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Fixpoint: which locks can a call into this function acquire?
        let mut locks_reach: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| f.acquires.iter().map(|a| a.lock.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for c in &self.fns[i].calls {
                    if let Some(v) = by_name.get(c.callee.as_str()) {
                        for &k in v {
                            for l in &locks_reach[k] {
                                if !locks_reach[i].contains(l) {
                                    add.insert(l.clone());
                                }
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    locks_reach[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let callee_does_io = |callee: &str| {
            by_name
                .get(callee)
                .is_some_and(|v| v.iter().any(|&k| does_io[k]))
        };

        // --- L(a): acquisition-order cycles --------------------------
        // Edge (a, b): lock b is acquired (directly or through a call)
        // while a is held. First site wins for attribution.
        let mut edges: BTreeMap<(String, String), (PathBuf, u32, String)> = BTreeMap::new();
        for f in self.fns.iter().filter(|f| f.lock_scope) {
            for acq in &f.acquires {
                for h in &acq.held {
                    if h.lock == acq.lock {
                        // Direct re-acquisition of a held lock: an
                        // immediate self-deadlock, reported as its own
                        // finding rather than a cycle edge.
                        findings.push((
                            f.file.clone(),
                            Rule::LockDiscipline,
                            acq.line,
                            format!(
                                "`{}` is re-acquired while already held (guard from line {}); \
                                 parking_lot locks are not reentrant — this deadlocks",
                                acq.lock, h.acq_line
                            ),
                        ));
                    } else {
                        edges.entry((h.lock.clone(), acq.lock.clone())).or_insert((
                            f.file.clone(),
                            acq.line,
                            format!("`{}` acquired directly", acq.lock),
                        ));
                    }
                }
            }
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                if let Some(v) = by_name.get(c.callee.as_str()) {
                    let mut reach: BTreeSet<&String> = BTreeSet::new();
                    for &k in v {
                        reach.extend(locks_reach[k].iter());
                    }
                    for l in reach {
                        for h in &c.held {
                            // Same-name self edges through calls are
                            // suppressed: with name-only lock identity
                            // they are usually two different structs'
                            // `inner` fields, not reentrancy.
                            if h.lock != *l {
                                edges.entry((h.lock.clone(), l.clone())).or_insert((
                                    f.file.clone(),
                                    c.line,
                                    format!("`{}` acquired via call to `{}`", l, c.callee),
                                ));
                            }
                        }
                    }
                }
            }
        }
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            adj.entry(a.as_str()).or_default().insert(b.as_str());
        }
        let reaches = |from: &str, to: &str| -> bool {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                if n == to {
                    return true;
                }
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        };
        for ((a, b), (file, line, via)) in &edges {
            if reaches(b, a) {
                findings.push((
                    file.clone(),
                    Rule::LockDiscipline,
                    *line,
                    format!(
                        "acquiring `{b}` while holding `{a}` ({via}) completes a lock-order \
                         cycle — `{a}` is also acquired while `{b}` is held elsewhere; \
                         potential deadlock"
                    ),
                ));
            }
        }

        // --- L(b): guard held across blocking I/O --------------------
        // One finding per guard-acquisition line (the waiver site), no
        // matter how many I/O sites the guard covers.
        let mut guard_findings: BTreeMap<(PathBuf, u32), String> = BTreeMap::new();
        for f in self.fns.iter().filter(|f| f.lock_scope) {
            for io in &f.io_sites {
                if let Some(g) = io.held.last() {
                    guard_findings
                        .entry((f.file.clone(), g.acq_line))
                        .or_insert_with(|| {
                            format!(
                                "guard on `{}` (acquired here) is held across blocking I/O \
                                 (`{}` at line {})",
                                g.lock, io.what, io.line
                            )
                        });
                }
            }
            for c in &f.calls {
                if c.held.is_empty() || !callee_does_io(&c.callee) {
                    continue;
                }
                if let Some(g) = c.held.last() {
                    guard_findings
                        .entry((f.file.clone(), g.acq_line))
                        .or_insert_with(|| {
                            format!(
                                "guard on `{}` (acquired here) is held across a call to \
                                 `{}` (line {}), which reaches blocking I/O",
                                g.lock, c.callee, c.line
                            )
                        });
                }
            }
        }
        for ((file, line), msg) in guard_findings {
            findings.push((file, Rule::LockDiscipline, line, msg));
        }

        // --- L(c): re-check-after-release (TOCTOU) -------------------
        // For each configured `probe=lock` pair: in any function that
        // acquires `lock` itself, every call to `probe` must happen
        // under a live guard of `lock`.
        for (probe, lock) in &cfg.guarded_by {
            for f in self.fns.iter().filter(|f| f.lock_scope) {
                if !f.acquires.iter().any(|a| &a.lock == lock) {
                    continue;
                }
                for c in f.calls.iter().filter(|c| &c.callee == probe) {
                    if !c.held.iter().any(|h| &h.lock == lock) {
                        findings.push((
                            f.file.clone(),
                            Rule::LockDiscipline,
                            c.line,
                            format!(
                                "`{probe}()` is guarded by `{lock}` but probed outside the \
                                 guard here; the answer can change before it is acted on \
                                 (re-check-after-release race)"
                            ),
                        ));
                    }
                }
            }
        }

        // --- A: ordering-class consistency ---------------------------
        // Classes: {Relaxed} / {Acquire, Release, AcqRel} / {SeqCst}.
        // Mixing sites *within* a class is fine (Release-store paired
        // with Acquire-load); mixing across classes is not.
        let mut per_field: BTreeMap<&str, Vec<(&FnFacts, &AtomicOp, u8)>> = BTreeMap::new();
        for f in self.fns.iter().filter(|f| f.atomics_scope) {
            for op in &f.atomics {
                if let Some(class) = ordering_class(&op.ordering) {
                    per_field.entry(&op.field).or_default().push((f, op, class));
                }
            }
        }
        for (field, ops) in &per_field {
            let mut counts = [0usize; 3];
            for (_, _, c) in ops {
                counts[*c as usize] += 1;
            }
            if counts.iter().filter(|&&n| n > 0).count() < 2 {
                continue;
            }
            // Majority class wins; ties break toward the weaker class.
            let majority = (0u8..3)
                .max_by_key(|&c| (counts[c as usize], std::cmp::Reverse(c)))
                .unwrap_or(0);
            for (f, op, class) in ops {
                if *class != majority {
                    findings.push((
                        f.file.clone(),
                        Rule::Atomics,
                        op.line,
                        format!(
                            "atomic `{field}` uses Ordering::{} here but {} other site(s) \
                             use the {} class; keep one ordering class per atomic field",
                            op.ordering,
                            counts[majority as usize],
                            class_name(majority)
                        ),
                    ));
                }
            }
        }

        // --- A: load-then-store must be a fetch_* RMW ----------------
        for f in self.fns.iter().filter(|f| f.atomics_scope) {
            let mut flagged: BTreeSet<&str> = BTreeSet::new();
            for st in f
                .atomics
                .iter()
                .filter(|o| o.method == "store" && !o.locked)
            {
                if flagged.contains(st.field.as_str()) {
                    continue;
                }
                let loaded_before = f
                    .atomics
                    .iter()
                    .any(|o| o.method == "load" && o.field == st.field && o.idx < st.idx);
                if loaded_before {
                    flagged.insert(&st.field);
                    findings.push((
                        f.file.clone(),
                        Rule::Atomics,
                        st.line,
                        format!(
                            "load-then-store on atomic `{}`: a concurrent update between \
                             the load and this store is lost; use a fetch_* RMW",
                            st.field
                        ),
                    ));
                }
            }
        }

        // Partition by inline waivers and sort for stable output.
        let mut report = CrossReport::default();
        findings.sort_by(|a, b| (&a.0, a.2, a.1).cmp(&(&b.0, b.2, b.1)));
        findings.dedup();
        for (file, rule, line, message) in findings {
            let waived = self.waivers.get(&file).is_some_and(|ws| {
                ws.iter()
                    .any(|w| w.rules.contains(&rule) && (w.line == line || w.line + 1 == line))
            });
            let v = Violation {
                rule,
                file,
                line,
                message,
            };
            if waived {
                report.waived.push(v);
            } else {
                report.violations.push(v);
            }
        }
        report
    }
}

fn ordering_class(ordering: &str) -> Option<u8> {
    match ordering {
        "Relaxed" => Some(0),
        "Acquire" | "Release" | "AcqRel" => Some(1),
        "SeqCst" => Some(2),
        _ => None,
    }
}

fn class_name(class: u8) -> &'static str {
    match class {
        0 => "Relaxed",
        1 => "Acquire/Release",
        _ => "SeqCst",
    }
}

/// Simulate one function body: track guard liveness and record
/// acquisitions, calls, I/O sites, and atomic ops with the locks held
/// at each point.
fn extract_fn(
    a: &FileAnalysis,
    name: String,
    file: &Path,
    open: usize,
    close: usize,
    lock_scope: bool,
    atomics_scope: bool,
) -> FnFacts {
    let mut f = FnFacts {
        name,
        file: file.to_path_buf(),
        acquires: Vec::new(),
        calls: Vec::new(),
        io_sites: Vec::new(),
        atomics: Vec::new(),
        direct_io: false,
        lock_scope,
        atomics_scope,
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize;
    let mut stmt_let: Option<String> = None;
    let held = |guards: &[Guard]| -> Vec<HeldLock> {
        guards
            .iter()
            .map(|g| HeldLock {
                lock: g.lock.clone(),
                acq_line: g.acq_line,
            })
            .collect()
    };
    let mut j = open + 1;
    while j < close {
        let t = &a.code[j];
        let next = a.code.get(j + 1);
        let prev = j.checked_sub(1).map(|p| &a.code[p]);
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    depth += 1;
                    // Statement temporaries die before a block opens
                    // (condition temporaries are dropped at the brace).
                    guards.retain(|g| g.var.is_some());
                    stmt_let = None;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => {
                    guards.retain(|g| g.var.is_some());
                    stmt_let = None;
                }
                _ => {}
            },
            TokKind::Ident => {
                let text = t.text.as_str();
                let next_is =
                    |s: &str| next.is_some_and(|n| n.kind == TokKind::Punct && n.text == s);
                let prev_is =
                    |s: &str| prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == s);
                if text == "fn" {
                    // Nested fn item: extract separately (via add_file's
                    // outer loop), keep its tokens out of this body.
                    if let Some((_, nclose)) = a.body_span(j + 2) {
                        j = nclose + 1;
                        continue;
                    }
                } else if text == "let" {
                    let name_at = if a
                        .code
                        .get(j + 1)
                        .is_some_and(|n| n.kind == TokKind::Ident && n.text == "mut")
                    {
                        j + 2
                    } else {
                        j + 1
                    };
                    // Only a plain `let NAME = ...` / `let NAME: T = ...`
                    // names a guard. A destructuring pattern — `if let
                    // Some(g) = m.lock()` — would otherwise bind the
                    // scrutinee guard to the *enum constructor* name and
                    // keep it alive to function end; treat those as
                    // temporaries instead (dropped at the brace — an
                    // under-approximation of Rust's end-of-if-let scope,
                    // noted in DESIGN.md §6).
                    stmt_let = a
                        .code
                        .get(name_at)
                        .filter(|n| n.kind == TokKind::Ident)
                        .filter(|_| {
                            a.code.get(name_at + 1).is_some_and(|n| {
                                n.kind == TokKind::Punct && (n.text == "=" || n.text == ":")
                            })
                        })
                        .map(|n| n.text.clone());
                } else if text == "drop" && next_is("(") {
                    if let (Some(v), Some(cl)) = (a.code.get(j + 2), a.code.get(j + 3)) {
                        if v.kind == TokKind::Ident && cl.kind == TokKind::Punct && cl.text == ")" {
                            guards.retain(|g| g.var.as_deref() != Some(v.text.as_str()));
                        }
                    }
                } else if LOCK_METHODS.contains(&text)
                    && prev_is(".")
                    && next_is("(")
                    && a.code
                        .get(j + 2)
                        .is_some_and(|n| n.kind == TokKind::Punct && n.text == ")")
                {
                    // `.lock()` / `.read()` / `.write()` with empty parens:
                    // a guard acquisition on the receiver field.
                    if let Some(recv) = j
                        .checked_sub(2)
                        .and_then(|p| a.code.get(p))
                        .filter(|r| r.kind == TokKind::Ident && r.text != "self")
                    {
                        f.acquires.push(AcqSite {
                            lock: recv.text.clone(),
                            line: t.line,
                            held: held(&guards),
                        });
                        // A guard is `let`-bound only when the acquisition
                        // (possibly through guard adapters and `?`) ends
                        // the initializer. `let out = m.lock().get(k)` binds
                        // `out` to the *result*, not the guard — that guard
                        // is a statement temporary dying at the `;`, and
                        // treating it as bound is exactly how a re-check-
                        // after-release probe hides from the analysis.
                        let var = if acquisition_ends_statement(a, j + 3, close) {
                            stmt_let.take()
                        } else {
                            stmt_let = None;
                            None
                        };
                        guards.push(Guard {
                            var,
                            lock: recv.text.clone(),
                            acq_line: t.line,
                            depth,
                        });
                    }
                    j += 3;
                    continue;
                } else if ATOMIC_METHODS.contains(&text) && prev_is(".") && next_is("(") {
                    if let Some(ordering) = ordering_in_parens(a, j + 1, close) {
                        if let Some(field) = j
                            .checked_sub(2)
                            .and_then(|p| a.code.get(p))
                            .filter(|r| r.kind == TokKind::Ident && r.text != "self")
                        {
                            f.atomics.push(AtomicOp {
                                field: field.text.clone(),
                                method: text.to_string(),
                                ordering,
                                line: t.line,
                                idx: j,
                                locked: !guards.is_empty(),
                            });
                        }
                    }
                } else if IO_PRIMITIVES.contains(&text) {
                    f.direct_io = true;
                    if !guards.is_empty() {
                        f.io_sites.push(IoSite {
                            what: text.to_string(),
                            line: t.line,
                            held: held(&guards),
                        });
                    }
                } else if next_is("(")
                    && !KEYWORDS.contains(&text)
                    && !CALL_STOPLIST.contains(&text)
                {
                    f.calls.push(CallSite {
                        callee: text.to_string(),
                        line: t.line,
                        held: held(&guards),
                    });
                }
            }
            _ => {}
        }
        j += 1;
    }
    f
}

/// True when the token stream at `from` (just past an acquisition's
/// closing paren) reaches the statement-ending `;` through nothing but
/// `?` and guard adapters — i.e. the enclosing `let` binds the guard
/// itself rather than some value derived through it.
fn acquisition_ends_statement(a: &FileAnalysis, from: usize, limit: usize) -> bool {
    let mut j = from;
    while j < limit {
        let t = &a.code[j];
        if t.kind == TokKind::Punct && t.text == ";" {
            return true;
        }
        if t.kind == TokKind::Punct && t.text == "?" {
            j += 1;
            continue;
        }
        // `.adapter( … )` — skip the balanced argument group.
        if t.kind == TokKind::Punct && t.text == "." {
            let is_adapter = a.code.get(j + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && GUARD_ADAPTERS.contains(&n.text.as_str())
            });
            let opens = a
                .code
                .get(j + 2)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
            if is_adapter && opens {
                let mut depth = 0usize;
                let mut k = j + 2;
                while k < limit {
                    let p = &a.code[k];
                    if p.kind == TokKind::Punct {
                        match p.text.as_str() {
                            "(" => depth += 1,
                            ")" => {
                                depth = depth.saturating_sub(1);
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    k += 1;
                }
                j = k + 1;
                continue;
            }
        }
        return false;
    }
    false
}

/// Scan the argument list starting at the `(` token `at` for the first
/// `Ordering::Variant` pair; returns the variant name.
fn ordering_in_parens(a: &FileAnalysis, at: usize, limit: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut j = at;
    while j < limit {
        let t = &a.code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return None;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident && t.text == "Ordering" {
            let c1 = a.code.get(j + 1);
            let c2 = a.code.get(j + 2);
            let v = a.code.get(j + 3);
            if c1.is_some_and(|c| c.kind == TokKind::Punct && c.text == ":")
                && c2.is_some_and(|c| c.kind == TokKind::Punct && c.text == ":")
            {
                if let Some(v) = v.filter(|v| v.kind == TokKind::Ident) {
                    return Some(v.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            lock_paths: vec![PathBuf::from("fixtures")],
            atomics_paths: vec![PathBuf::from("fixtures")],
            guarded_by: vec![("spilled_key_count".into(), "inner".into())],
            ..Config::default()
        }
    }

    fn cross(src: &str) -> CrossReport {
        let cfg = cfg();
        let mut cf = CrossFile::new();
        cf.add_file(src, Path::new("fixtures/x.rs"), &cfg);
        cf.finish(&cfg)
    }

    #[test]
    fn guard_dies_at_scope_end_and_drop() {
        let r = cross(
            "impl S {\n\
             fn a(&self) { let v = { let g = self.log.lock(); *g }; \
             self.f.write_all(&[v]); }\n\
             fn b(&self) { let g = self.log.lock(); drop(g); \
             self.f.write_all(&[0]); }\n\
             }",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn io_under_let_guard_and_temp_guard_flagged() {
        let r = cross(
            "impl S {\n\
             fn a(&self) {\n\
             let g = self.log.lock();\n\
             self.f.write_all(&[*g]);\n\
             }\n\
             fn b(&self) { self.buf.lock().write_all(&[0]); }\n\
             }",
        );
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert!(r.violations.iter().all(|v| v.rule == Rule::LockDiscipline));
        // The let-guard finding sits on the acquisition line (3).
        assert!(r.violations.iter().any(|v| v.line == 3));
    }

    #[test]
    fn chained_acquisition_does_not_bind_the_guard() {
        // `let out = self.inner.read().objects.len();` binds `out` to a
        // value *derived through* the guard — the guard itself dies at
        // the `;`. A probe on the next line is therefore unguarded (the
        // PR 8 describe()-style re-check-after-release), and must flag.
        let r = cross(
            "impl S {\n\
             fn describe(&self) -> usize {\n\
             let out = self.inner.read().objects.len();\n\
             if self.spilled_key_count(out) > 0 { out } else { 0 }\n\
             }\n\
             }",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("spilled_key_count"));
        // Binding the guard first keeps the probe guarded: clean.
        let r = cross(
            "impl S {\n\
             fn describe(&self) -> usize {\n\
             let s = self.inner.read();\n\
             let out = s.objects.len();\n\
             if self.spilled_key_count(out) > 0 { out } else { 0 }\n\
             }\n\
             }",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // `.lock().unwrap()` (std::sync poisoning adapter) still binds.
        let r = cross(
            "impl S {\n\
             fn a(&self) {\n\
             let g = self.log.lock().unwrap();\n\
             self.f.write_all(&[*g]);\n\
             }\n\
             }",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 3);
    }

    #[test]
    fn if_let_scrutinee_guard_is_a_temporary() {
        // `if let Some(v) = *self.forced.lock() { return v; }` — the
        // pattern ident (`Some`) must not become a let-bound guard name,
        // or the scrutinee guard would survive to function end and
        // every later acquisition would grow a false `forced → x` edge.
        let r = cross(
            "impl S {\n\
             fn decide(&self) -> u8 {\n\
             if let Some(v) = *self.forced.lock() { return v; }\n\
             if self.log.lock().is_empty() { 1 } else { 0 }\n\
             }\n\
             fn put(&self) { let g = self.log.lock(); *self.forced.lock() = None; }\n\
             }",
        );
        assert!(
            r.violations.iter().all(|v| !v.message.contains("cycle")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn lock_order_cycle_across_functions() {
        let r = cross(
            "impl S {\n\
             fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n\
             }",
        );
        let cyc: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.message.contains("cycle"))
            .collect();
        assert_eq!(cyc.len(), 2, "{:?}", r.violations);
    }

    #[test]
    fn consistent_order_is_clean() {
        let r = cross(
            "impl S {\n\
             fn x(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             fn y(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             }",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn io_reached_through_call_graph() {
        let r = cross(
            "impl S {\n\
             fn spill(&self) { self.file.sync_all(); }\n\
             fn put(&self) {\n\
             let s = self.inner.write();\n\
             self.spill();\n\
             }\n\
             }",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("spill"));
        assert_eq!(r.violations[0].line, 4);
    }

    #[test]
    fn probe_outside_guard_flagged_inside_clean() {
        let bad = cross(
            "impl S {\n\
             fn get(&self) {\n\
             if self.tier.spilled_key_count() > 0 { return; }\n\
             let s = self.inner.read();\n\
             }\n\
             }",
        );
        assert_eq!(bad.violations.len(), 1, "{:?}", bad.violations);
        assert!(bad.violations[0].message.contains("re-check-after-release"));
        let good = cross(
            "impl S {\n\
             fn get(&self) {\n\
             let s = self.inner.read();\n\
             if self.tier.spilled_key_count() > 0 { return; }\n\
             }\n\
             }",
        );
        assert!(good.violations.is_empty(), "{:?}", good.violations);
    }

    #[test]
    fn mixed_ordering_classes_flagged() {
        let r = cross(
            "impl S {\n\
             fn a(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn b(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn c(&self) -> u64 { self.hits.load(Ordering::SeqCst) }\n\
             }",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::Atomics);
        assert_eq!(r.violations[0].line, 4);
    }

    #[test]
    fn acquire_release_pairing_is_one_class() {
        let r = cross(
            "impl S {\n\
             fn set(&self) { self.stop.store(true, Ordering::Release); }\n\
             fn chk(&self) -> bool { self.stop.load(Ordering::Acquire) }\n\
             }",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn load_then_store_flagged_unless_locked_or_rmw() {
        let bad = cross(
            "impl S {\n\
             fn up(&self) {\n\
             let c = self.gauge.load(Ordering::Relaxed);\n\
             self.gauge.store(c + 1, Ordering::Relaxed);\n\
             }\n\
             }",
        );
        assert_eq!(bad.violations.len(), 1, "{:?}", bad.violations);
        assert!(bad.violations[0].message.contains("fetch_"));
        let locked = cross(
            "impl S {\n\
             fn up(&self) {\n\
             let g = self.m.lock();\n\
             let c = self.gauge.load(Ordering::Relaxed);\n\
             self.gauge.store(c + 1, Ordering::Relaxed);\n\
             }\n\
             }",
        );
        assert!(locked.violations.is_empty(), "{:?}", locked.violations);
        let rmw = cross("impl S { fn up(&self) { self.gauge.fetch_add(1, Ordering::Relaxed); } }");
        assert!(rmw.violations.is_empty(), "{:?}", rmw.violations);
    }

    #[test]
    fn waiver_on_guard_line_suppresses() {
        let r = cross(
            "impl S {\n\
             fn a(&self) {\n\
             let g = self.log.lock(); // xlint: allow(L) -- log mutex guards the file itself\n\
             self.f.write_all(&[0]);\n\
             }\n\
             }",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waived.len(), 1);
    }

    #[test]
    fn vec_swap_is_not_an_atomic_op() {
        let r = cross("impl S { fn a(&self, v: &mut [u8]) { v.swap(0, 1); } }");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
