//! CLI for the workspace invariant linter.
//!
//! ```text
//! xlint [--root <dir>] [--config <xlint.toml>] [--baseline <file>]
//!       [--format text|json] [--waivers | --write-wire-pin | --check-wire-pin]
//! ```
//!
//! Modes: the default scans the workspace; `--waivers` lists every
//! inline waiver (file:line, rules, reason) as an audit trail;
//! `--write-wire-pin` regenerates the committed wire fingerprint after
//! an intentional layout change; `--check-wire-pin` runs only the
//! fingerprint-vs-pin comparison (the `scripts/check.sh` drift gate).
//!
//! Exit codes: `0` clean, `1` violations found (or pin drift), `2`
//! internal error (unreadable file, bad config/baseline, bad arguments)
//! — so CI can distinguish "the code is wrong" from "the linter is
//! broken".

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::{wire_schema, Baseline, Config, Report, XlintError};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Lint,
    Waivers,
    WriteWirePin,
    CheckWirePin,
}

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    format: Format,
    mode: Mode,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        baseline: None,
        format: Format::Text,
        mode: Mode::Lint,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut path_arg = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match a.as_str() {
            "--root" => args.root = Some(path_arg("--root")?),
            "--config" => args.config = Some(path_arg("--config")?),
            "--baseline" => args.baseline = Some(path_arg("--baseline")?),
            "--format" => {
                let v = path_arg("--format")?;
                args.format = match v.to_string_lossy().as_ref() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format must be text or json, got `{other}`")),
                };
            }
            "--waivers" => args.mode = Mode::Waivers,
            "--write-wire-pin" => args.mode = Mode::WriteWirePin,
            "--check-wire-pin" => args.mode = Mode::CheckWirePin,
            "--help" | "-h" => {
                println!(
                    "xlint — workspace invariant linter (rules D/P/F/K/L/S/A, see DESIGN.md §6)\n\
                     usage: xlint [--root <dir>] [--config <xlint.toml>] [--baseline <file>]\n\
                     \x20            [--format text|json] [--waivers | --write-wire-pin | --check-wire-pin]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Locate the workspace root: the nearest ancestor of the current
/// directory containing `xlint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("xlint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no xlint.toml found in {} or any parent (pass --root/--config)",
                    cwd.display()
                ))
            }
        }
    }
}

struct Loaded {
    root: PathBuf,
    cfg: Config,
    baseline: Baseline,
}

fn load(args: &Args) -> Result<Loaded, XlintError> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().map_err(xlint::ConfigError)?,
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("xlint.toml"));
    let config_text = std::fs::read_to_string(&config_path).map_err(|err| XlintError::Io {
        path: config_path.clone(),
        err,
    })?;
    let cfg = Config::parse(&config_text)?;
    let baseline_path = args
        .baseline
        .clone()
        .or_else(|| cfg.baseline.as_ref().map(|b| root.join(b)));
    let baseline = match baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|err| XlintError::Io {
                path: p.clone(),
                err,
            })?;
            Baseline::parse(&text)?
        }
        None => Baseline::default(),
    };
    Ok(Loaded {
        root,
        cfg,
        baseline,
    })
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_report(report: &Report, format: Format) {
    match format {
        Format::Text => {
            for v in &report.violations {
                println!("{v}");
            }
            println!(
                "xlint: {} files scanned — {} violation{}, {} waived inline, \
                 {} grandfathered, {} floor marker{}",
                report.files,
                report.violations.len(),
                if report.violations.len() == 1 {
                    ""
                } else {
                    "s"
                },
                report.waived.len(),
                report.grandfathered.len(),
                report.markers,
                if report.markers == 1 { "" } else { "s" },
            );
        }
        Format::Json => {
            let items: Vec<String> = report
                .violations
                .iter()
                .map(|v| {
                    format!(
                        "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                        json_str(&v.file.display().to_string()),
                        v.line,
                        json_str(&v.rule.letter().to_string()),
                        json_str(&v.message)
                    )
                })
                .collect();
            println!(
                "{{\"violations\":[{}],\"files\":{},\"waived\":{},\"grandfathered\":{},\"markers\":{}}}",
                items.join(","),
                report.files,
                report.waived.len(),
                report.grandfathered.len(),
                report.markers
            );
        }
    }
}

fn wire_config(loaded: &Loaded) -> Result<(PathBuf, PathBuf, wire_schema::WireSchema), XlintError> {
    let (Some(wire_rel), Some(pin_rel)) = (&loaded.cfg.wire_file, &loaded.cfg.wire_pin) else {
        return Err(XlintError::Config(xlint::ConfigError(
            "wire pin modes need [wire_schema] file/pin in xlint.toml".into(),
        )));
    };
    let abs = loaded.root.join(wire_rel);
    let src = std::fs::read_to_string(&abs).map_err(|err| XlintError::Io { path: abs, err })?;
    Ok((
        wire_rel.clone(),
        loaded.root.join(pin_rel),
        wire_schema::extract(&src),
    ))
}

fn run_mode(args: &Args) -> Result<u8, XlintError> {
    let loaded = load(args)?;
    match args.mode {
        Mode::Lint => {
            let report = xlint::run(&loaded.root, &loaded.cfg, &loaded.baseline)?;
            print_report(&report, args.format);
            Ok(u8::from(!report.violations.is_empty()))
        }
        Mode::Waivers => {
            let waivers = xlint::collect_waivers(&loaded.root, &loaded.cfg)?;
            match args.format {
                Format::Text => {
                    for w in &waivers {
                        println!(
                            "{}:{}: [{}] {}",
                            w.file.display(),
                            w.line,
                            w.rules,
                            w.reason
                        );
                    }
                    println!(
                        "xlint: {} inline waiver{}",
                        waivers.len(),
                        if waivers.len() == 1 { "" } else { "s" }
                    );
                }
                Format::Json => {
                    let items: Vec<String> = waivers
                        .iter()
                        .map(|w| {
                            format!(
                                "{{\"file\":{},\"line\":{},\"rules\":{},\"reason\":{}}}",
                                json_str(&w.file.display().to_string()),
                                w.line,
                                json_str(&w.rules),
                                json_str(&w.reason)
                            )
                        })
                        .collect();
                    println!("{{\"waivers\":[{}]}}", items.join(","));
                }
            }
            Ok(0)
        }
        Mode::WriteWirePin => {
            let (_, pin_abs, ws) = wire_config(&loaded)?;
            std::fs::write(&pin_abs, wire_schema::render(&ws)).map_err(|err| XlintError::Io {
                path: pin_abs.clone(),
                err,
            })?;
            println!(
                "xlint: wrote {} ({} fingerprint line{})",
                pin_abs.display(),
                ws.lines.len(),
                if ws.lines.len() == 1 { "" } else { "s" }
            );
            Ok(0)
        }
        Mode::CheckWirePin => {
            let (wire_rel, pin_abs, ws) = wire_config(&loaded)?;
            let pin_text = match std::fs::read_to_string(&pin_abs) {
                Ok(t) => t,
                Err(_) => {
                    println!(
                        "{}:{}: [S] wire pin `{}` missing; generate it with --write-wire-pin",
                        wire_rel.display(),
                        ws.version_line,
                        pin_abs.display()
                    );
                    return Ok(1);
                }
            };
            match wire_schema::compare(&ws, &wire_schema::parse_pin(&pin_text)) {
                None => {
                    println!(
                        "xlint: wire pin matches ({} fingerprint line{})",
                        ws.lines.len(),
                        if ws.lines.len() == 1 { "" } else { "s" }
                    );
                    Ok(0)
                }
                Some((rule, line, message)) => {
                    println!(
                        "{}:{}: [{}] {}",
                        wire_rel.display(),
                        line,
                        rule.letter(),
                        message
                    );
                    Ok(1)
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xlint: internal error: config error: {e}");
            return ExitCode::from(2);
        }
    };
    match run_mode(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("xlint: internal error: {e}");
            ExitCode::from(2)
        }
    }
}
