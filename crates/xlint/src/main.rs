//! CLI for the workspace invariant linter.
//!
//! ```text
//! xlint [--root <dir>] [--config <xlint.toml>] [--baseline <file>]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` internal error
//! (unreadable file, bad config/baseline, bad arguments) — so CI can
//! distinguish "the code is wrong" from "the linter is broken".

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::{Baseline, Config, Report, XlintError};

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut path_arg = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match a.as_str() {
            "--root" => args.root = Some(path_arg("--root")?),
            "--config" => args.config = Some(path_arg("--config")?),
            "--baseline" => args.baseline = Some(path_arg("--baseline")?),
            "--help" | "-h" => {
                println!(
                    "xlint — workspace invariant linter (rules D/P/F/K, see DESIGN.md §6)\n\
                     usage: xlint [--root <dir>] [--config <xlint.toml>] [--baseline <file>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Locate the workspace root: the nearest ancestor of the current
/// directory containing `xlint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("xlint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no xlint.toml found in {} or any parent (pass --root/--config)",
                    cwd.display()
                ))
            }
        }
    }
}

fn run() -> Result<Report, XlintError> {
    let args = parse_args().map_err(xlint::ConfigError)?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().map_err(xlint::ConfigError)?,
    };
    let config_path = args.config.unwrap_or_else(|| root.join("xlint.toml"));
    let config_text = std::fs::read_to_string(&config_path).map_err(|err| XlintError::Io {
        path: config_path.clone(),
        err,
    })?;
    let cfg = Config::parse(&config_text)?;
    let baseline_path = args
        .baseline
        .or_else(|| cfg.baseline.as_ref().map(|b| root.join(b)));
    let baseline = match baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|err| XlintError::Io {
                path: p.clone(),
                err,
            })?;
            Baseline::parse(&text)?
        }
        None => Baseline::default(),
    };
    xlint::run(&root, &cfg, &baseline)
}

fn main() -> ExitCode {
    match run() {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            println!(
                "xlint: {} files scanned — {} violation{}, {} waived inline, \
                 {} grandfathered, {} floor marker{}",
                report.files,
                report.violations.len(),
                if report.violations.len() == 1 {
                    ""
                } else {
                    "s"
                },
                report.waived.len(),
                report.grandfathered.len(),
                report.markers,
                if report.markers == 1 { "" } else { "s" },
            );
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xlint: internal error: {e}");
            ExitCode::from(2)
        }
    }
}
