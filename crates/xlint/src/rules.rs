//! Rule passes over the token stream.
//!
//! Every pass sees a [`FileAnalysis`]: the code tokens of one file with a
//! parallel test-region mask (tokens under `#[cfg(test)]` or `#[test]`
//! items are exempt from every rule — bit-identity tests legitimately
//! compare floats exactly, and test code may unwrap freely), plus the
//! parsed `// xlint:` directives (waivers and floor markers).

use crate::lexer::{Tok, TokKind};

/// The rule classes xlint enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D — determinism: no `HashMap`/`HashSet` in numeric crates, no
    /// wall-clock or RNG use in kernel modules.
    Determinism,
    /// P — panic-freedom: no `.unwrap()`/`.expect()`/`panic!`-family/
    /// literal indexing in service paths.
    PanicFreedom,
    /// F — float discipline: no `==`/`!=` against float expressions
    /// outside `to_bits` equality.
    FloatDiscipline,
    /// K — kernel floor discipline: predictor functions must carry the
    /// `// xlint: floors-applied` marker.
    KernelFloors,
    /// L — lock discipline: no cyclic lock-acquisition orders, no guards
    /// held across blocking I/O on service paths, and no lock-guarded
    /// state probed outside the guard in functions that take the lock
    /// (the re-check-after-release/TOCTOU shape). Cross-file.
    LockDiscipline,
    /// S — wire-schema pin: the wire module's layout fingerprint
    /// (opcodes, frame body field sequences, error codes, `VERSION`)
    /// must match the committed `xlint.wire` pin, and every opcode must
    /// have paired encode/decode arms.
    WireSchema,
    /// A — atomics discipline: each atomic field keeps one `Ordering`
    /// class across every site, and load-then-store sequences on the
    /// same atomic must be `fetch_*` RMWs. Cross-file.
    Atomics,
    /// W — malformed `// xlint:` directives (reason-less waivers, unknown
    /// directives). Not waivable.
    WaiverSyntax,
}

impl Rule {
    /// One-letter code used in output, waivers, and the baseline file.
    pub fn letter(self) -> char {
        match self {
            Rule::Determinism => 'D',
            Rule::PanicFreedom => 'P',
            Rule::FloatDiscipline => 'F',
            Rule::KernelFloors => 'K',
            Rule::LockDiscipline => 'L',
            Rule::WireSchema => 'S',
            Rule::Atomics => 'A',
            Rule::WaiverSyntax => 'W',
        }
    }

    /// Parse a waiver/baseline rule letter. `W` is deliberately absent:
    /// directive-syntax errors cannot be waived away.
    pub fn from_letter(s: &str) -> Option<Rule> {
        match s.trim() {
            "D" => Some(Rule::Determinism),
            "P" => Some(Rule::PanicFreedom),
            "F" => Some(Rule::FloatDiscipline),
            "K" => Some(Rule::KernelFloors),
            "L" => Some(Rule::LockDiscipline),
            "S" => Some(Rule::WireSchema),
            "A" => Some(Rule::Atomics),
            _ => None,
        }
    }
}

/// An inline waiver: `// xlint: allow(D) -- reason`.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub rules: Vec<Rule>,
    pub line: u32,
    /// The mandatory `-- <why this is sound>` text (the `--waivers` audit
    /// surfaces it).
    pub reason: String,
}

/// A finding before file attribution: (rule, line, message).
pub type Finding = (Rule, u32, String);

/// One file's tokens, prepared for rule passes.
pub struct FileAnalysis {
    /// Code tokens only (attributes and lint comments filtered out).
    pub(crate) code: Vec<Tok>,
    /// Parallel to `code`: true for tokens inside test-only items.
    pub(crate) test: Vec<bool>,
    /// Parsed inline waivers.
    pub waivers: Vec<Waiver>,
    /// Lines carrying a `// xlint: floors-applied` marker.
    pub markers: Vec<u32>,
    /// Malformed-directive findings (rule W), produced during parsing.
    pub directive_errors: Vec<Finding>,
}

impl FileAnalysis {
    /// Prepare a lexed token stream: split out directives, compute the
    /// test-region mask.
    pub fn new(tokens: Vec<Tok>) -> FileAnalysis {
        let mut waivers = Vec::new();
        let mut markers = Vec::new();
        let mut directive_errors = Vec::new();
        for t in tokens.iter().filter(|t| t.kind == TokKind::LintComment) {
            parse_directive(
                &t.text,
                t.line,
                &mut waivers,
                &mut markers,
                &mut directive_errors,
            );
        }
        let test_full = test_mask(&tokens);
        let (code, test): (Vec<Tok>, Vec<bool>) = tokens
            .into_iter()
            .zip(test_full)
            .filter(|(t, _)| !matches!(t.kind, TokKind::Attr | TokKind::LintComment))
            .unzip();
        FileAnalysis {
            code,
            test,
            waivers,
            markers,
            directive_errors,
        }
    }

    fn code_at(&self, i: usize) -> Option<&Tok> {
        self.code.get(i)
    }

    fn is_test(&self, i: usize) -> bool {
        self.test.get(i).copied().unwrap_or(false)
    }

    /// Rule D: flag `HashMap`/`HashSet` (when `collections` is true) and
    /// wall-clock/RNG identifiers (when `kernel` is true).
    pub fn determinism(&self, collections: bool, kernel: bool) -> Vec<Finding> {
        const CLOCK_RNG: &[&str] = &[
            "Instant",
            "SystemTime",
            "rand",
            "thread_rng",
            "StdRng",
            "SmallRng",
            "Rng",
        ];
        let mut out = Vec::new();
        for (i, t) in self.code.iter().enumerate() {
            if t.kind != TokKind::Ident || self.is_test(i) {
                continue;
            }
            if collections && (t.text == "HashMap" || t.text == "HashSet") {
                out.push((
                    Rule::Determinism,
                    t.line,
                    format!(
                        "`{}` has nondeterministic iteration order; use BTreeMap/BTreeSet \
                         (or waive a provably non-iterated use)",
                        t.text
                    ),
                ));
            }
            if kernel && CLOCK_RNG.contains(&t.text.as_str()) {
                out.push((
                    Rule::Determinism,
                    t.line,
                    format!(
                        "`{}` in a kernel module: kernels must be pure functions of their \
                         inputs (no wall-clock, no RNG)",
                        t.text
                    ),
                ));
            }
        }
        out
    }

    /// Rule P: `.unwrap()`, `.expect(`, `panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!`, and literal indexing `x[0]`.
    pub fn panic_freedom(&self) -> Vec<Finding> {
        const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
        // Keywords that can precede `[` without it being an index expression.
        const NON_POSTFIX: &[&str] = &[
            "return", "break", "continue", "in", "if", "else", "match", "loop", "while", "for",
            "let", "mut", "ref", "move", "as", "yield",
        ];
        let mut out = Vec::new();
        for (i, t) in self.code.iter().enumerate() {
            if self.is_test(i) {
                continue;
            }
            let prev = i.checked_sub(1).and_then(|p| self.code_at(p));
            let next = self.code_at(i + 1);
            match t.kind {
                TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                    let dotted = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
                    let called = next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "(");
                    if dotted && called {
                        out.push((
                            Rule::PanicFreedom,
                            t.line,
                            format!(
                                "`.{}()` can panic the service; propagate a Result instead",
                                t.text
                            ),
                        ));
                    }
                }
                TokKind::Ident
                    if PANIC_MACROS.contains(&t.text.as_str())
                        && next.is_some_and(|n| n.kind == TokKind::Punct && n.text == "!") =>
                {
                    out.push((
                        Rule::PanicFreedom,
                        t.line,
                        format!("`{}!` aborts the service thread; return an error", t.text),
                    ));
                }
                TokKind::Punct if t.text == "[" => {
                    // Postfix position: an identifier (non-keyword) or a
                    // closing bracket directly before the `[`.
                    let postfix = prev.is_some_and(|p| match p.kind {
                        TokKind::Ident => !NON_POSTFIX.contains(&p.text.as_str()),
                        TokKind::Punct => p.text == ")" || p.text == "]",
                        _ => false,
                    });
                    let lit_index = next.is_some_and(|n| n.kind == TokKind::IntLit)
                        && self
                            .code_at(i + 2)
                            .is_some_and(|n| n.kind == TokKind::Punct && n.text == "]");
                    if postfix && lit_index {
                        out.push((
                            Rule::PanicFreedom,
                            t.line,
                            "literal index can panic on malformed input; use .get(..)".to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Rule F: `==`/`!=` with a float-literal operand, unless `to_bits`
    /// appears nearby (bit-equality tests are the sanctioned form).
    ///
    /// Token-level heuristic: comparisons of two float *variables* carry no
    /// literal and are not caught — the rule targets the dominant pattern
    /// (thresholds and sentinel values compared exactly).
    pub fn float_discipline(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, t) in self.code.iter().enumerate() {
            if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || self.is_test(i) {
                continue;
            }
            let prev_float = i
                .checked_sub(1)
                .and_then(|p| self.code_at(p))
                .is_some_and(|p| p.kind == TokKind::FloatLit);
            // RHS may start with a unary minus.
            let next_float = match self.code_at(i + 1) {
                Some(n) if n.kind == TokKind::FloatLit => true,
                Some(n) if n.kind == TokKind::Punct && n.text == "-" => self
                    .code_at(i + 2)
                    .is_some_and(|n| n.kind == TokKind::FloatLit),
                _ => false,
            };
            if !(prev_float || next_float) {
                continue;
            }
            let window = i.saturating_sub(6)..(i + 7).min(self.code.len());
            let bitwise = self.code[window]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "to_bits");
            if bitwise {
                continue;
            }
            out.push((
                Rule::FloatDiscipline,
                t.line,
                format!(
                    "float `{}` comparison; compare `.to_bits()`, use a tolerance, or waive \
                     an intentional exact-value guard",
                    t.text
                ),
            ));
        }
        out
    }

    /// Rule K: every non-test `fn` whose name contains one of `patterns`
    /// must carry a `// xlint: floors-applied` marker between its `fn`
    /// line and its closing brace. Bodiless declarations (trait methods)
    /// are exempt — they write nothing.
    pub fn kernel_floors(&self, patterns: &[String]) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, t) in self.code.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "fn" || self.is_test(i) {
                continue;
            }
            let Some(name) = self.code_at(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if !patterns.iter().any(|p| name.text.contains(p.as_str())) {
                continue;
            }
            let Some((body_open, body_close)) = self.body_span(i + 2) else {
                continue;
            };
            let start_line = t.line;
            let end_line = self.code[body_close].line;
            let _ = body_open;
            let marked = self
                .markers
                .iter()
                .any(|&m| m >= start_line && m <= end_line);
            if !marked {
                out.push((
                    Rule::KernelFloors,
                    start_line,
                    format!(
                        "predictor `{}` writes face states into scratch; verify the \
                         `.max(SMALL)` positivity floors and add `// xlint: floors-applied`",
                        name.text
                    ),
                ));
            }
        }
        out
    }

    /// From `from` (just past the fn name), find the body's `{`..`}` token
    /// indices. Returns `None` for bodiless declarations (`;` before `{`).
    /// Paren/bracket depth is tracked so `[f64; N]` array types in the
    /// signature don't read as the end of a declaration.
    pub(crate) fn body_span(&self, from: usize) -> Option<(usize, usize)> {
        let mut i = from;
        let mut nest = 0usize;
        let open = loop {
            let t = self.code_at(i)?;
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest = nest.saturating_sub(1),
                    "{" if nest == 0 => break i,
                    ";" if nest == 0 => return None,
                    _ => {}
                }
            }
            i += 1;
        };
        let mut depth = 0usize;
        for (j, t) in self.code.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((open, j));
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

/// Parse one `// xlint: ...` directive body.
fn parse_directive(
    text: &str,
    line: u32,
    waivers: &mut Vec<Waiver>,
    markers: &mut Vec<u32>,
    errors: &mut Vec<Finding>,
) {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix("floors-applied") {
        // Optional `-- note` after the marker; anything else is a typo'd
        // directive and falls through to the unknown-directive error.
        if rest.is_empty() || rest.trim_start().starts_with("--") {
            markers.push(line);
            return;
        }
    }
    if let Some(rest) = text.strip_prefix("allow") {
        let rest = rest.trim_start();
        let Some(inner_and_tail) = rest
            .strip_prefix('(')
            .and_then(|r| r.split_once(')'))
            .map(|(inner, tail)| (inner.to_string(), tail.trim().to_string()))
        else {
            errors.push((
                Rule::WaiverSyntax,
                line,
                "malformed waiver: expected `xlint: allow(<rules>) -- <reason>`".to_string(),
            ));
            return;
        };
        let (inner, tail) = inner_and_tail;
        let mut rules = Vec::new();
        for part in inner.split(',') {
            match Rule::from_letter(part) {
                Some(r) => rules.push(r),
                None => {
                    errors.push((
                        Rule::WaiverSyntax,
                        line,
                        format!(
                            "unknown rule `{}` in waiver (expected D, P, F, K, L, S, or A)",
                            part.trim()
                        ),
                    ));
                    return;
                }
            }
        }
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            errors.push((
                Rule::WaiverSyntax,
                line,
                "waiver without a reason: append `-- <why this is sound>`".to_string(),
            ));
            return;
        }
        waivers.push(Waiver {
            rules,
            line,
            reason: reason.to_string(),
        });
        return;
    }
    errors.push((
        Rule::WaiverSyntax,
        line,
        format!("unknown xlint directive `{text}` (expected allow(..) or floors-applied)"),
    ));
}

/// Compute the test mask over the full token stream: tokens belonging to
/// items annotated `#[cfg(test)]` / `#[test]` are marked true.
fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Attr && is_test_attr(&t.text) {
            let end = item_end(tokens, i + 1);
            for m in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

fn is_test_attr(attr: &str) -> bool {
    let squished: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    if squished == "#[test]" {
        return true;
    }
    // `#[cfg(...)]` predicates gating an item to test builds. `cfg_attr`
    // applies an attribute without gating the item, and `not(test)` gates
    // the item to production — neither marks test code.
    if !squished.starts_with("#[cfg(") || squished.contains("not(") {
        return false;
    }
    // Word-boundary match so e.g. `feature="backtest"` (already masked by
    // the lexer anyway) or `testing_shim` never counts.
    let bytes = squished.as_bytes();
    squished.match_indices("test").any(|(i, _)| {
        let before_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        let after = i + 4;
        before_ok
            && (after >= bytes.len()
                || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_'))
    })
}

/// Find the end (exclusive token index) of the item starting at `from`:
/// either its matching close brace, or a `;` at depth 0 (bodiless items).
fn item_end(tokens: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    let mut nest = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => nest += 1,
            ")" | "]" => nest = nest.saturating_sub(1),
            ";" if depth == 0 && nest == 0 => return j + 1,
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(src: &str) -> FileAnalysis {
        FileAnalysis::new(lex(src))
    }

    #[test]
    fn hashmap_flagged_outside_tests_only() {
        let a = analyze(
            "use std::collections::HashMap;\n\
             #[cfg(test)]\nmod tests { use std::collections::HashMap; }",
        );
        let v = a.determinism(true, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 1);
    }

    #[test]
    fn clock_rng_only_in_kernel_mode() {
        let a = analyze("let t = Instant::now();");
        assert!(a.determinism(true, false).is_empty());
        assert_eq!(a.determinism(true, true).len(), 1);
    }

    #[test]
    fn unwrap_expect_panic_index() {
        let a = analyze(
            "fn f(v: &[u8]) -> u8 { let x = g().unwrap(); h().expect(\"no\"); \
             if v.is_empty() { panic!(\"empty\") } v[0] }",
        );
        let v = a.panic_freedom();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn index_by_variable_or_array_literal_ok() {
        let a = analyze("fn f(v: &[u8], i: usize) -> u8 { let a = [0u8; 3]; v[i] + a[i] }");
        assert!(a.panic_freedom().is_empty());
    }

    #[test]
    fn unwrap_in_test_fn_ok() {
        let a = analyze("#[test]\nfn t() { g().unwrap(); }");
        assert!(a.panic_freedom().is_empty());
    }

    #[test]
    fn float_eq_flagged_to_bits_exempt() {
        let a = analyze(
            "fn f(x: f64, y: f64) -> bool { x == 0.0 || x != -1.5 || \
             x.to_bits() == y.to_bits() || 3 == 4 }",
        );
        let v = a.float_discipline();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn predictor_needs_marker() {
        let bad = analyze("fn predict_faces(w: f64) -> f64 { w + 1.0 }");
        assert_eq!(bad.kernel_floors(&["predict".into()]).len(), 1);
        let good = analyze(
            "fn predict_faces(w: f64) -> f64 {\n    // xlint: floors-applied\n    w + 1.0\n}",
        );
        assert!(good.kernel_floors(&["predict".into()]).is_empty());
        let decl = analyze("trait T { fn predict(&self) -> f64; }");
        assert!(decl.kernel_floors(&["predict".into()]).is_empty());
    }

    #[test]
    fn predictor_with_array_type_in_signature() {
        // The `;` inside `[f64; 5]` must not read as a bodiless decl.
        let a = analyze("fn predict_faces(s: &[f64; 5]) -> [f64; 5] { *s }");
        assert_eq!(a.kernel_floors(&["predict".into()]).len(), 1);
    }

    #[test]
    fn waiver_parsing() {
        let a = analyze(
            "x(); // xlint: allow(D) -- bounded map, never iterated\n\
             y(); // xlint: allow(P)\n\
             z(); // xlint: frobnicate",
        );
        assert_eq!(a.waivers.len(), 1);
        assert_eq!(a.waivers[0].rules, [Rule::Determinism]);
        assert_eq!(a.directive_errors.len(), 2);
        assert!(a.directive_errors.iter().all(|e| e.0 == Rule::WaiverSyntax));
    }

    #[test]
    fn multi_rule_waiver() {
        let a = analyze("// xlint: allow(D, F) -- both justified here");
        assert_eq!(
            a.waivers[0].rules,
            [Rule::Determinism, Rule::FloatDiscipline]
        );
    }
}
