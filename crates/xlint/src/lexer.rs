//! A minimal Rust lexer for invariant linting.
//!
//! This is not a full parser: rules operate on a flat token stream with
//! line spans. The lexer's job is to make that stream trustworthy —
//! comments, string/char literals, and attributes must never leak their
//! contents into rule matching (a `"HashMap"` in a log message is not a
//! violation), while `// xlint: ...` directive comments and attribute
//! text (needed for `#[cfg(test)]` region detection) are preserved as
//! first-class tokens.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary).
    IntLit,
    /// Float literal (has a fractional part, exponent, or f32/f64 suffix).
    FloatLit,
    /// String, raw-string, byte-string, or char literal. Contents dropped.
    StrLit,
    /// Lifetime such as `'a` (kept distinct so it never looks like a char).
    Lifetime,
    /// Operator or punctuation. Multi-char only for `==` and `!=`; every
    /// other operator is emitted one char at a time (rules don't need
    /// more, and single chars can't mask an `==`).
    Punct,
    /// A `#[...]` or `#![...]` attribute, full text preserved.
    Attr,
    /// A `// xlint: ...` directive comment, text after `xlint:` preserved.
    LintComment,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// Lex a source file into a token stream.
///
/// Ordinary comments and doc comments are dropped; block comments nest;
/// raw strings honour their `#` fences. The lexer is infallible: bytes it
/// does not understand become single-char `Punct` tokens, which no rule
/// matches.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '#' if self.peek(1) == Some('[')
                    || (self.peek(1) == Some('!') && self.peek(2) == Some('[')) =>
                {
                    self.attribute(line)
                }
                '"' => {
                    self.string_literal();
                    self.push(TokKind::StrLit, String::new(), line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_string(line),
                '=' if self.peek(1) == Some('=') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "==".into(), line);
                }
                '!' if self.peek(1) == Some('=') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "!=".into(), line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// `//` comment to end of line. `// xlint: ...` (also behind doc-slash
    /// or `//!` forms) survives as a LintComment token.
    fn line_comment(&mut self, line: u32) {
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        let trimmed = body
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        if let Some(rest) = trimmed.strip_prefix("xlint:") {
            self.push(TokKind::LintComment, rest.trim().to_string(), line);
        }
    }

    /// `/* ... */`, nesting like Rust.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// `#[...]` / `#![...]` with bracket-depth and string awareness.
    fn attribute(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('#')); // '#'
        if self.peek(0) == Some('!') {
            text.push(self.bump().unwrap_or('!'));
        }
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    self.string_literal();
                    text.push_str("\"…\"");
                    continue;
                }
                '[' => depth += 1,
                ']' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        text.push(c);
                        self.bump();
                        break;
                    }
                }
                _ => {}
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Attr, text, line);
    }

    /// A plain `"..."` string with escape handling; cursor on the opening
    /// quote when called, past the closing quote when it returns.
    fn string_literal(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string `r"..."` / `r#"..."#` with `hashes` fence chars; cursor
    /// just past the opening quote when called.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
    }

    /// `'a'` char literal vs `'a` lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        // A char literal is '\x', or 'c' where the char after c is a quote.
        // Everything else starting with a quote is a lifetime.
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if is_char {
            self.bump(); // '
            if self.peek(0) == Some('\\') {
                self.bump();
                self.bump(); // escape payload (enough for \n, \', \\; \u{..} ends at its own quote below)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            } else {
                self.bump();
                self.bump(); // payload + closing quote
            }
            self.push(TokKind::StrLit, String::new(), line);
        } else {
            self.bump(); // '
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('o') | Some('b') | Some('X'))
        {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::IntLit, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: a dot NOT followed by another dot (range) or an
        // identifier start (method call like `1.max(x)`).
        if self.peek(0) == Some('.') {
            let is_fraction = match self.peek(1) {
                Some('.') => false,
                Some(c) if c == '_' || c.is_alphabetic() => false,
                _ => true, // digit, punctuation, or end of input: `7.` is a float
            };
            if is_fraction {
                float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let expo = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+') | Some('-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                _ => false,
            };
            if expo {
                float = true;
                text.push(self.bump().unwrap_or('e'));
                if matches!(self.peek(0), Some('+') | Some('-')) {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (f64 / f32 forces float; u8/i64/usize stay int).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f64" || suffix == "f32" {
            float = true;
        }
        text.push_str(&suffix);
        self.push(
            if float {
                TokKind::FloatLit
            } else {
                TokKind::IntLit
            },
            text,
            line,
        );
    }

    /// Identifier — unless it's the prefix of a raw/byte string literal.
    fn ident_or_prefixed_string(&mut self, line: u32) {
        // r"..."  r#"..."#  br"..."  b"..."  b'c'
        let c0 = self.peek(0);
        let starts_raw = |mut at: usize, this: &Self| -> Option<usize> {
            // returns hash count if position `at` starts  #*"
            let mut hashes = 0;
            while this.peek(at) == Some('#') {
                hashes += 1;
                at += 1;
            }
            (this.peek(at) == Some('"')).then_some(hashes)
        };
        match c0 {
            Some('r') => {
                if let Some(h) = starts_raw(1, &*self) {
                    self.bump(); // r
                    for _ in 0..h {
                        self.bump();
                    }
                    self.bump(); // "
                    self.raw_string_body(h);
                    self.push(TokKind::StrLit, String::new(), line);
                    return;
                }
            }
            Some('b') => {
                if self.peek(1) == Some('"') {
                    self.bump();
                    self.string_literal();
                    self.push(TokKind::StrLit, String::new(), line);
                    return;
                }
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.char_or_lifetime(line);
                    return;
                }
                if self.peek(1) == Some('r') {
                    if let Some(h) = starts_raw(2, &*self) {
                        self.bump();
                        self.bump(); // br
                        for _ in 0..h {
                            self.bump();
                        }
                        self.bump(); // "
                        self.raw_string_body(h);
                        self.push(TokKind::StrLit, String::new(), line);
                        return;
                    }
                }
            }
            _ => {}
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak() {
        let toks = kinds(r#"let x = "HashMap"; // HashMap here too"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "HashMap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r###"let s = r#"un "quoted" HashMap"#; let b = b"x"; f(r"y");"###);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            3
        );
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "f"));
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "HashMap"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("a /* x /* HashMap */ y */ b");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lint_comments_survive() {
        let toks = lex("x(); // xlint: allow(P) -- caller holds the lock\ny();");
        let lc: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::LintComment)
            .collect();
        assert_eq!(lc.len(), 1);
        assert_eq!(lc[0].text, "allow(P) -- caller holds the lock");
        assert_eq!(lc[0].line, 1);
    }

    #[test]
    fn float_vs_int_vs_method_call() {
        let toks = kinds("1.5 2 0x1F 3e-2 4f64 1.max(2) 0..3 7.");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::FloatLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "3e-2", "4f64", "7."]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::IntLit && t == "1"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::IntLit && t == "0x1F"));
    }

    #[test]
    fn eq_ne_are_single_tokens() {
        let toks = kinds("a == b; c != d; e = f; g <= h;");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
    }

    #[test]
    fn lifetimes_and_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(),
            2
        );
    }

    #[test]
    fn attributes_captured() {
        let toks = lex("#[cfg(test)]\nmod tests { #[test] fn t() {} }");
        let attrs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Attr).collect();
        assert_eq!(attrs.len(), 2);
        assert!(attrs[0].text.contains("cfg(test)"));
        assert_eq!(attrs[1].text, "#[test]");
    }

    #[test]
    fn lines_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
