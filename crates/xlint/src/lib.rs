//! `xlint` — workspace invariant linter.
//!
//! Enforces repo-specific invariants the compiler and clippy cannot see
//! (DESIGN.md §6): **D** determinism (no `HashMap`/`HashSet` in numeric
//! crates; no wall-clock/RNG in kernel modules), **P** panic-freedom in
//! service paths, **F** float comparison discipline, and **K** kernel
//! floor discipline (`// xlint: floors-applied` markers on predictor
//! functions). Self-contained and dependency-free: a lexer strips
//! comments/strings/attributes, rule passes walk the token stream with
//! file/line spans, and `xlint.toml` scopes each rule per crate.
//!
//! Violations are waived only inline —
//! `// xlint: allow(<rule>) -- <reason>` on the offending line or the
//! line above — and a waiver without a reason is itself an error. A
//! checked-in baseline file grandfathers existing debt (`<rule>
//! <path>:<line>` entries) so it burns down without blocking unrelated
//! PRs.

pub mod config;
pub mod crossfile;
pub mod lexer;
pub mod rules;
pub mod wire_schema;

pub use config::{Config, ConfigError};
pub use crossfile::CrossFile;
pub use rules::{Finding, Rule};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A rule violation attributed to a file.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: Rule,
    pub file: PathBuf,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.letter(),
            self.message
        )
    }
}

/// Internal errors: unreadable files, bad config/baseline. These are exit
/// code 2 — distinguishable in CI from "violations found" (exit 1).
#[derive(Debug)]
pub enum XlintError {
    Io { path: PathBuf, err: std::io::Error },
    Config(ConfigError),
}

impl std::fmt::Display for XlintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XlintError::Io { path, err } => write!(f, "cannot read {}: {err}", path.display()),
            XlintError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XlintError {}

impl From<ConfigError> for XlintError {
    fn from(e: ConfigError) -> Self {
        XlintError::Config(e)
    }
}

/// Grandfathered violations: `<rule-letter> <path>:<line>` entries.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(char, PathBuf, u32)>,
}

impl Baseline {
    /// Parse the baseline file format (`#` comments, blank lines ignored).
    pub fn parse(text: &str) -> Result<Baseline, ConfigError> {
        let mut entries = BTreeSet::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = || {
                ConfigError(format!(
                    "baseline line {}: expected `<rule> <path>:<line>`, got `{line}`",
                    n + 1
                ))
            };
            let (rule, loc) = line.split_once(char::is_whitespace).ok_or_else(err)?;
            let rule = Rule::from_letter(rule).ok_or_else(err)?;
            let (path, lineno) = loc.rsplit_once(':').ok_or_else(err)?;
            let lineno: u32 = lineno.parse().map_err(|_| err())?;
            entries.insert((rule.letter(), PathBuf::from(path), lineno));
        }
        Ok(Baseline { entries })
    }

    /// Number of grandfathered entries (the burn-down meter).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no debt is grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn covers(&self, v: &Violation) -> bool {
        self.entries
            .contains(&(v.rule.letter(), v.file.clone(), v.line))
    }
}

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived violations — these fail the run.
    pub violations: Vec<Violation>,
    /// Violations suppressed by an inline waiver.
    pub waived: Vec<Violation>,
    /// Violations suppressed by the baseline file.
    pub grandfathered: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
    /// `floors-applied` markers seen (kernel attestation coverage).
    pub markers: usize,
}

/// Scan one file's source text under `rel` (workspace-relative path used
/// for scoping and reporting). Pure function of its inputs — the unit the
/// fixture tests drive.
pub fn scan_source(src: &str, rel: &Path, cfg: &Config, report: &mut Report) {
    let analysis = rules::FileAnalysis::new(lexer::lex(src));
    let mut findings: Vec<Finding> = Vec::new();

    let collections = Config::in_scope(rel, &cfg.determinism_paths);
    let kernel = Config::in_scope(rel, &cfg.kernel_modules);
    if collections || kernel {
        findings.extend(analysis.determinism(collections, kernel));
    }
    if Config::in_scope(rel, &cfg.panic_freedom_paths) {
        findings.extend(analysis.panic_freedom());
    }
    if Config::in_scope(rel, &cfg.float_discipline_paths) {
        findings.extend(analysis.float_discipline());
    }
    if Config::in_scope(rel, &cfg.kernel_floor_modules) {
        findings.extend(analysis.kernel_floors(&cfg.predictor_fns));
    }
    // Directive syntax errors apply wherever any rule applies (a broken
    // waiver is a latent hole in whatever rule it meant to waive).
    findings.extend(analysis.directive_errors.iter().cloned());

    findings.sort_by_key(|f| (f.1, f.0));
    report.markers += analysis.markers.len();
    report.files += 1;

    for (rule, line, message) in findings {
        let v = Violation {
            rule,
            file: rel.to_path_buf(),
            line,
            message,
        };
        // A waiver suppresses a violation on its own line or the line
        // directly below it (waiver-above style). Rule W is not waivable.
        let waived = rule != Rule::WaiverSyntax
            && analysis
                .waivers
                .iter()
                .any(|w| w.rules.contains(&rule) && (w.line == line || w.line + 1 == line));
        if waived {
            report.waived.push(v);
        } else {
            report.violations.push(v);
        }
    }
}

/// Walk every configured scope under `root` and scan each `.rs` file.
/// Crate test/bench trees and fixture corpora are skipped — the rules
/// govern production code. After the per-file passes, the cross-file
/// passes (rules L and A) run over the accumulated facts, and the wire
/// fingerprint (rule S) is checked against its committed pin.
pub fn run(root: &Path, cfg: &Config, baseline: &Baseline) -> Result<Report, XlintError> {
    let mut files = BTreeSet::new();
    for scope in cfg.all_scopes() {
        collect_rs_files(&root.join(&scope), root, &mut files)?;
    }
    let mut report = Report::default();
    let mut cross = CrossFile::new();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|err| XlintError::Io {
            path: abs.clone(),
            err,
        })?;
        scan_source(&src, &rel, cfg, &mut report);
        cross.add_file(&src, &rel, cfg);
    }
    let cr = cross.finish(cfg);
    report.violations.extend(cr.violations);
    report.waived.extend(cr.waived);
    check_wire(root, cfg, &mut report)?;
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    // Baseline pass: grandfathered violations don't fail the run.
    let (grandfathered, failing): (Vec<_>, Vec<_>) = std::mem::take(&mut report.violations)
        .into_iter()
        .partition(|v| baseline.covers(v));
    report.violations = failing;
    report.grandfathered = grandfathered;
    Ok(report)
}

/// Rule S: fingerprint the configured wire module and compare it to the
/// committed pin. A missing pin is a violation (not an internal error):
/// the fix is `--write-wire-pin`, and the build must stay red until the
/// pin is committed.
fn check_wire(root: &Path, cfg: &Config, report: &mut Report) -> Result<(), XlintError> {
    let Some(wire_rel) = &cfg.wire_file else {
        return Ok(());
    };
    let abs = root.join(wire_rel);
    let src = std::fs::read_to_string(&abs).map_err(|err| XlintError::Io { path: abs, err })?;
    let ws = wire_schema::extract(&src);
    let mut findings: Vec<Finding> = ws.pairing.clone();
    if let Some(pin_rel) = &cfg.wire_pin {
        match std::fs::read_to_string(root.join(pin_rel)) {
            Ok(text) => {
                if let Some(f) = wire_schema::compare(&ws, &wire_schema::parse_pin(&text)) {
                    findings.push(f);
                }
            }
            Err(_) => findings.push((
                Rule::WireSchema,
                ws.version_line,
                format!(
                    "wire pin `{}` missing; generate it with --write-wire-pin",
                    pin_rel.display()
                ),
            )),
        }
    }
    for (rule, line, message) in findings {
        let v = Violation {
            rule,
            file: wire_rel.clone(),
            line,
            message,
        };
        let waived = ws
            .waivers
            .iter()
            .any(|w| w.rules.contains(&rule) && (w.line == line || w.line + 1 == line));
        if waived {
            report.waived.push(v);
        } else {
            report.violations.push(v);
        }
    }
    Ok(())
}

/// One inline waiver, attributed for the `--waivers` audit listing.
#[derive(Clone, Debug)]
pub struct WaiverEntry {
    pub file: PathBuf,
    pub line: u32,
    /// Rule letters the waiver covers, e.g. `"D,F"`.
    pub rules: String,
    pub reason: String,
}

/// Collect every inline waiver across the configured scopes (the
/// `--waivers` audit mode).
pub fn collect_waivers(root: &Path, cfg: &Config) -> Result<Vec<WaiverEntry>, XlintError> {
    let mut files = BTreeSet::new();
    for scope in cfg.all_scopes() {
        collect_rs_files(&root.join(&scope), root, &mut files)?;
    }
    let mut out = Vec::new();
    for rel in files {
        let abs = root.join(&rel);
        let src = std::fs::read_to_string(&abs).map_err(|err| XlintError::Io {
            path: abs.clone(),
            err,
        })?;
        let analysis = rules::FileAnalysis::new(lexer::lex(&src));
        for w in &analysis.waivers {
            let rules: Vec<String> = w.rules.iter().map(|r| r.letter().to_string()).collect();
            out.push(WaiverEntry {
                file: rel.clone(),
                line: w.line,
                rules: rules.join(","),
                reason: w.reason.clone(),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "fixtures", ".git"];

fn collect_rs_files(
    path: &Path,
    root: &Path,
    out: &mut BTreeSet<PathBuf>,
) -> Result<(), XlintError> {
    let io = |err| XlintError::Io {
        path: path.to_path_buf(),
        err,
    };
    let meta = std::fs::metadata(path).map_err(io)?;
    if meta.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.insert(rel.to_path_buf());
            }
        }
        return Ok(());
    }
    for entry in std::fs::read_dir(path).map_err(io)? {
        let entry = entry.map_err(io)?;
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() && SKIP_DIRS.contains(&name.as_ref()) {
            continue;
        }
        collect_rs_files(&p, root, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all(path: &str) -> Config {
        Config {
            determinism_paths: vec![PathBuf::from(path)],
            panic_freedom_paths: vec![PathBuf::from(path)],
            float_discipline_paths: vec![PathBuf::from(path)],
            kernel_floor_modules: vec![PathBuf::from(path)],
            predictor_fns: vec!["predict".into()],
            ..Config::default()
        }
    }

    #[test]
    fn out_of_scope_files_are_clean() {
        let mut r = Report::default();
        scan_source(
            "use std::collections::HashMap; fn f() { x().unwrap(); }",
            Path::new("crates/other/src/lib.rs"),
            &cfg_all("crates/scoped"),
            &mut r,
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let mut r = Report::default();
        scan_source(
            "use std::collections::HashMap; // xlint: allow(D) -- not iterated\n\
             // xlint: allow(D) -- below\n\
             use std::collections::HashSet;\n\
             use std::collections::HashMap;\n",
            Path::new("crates/scoped/src/lib.rs"),
            &cfg_all("crates/scoped"),
            &mut r,
        );
        assert_eq!(r.waived.len(), 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].line, 4);
    }

    #[test]
    fn baseline_grandfathers_exact_matches() {
        let cfg = cfg_all("crates/scoped");
        let baseline = Baseline::parse(
            "# legacy debt\nD crates/scoped/src/lib.rs:1\nP crates/scoped/src/other.rs:9\n",
        )
        .unwrap();
        assert_eq!(baseline.len(), 2);
        let mut r = Report::default();
        scan_source(
            "use std::collections::HashMap;\nuse std::collections::HashMap;\n",
            Path::new("crates/scoped/src/lib.rs"),
            &cfg,
            &mut r,
        );
        let (grand, fail): (Vec<_>, Vec<_>) =
            r.violations.into_iter().partition(|v| baseline.covers(v));
        assert_eq!(grand.len(), 1);
        assert_eq!(fail.len(), 1);
        assert_eq!(fail[0].line, 2);
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(Baseline::parse("Q crates/x.rs:1").is_err());
        assert!(Baseline::parse("D crates/x.rs").is_err());
    }
}
