//! Rule S — wire-schema pin.
//!
//! Extracts a layout fingerprint from the wire module's token stream:
//! the `VERSION` constant, every pub enum whose variants all carry
//! explicit discriminants (opcode tables), the error-code mapping from
//! functions named `code`, pub struct field sequences, and pub enum
//! variant shapes (frame bodies). The fingerprint is rendered as sorted
//! text lines and pinned to a committed `xlint.wire` file: any change to
//! the on-wire layout shows up as a pin mismatch, and the finding's
//! message distinguishes "you forgot to bump VERSION" from "VERSION
//! bumped — regenerate the pin".
//!
//! Enums whose name ends in `Error` are excluded from the fingerprint:
//! they are decode-failure taxonomy, not wire layout.
//!
//! Additionally, every opcode variant must have paired encode/decode
//! arms: it must appear in a `from_u8` body (decode side) and in at
//! least one other function body (encode side).

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{FileAnalysis, Finding, Rule, Waiver};
use std::collections::{BTreeMap, BTreeSet};

/// The extracted fingerprint plus per-file context needed by the caller.
pub struct WireSchema {
    /// Sorted canonical fingerprint lines; `version N` is always first.
    pub lines: Vec<String>,
    /// Line of the `VERSION` constant (fingerprint findings anchor here).
    pub version_line: u32,
    /// Unpaired encode/decode arm findings.
    pub pairing: Vec<Finding>,
    /// Inline waivers from the wire file (S findings honor them).
    pub waivers: Vec<Waiver>,
}

/// Extract the fingerprint from wire-module source text.
pub fn extract(src: &str) -> WireSchema {
    let a = FileAnalysis::new(lex(src));
    let mut version: Option<(String, u32)> = None;
    let mut layout: Vec<String> = Vec::new();
    let mut opcode_variants: Vec<(String, u32)> = Vec::new();
    let mut fn_bodies: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut pairing: Vec<Finding> = Vec::new();

    let code = &a.code;
    let is_test = |i: usize| a.test.get(i).copied().unwrap_or(false);
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident || is_test(i) {
            continue;
        }
        match t.text.as_str() {
            "const"
                if code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text == "VERSION")
                    && version.is_none() =>
            {
                // `const VERSION: u16 = N;`
                let mut j = i + 2;
                while j < code.len() && !(code[j].kind == TokKind::Punct && code[j].text == "=") {
                    j += 1;
                }
                if let Some(v) = code.get(j + 1).filter(|v| v.kind == TokKind::IntLit) {
                    version = Some((format_int(&v.text), t.line));
                }
            }
            "enum" if is_pub(code, i) => {
                let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    continue;
                };
                let Some((open, close)) = a.body_span(i + 2) else {
                    continue;
                };
                let variants = parse_variants(code, open, close);
                if !variants.is_empty() && variants.iter().all(|v| v.disc.is_some()) {
                    // An opcode table: every variant explicitly numbered.
                    for v in &variants {
                        layout.push(format!(
                            "opcode {}::{} = {}",
                            name.text,
                            v.name,
                            v.disc.clone().unwrap_or_default()
                        ));
                        opcode_variants.push((v.name.clone(), v.line));
                    }
                } else if !name.text.ends_with("Error") {
                    let shapes: Vec<String> = variants
                        .iter()
                        .map(|v| format!("{}{}", v.name, v.shape))
                        .collect();
                    layout.push(format!("enum {} {{ {} }}", name.text, shapes.join(", ")));
                }
            }
            "struct" if is_pub(code, i) => {
                let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    continue;
                };
                match a.body_span(i + 2) {
                    Some((open, close)) => {
                        let fields = parse_fields(code, open, close);
                        layout.push(format!("struct {} {{ {} }}", name.text, fields.join(", ")));
                    }
                    None => layout.push(format!("struct {} (unit-or-tuple)", name.text)),
                }
            }
            "fn" => {
                let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    continue;
                };
                let Some((open, close)) = a.body_span(i + 2) else {
                    continue;
                };
                let idents: BTreeSet<String> = code[open..=close]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .collect();
                fn_bodies
                    .entry(name.text.clone())
                    .or_default()
                    .extend(idents);
                if name.text == "code" {
                    for (variant, value) in parse_error_codes(code, open, close) {
                        layout.push(format!("errorcode {variant} = {value}"));
                    }
                }
            }
            _ => {}
        }
    }

    // Paired-arm check: each opcode variant decodes in `from_u8` and
    // encodes somewhere outside it.
    let empty = BTreeSet::new();
    let from_u8 = fn_bodies.get("from_u8").unwrap_or(&empty);
    for (variant, line) in &opcode_variants {
        if !from_u8.contains(variant) {
            pairing.push((
                Rule::WireSchema,
                *line,
                format!("opcode `{variant}` has no `from_u8` decode arm"),
            ));
        }
        let encoded = fn_bodies
            .iter()
            .any(|(name, idents)| name != "from_u8" && idents.contains(variant));
        if !encoded {
            pairing.push((
                Rule::WireSchema,
                *line,
                format!("opcode `{variant}` never appears outside `from_u8`; missing encode arm"),
            ));
        }
    }

    let (version_value, version_line) = version.unwrap_or_else(|| ("MISSING".to_string(), 1));
    layout.sort();
    layout.dedup();
    let mut lines = vec![format!("version {version_value}")];
    lines.extend(layout);
    WireSchema {
        lines,
        version_line,
        pairing,
        waivers: a.waivers,
    }
}

/// Render the fingerprint as pin-file text.
pub fn render(ws: &WireSchema) -> String {
    let mut out = String::from(
        "# xlint wire-schema pin — the committed layout fingerprint of the wire module.\n\
         # Regenerate after an intentional layout change (with a VERSION bump):\n\
         #   cargo run -p xlint -- --write-wire-pin\n",
    );
    for l in &ws.lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Parse pin-file text back into fingerprint lines.
pub fn parse_pin(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Compare the current fingerprint against the pin. `None` means they
/// match; otherwise one S finding anchored at the VERSION line.
pub fn compare(ws: &WireSchema, pin: &[String]) -> Option<Finding> {
    if ws.lines == pin {
        return None;
    }
    let version_of = |lines: &[String]| {
        lines
            .iter()
            .find(|l| l.starts_with("version "))
            .cloned()
            .unwrap_or_default()
    };
    let version_bumped = version_of(&ws.lines) != version_of(pin);
    let added: Vec<&String> = ws.lines.iter().filter(|l| !pin.contains(l)).collect();
    let removed: Vec<&String> = pin.iter().filter(|l| !ws.lines.contains(l)).collect();
    let mut detail = String::new();
    for l in added.iter().take(3) {
        detail.push_str(&format!(" +`{l}`"));
    }
    for l in removed.iter().take(3) {
        detail.push_str(&format!(" -`{l}`"));
    }
    let message = if version_bumped {
        format!(
            "wire fingerprint differs from the committed pin (VERSION changed;{detail}); \
             regenerate the pin: cargo run -p xlint -- --write-wire-pin"
        )
    } else {
        format!(
            "wire layout changed without a VERSION bump ({} line(s) changed:{detail}); \
             bump VERSION and regenerate the pin with --write-wire-pin",
            added.len() + removed.len()
        )
    };
    Some((Rule::WireSchema, ws.version_line, message))
}

/// True if the item keyword at `i` is `pub` (including `pub(crate)`).
fn is_pub(code: &[Tok], i: usize) -> bool {
    let mut j = i;
    // Walk back over a possible `(crate)` / `(super)` qualifier.
    for _ in 0..5 {
        let Some(p) = j.checked_sub(1) else {
            return false;
        };
        j = p;
        let t = &code[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "pub") => return true,
            (TokKind::Punct, "(") | (TokKind::Punct, ")") => continue,
            (TokKind::Ident, "crate") | (TokKind::Ident, "super") => continue,
            _ => return false,
        }
    }
    false
}

struct Variant {
    name: String,
    line: u32,
    disc: Option<String>,
    /// `{a,b}` for struct variants, `(n)` for tuple variants, `` for unit.
    shape: String,
}

/// Parse enum variants between the body braces at `open`..`close`.
fn parse_variants(code: &[Tok], open: usize, close: usize) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        let t = &code[j];
        if t.kind == TokKind::Ident {
            let prev = &code[j - 1];
            let at_variant = prev.kind == TokKind::Punct && (prev.text == "{" || prev.text == ",");
            if at_variant {
                let mut v = Variant {
                    name: t.text.clone(),
                    line: t.line,
                    disc: None,
                    shape: String::new(),
                };
                match code.get(j + 1) {
                    Some(n) if n.kind == TokKind::Punct && n.text == "=" => {
                        if let Some(d) = code.get(j + 2).filter(|d| d.kind == TokKind::IntLit) {
                            v.disc = Some(format_int(&d.text));
                        }
                        j += 3;
                    }
                    Some(n) if n.kind == TokKind::Punct && n.text == "{" => {
                        let end = matching(code, j + 1, "{", "}", close);
                        let fields = parse_fields(code, j + 1, end);
                        v.shape = format!("{{{}}}", fields.join(","));
                        j = end + 1;
                    }
                    Some(n) if n.kind == TokKind::Punct && n.text == "(" => {
                        let end = matching(code, j + 1, "(", ")", close);
                        let mut arity = 1usize;
                        let mut depth = 0usize;
                        for t in &code[j + 1..end] {
                            if t.kind == TokKind::Punct {
                                match t.text.as_str() {
                                    "(" | "[" | "<" => depth += 1,
                                    ")" | "]" | ">" => depth = depth.saturating_sub(1),
                                    "," if depth == 1 => arity += 1,
                                    _ => {}
                                }
                            }
                        }
                        if end == j + 2 {
                            arity = 0;
                        }
                        v.shape = format!("({arity})");
                        j = end + 1;
                    }
                    _ => j += 1,
                }
                out.push(v);
                // Skip to the comma that ends this variant.
                while j < close && !(code[j].kind == TokKind::Punct && code[j].text == ",") {
                    j += 1;
                }
                continue;
            }
        }
        j += 1;
    }
    out
}

/// Parse named fields (idents followed by a single `:`) at brace depth 1.
fn parse_fields(code: &[Tok], open: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < close {
        let t = &code[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth = depth.saturating_sub(1),
                _ => {}
            }
        } else if t.kind == TokKind::Ident && depth == 1 && t.text != "pub" {
            let colon = code
                .get(j + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == ":");
            let double = code
                .get(j + 2)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == ":");
            let prev_ok = matches!(
                (&code[j - 1].kind, code[j - 1].text.as_str()),
                (TokKind::Punct, "{") | (TokKind::Punct, ",") | (TokKind::Punct, ")")
            ) || code[j - 1].text == "pub";
            if colon && !double && prev_ok {
                out.push(t.text.clone());
            }
        }
        j += 1;
    }
    out
}

/// Find the token index of the close matching the open bracket at `at`.
fn matching(code: &[Tok], at: usize, open: &str, close_c: &str, limit: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().take(limit + 1).skip(at) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close_c {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    limit
}

/// Error-code arms inside a `fn code` body: `Path::Variant .. => N`.
fn parse_error_codes(code: &[Tok], open: usize, close: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut last_qualified: Option<String> = None;
    let mut j = open;
    while j < close {
        let t = &code[j];
        if t.kind == TokKind::Ident
            && j >= 2
            && code[j - 1].kind == TokKind::Punct
            && code[j - 1].text == ":"
            && code[j - 2].kind == TokKind::Punct
            && code[j - 2].text == ":"
        {
            last_qualified = Some(t.text.clone());
        }
        if t.kind == TokKind::Punct
            && t.text == "="
            && code
                .get(j + 1)
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == ">")
        {
            if let Some(v) = code.get(j + 2).filter(|v| v.kind == TokKind::IntLit) {
                if let Some(q) = last_qualified.take() {
                    out.push((q, format_int(&v.text)));
                }
            }
        }
        j += 1;
    }
    out
}

/// Normalize an integer literal (hex/octal/binary/underscores) to decimal.
fn format_int(text: &str) -> String {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let parsed = if let Some(h) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u64::from_str_radix(h, 16).ok()
    } else if let Some(o) = clean.strip_prefix("0o") {
        u64::from_str_radix(o, 8).ok()
    } else if let Some(b) = clean.strip_prefix("0b") {
        u64::from_str_radix(b, 2).ok()
    } else {
        clean.parse().ok()
    };
    parsed.map_or_else(|| clean.clone(), |n| n.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
pub const VERSION: u16 = 1;

pub enum Op { Put = 0x01, Get = 0x02 }

impl Op {
    pub fn from_u8(v: u8) -> Option<Op> {
        match v { 1 => Some(Op::Put), 2 => Some(Op::Get), _ => None }
    }
}

pub struct Snap { pub puts: u64, pub gets: u64 }

pub enum Req { Put { key: String, value: Vec<u8> }, Get { key: String } }

impl Req {
    pub fn opcode(&self) -> Op {
        match self { Req::Put { .. } => Op::Put, Req::Get { .. } => Op::Get }
    }
}

pub enum WireError { Short }

pub enum Frame { Ack, Data(Vec<u8>) }

pub enum Code2 { Bad }
impl Code2 { pub fn code(&self) -> u8 { match self { Code2::Bad => 2 } } }
"#;

    #[test]
    fn fingerprint_extracts_all_sections() {
        let ws = extract(MINI);
        assert_eq!(ws.lines[0], "version 1");
        assert!(ws.lines.contains(&"opcode Op::Put = 1".to_string()));
        assert!(ws.lines.contains(&"opcode Op::Get = 2".to_string()));
        assert!(ws.lines.contains(&"struct Snap { puts, gets }".to_string()));
        assert!(ws
            .lines
            .contains(&"enum Req { Put{key,value}, Get{key} }".to_string()));
        assert!(ws
            .lines
            .contains(&"enum Frame { Ack, Data(1) }".to_string()));
        assert!(ws.lines.contains(&"errorcode Bad = 2".to_string()));
        // WireError excluded: decode taxonomy, not layout.
        assert!(!ws.lines.iter().any(|l| l.contains("WireError")));
        assert!(ws.pairing.is_empty(), "{:?}", ws.pairing);
    }

    #[test]
    fn roundtrip_through_pin_text() {
        let ws = extract(MINI);
        let pin = parse_pin(&render(&ws));
        assert!(compare(&ws, &pin).is_none());
    }

    #[test]
    fn field_change_without_version_bump_is_flagged() {
        let ws = extract(MINI);
        let pin = parse_pin(&render(&ws));
        let mutated = extract(&MINI.replace("pub gets: u64", "pub getz: u64"));
        let f = compare(&mutated, &pin).expect("mismatch");
        assert!(f.2.contains("without a VERSION bump"), "{}", f.2);
    }

    #[test]
    fn version_bump_asks_for_pin_regen() {
        let ws = extract(MINI);
        let pin = parse_pin(&render(&ws));
        let mutated = extract(
            &MINI
                .replace("VERSION: u16 = 1", "VERSION: u16 = 2")
                .replace("pub gets: u64", "pub getz: u64"),
        );
        let f = compare(&mutated, &pin).expect("mismatch");
        assert!(f.2.contains("regenerate"), "{}", f.2);
    }

    #[test]
    fn error_code_change_is_flagged() {
        let ws = extract(MINI);
        let pin = parse_pin(&render(&ws));
        let mutated = extract(&MINI.replace("Code2::Bad => 2", "Code2::Bad => 3"));
        let f = compare(&mutated, &pin).expect("mismatch");
        assert!(f.2.contains("without a VERSION bump"), "{}", f.2);
    }

    #[test]
    fn unpaired_opcode_is_flagged() {
        let src = MINI.replace("2 => Some(Op::Get), ", "");
        let ws = extract(&src);
        assert!(
            ws.pairing.iter().any(|p| p.2.contains("from_u8")),
            "{:?}",
            ws.pairing
        );
    }
}
