//! `xlint.toml` — per-crate rule scoping.
//!
//! xlint is dependency-free, so this module parses the small TOML subset
//! the config actually uses: `[section]` headers, `key = "string"`, and
//! `key = ["array", "of", "strings"]` (single- or multi-line), with `#`
//! comments. Anything else is a hard parse error (exit code 2), never a
//! silent skip — a typo'd scope must not quietly stop a rule from running.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Parsed configuration: which paths each rule class scans.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Rule D: crates/paths where `HashMap`/`HashSet` are forbidden.
    pub determinism_paths: Vec<PathBuf>,
    /// Rule D: kernel modules where wall-clock and RNG use is forbidden.
    pub kernel_modules: Vec<PathBuf>,
    /// Rule P: service paths that must be panic-free.
    pub panic_freedom_paths: Vec<PathBuf>,
    /// Rule F: crates/paths where float `==`/`!=` is forbidden.
    pub float_discipline_paths: Vec<PathBuf>,
    /// Rule K: kernel modules whose predictor functions need the
    /// `// xlint: floors-applied` marker.
    pub kernel_floor_modules: Vec<PathBuf>,
    /// Rule K: substrings identifying predictor functions by name.
    pub predictor_fns: Vec<String>,
    /// Rule L: paths whose lock usage feeds the cross-file acquisition-
    /// order graph and held-across-I/O checks.
    pub lock_paths: Vec<PathBuf>,
    /// Rule L(c): `probe=lock` pairs — in any function that acquires
    /// `lock`, calls to `probe` must happen under a live guard of it.
    pub guarded_by: Vec<(String, String)>,
    /// Rule A: paths whose atomic fields must keep one Ordering class.
    pub atomics_paths: Vec<PathBuf>,
    /// Rule S: the wire module whose layout fingerprint is pinned.
    pub wire_file: Option<PathBuf>,
    /// Rule S: the committed fingerprint pin file.
    pub wire_pin: Option<PathBuf>,
    /// Grandfathered-violation baseline file, relative to the workspace
    /// root (optional).
    pub baseline: Option<PathBuf>,
}

/// A config or baseline problem. Reported as an internal error (exit 2).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse `xlint.toml` text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let raw = parse_mini_toml(text)?;
        let mut cfg = Config::default();
        for (section, keys) in &raw {
            for (key, value) in keys {
                let slot: &mut Vec<PathBuf> = match (section.as_str(), key.as_str()) {
                    ("determinism", "paths") => &mut cfg.determinism_paths,
                    ("determinism", "kernel_modules") => &mut cfg.kernel_modules,
                    ("panic_freedom", "paths") => &mut cfg.panic_freedom_paths,
                    ("float_discipline", "paths") => &mut cfg.float_discipline_paths,
                    ("kernel_floors", "modules") => &mut cfg.kernel_floor_modules,
                    ("kernel_floors", "predictor_fns") => {
                        cfg.predictor_fns = value.as_list()?;
                        continue;
                    }
                    ("lock_discipline", "paths") => &mut cfg.lock_paths,
                    ("lock_discipline", "guarded_by") => {
                        for item in value.as_list()? {
                            let Some((probe, lock)) = item.split_once('=') else {
                                return Err(ConfigError(format!(
                                    "guarded_by entry `{item}`: expected `probe=lock`"
                                )));
                            };
                            cfg.guarded_by
                                .push((probe.trim().to_string(), lock.trim().to_string()));
                        }
                        continue;
                    }
                    ("atomics", "paths") => &mut cfg.atomics_paths,
                    ("wire_schema", "file") => {
                        cfg.wire_file = Some(PathBuf::from(value.as_string()?));
                        continue;
                    }
                    ("wire_schema", "pin") => {
                        cfg.wire_pin = Some(PathBuf::from(value.as_string()?));
                        continue;
                    }
                    ("general", "baseline") => {
                        cfg.baseline = Some(PathBuf::from(value.as_string()?));
                        continue;
                    }
                    _ => return Err(ConfigError(format!("unknown config key [{section}] {key}"))),
                };
                *slot = value.as_list()?.into_iter().map(PathBuf::from).collect();
            }
        }
        if cfg.predictor_fns.is_empty() {
            cfg.predictor_fns = vec!["predict".to_string()];
        }
        Ok(cfg)
    }

    /// True if `file` (workspace-relative) falls under one of `scopes`.
    pub fn in_scope(file: &Path, scopes: &[PathBuf]) -> bool {
        scopes.iter().any(|s| file.starts_with(s) || file == s)
    }

    /// Union of every configured scope — the set of trees to walk.
    pub fn all_scopes(&self) -> Vec<PathBuf> {
        let mut all: Vec<PathBuf> = self
            .determinism_paths
            .iter()
            .chain(&self.kernel_modules)
            .chain(&self.panic_freedom_paths)
            .chain(&self.float_discipline_paths)
            .chain(&self.kernel_floor_modules)
            .chain(&self.lock_paths)
            .chain(&self.atomics_paths)
            .cloned()
            .collect();
        all.sort();
        all.dedup();
        // Drop scopes nested under another scope so files aren't walked twice.
        let mut roots: Vec<PathBuf> = Vec::new();
        for p in all {
            if !roots.iter().any(|r| p.starts_with(r) && p != *r) {
                roots.push(p);
            }
        }
        roots
    }
}

#[derive(Clone, Debug)]
enum Value {
    Str(String),
    List(Vec<String>),
}

impl Value {
    fn as_list(&self) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::List(v) => Ok(v.clone()),
            Value::Str(s) => Err(ConfigError(format!("expected a list, got \"{s}\""))),
        }
    }

    fn as_string(&self) -> Result<String, ConfigError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::List(_) => Err(ConfigError("expected a string, got a list".into())),
        }
    }
}

type Sections = BTreeMap<String, Vec<(String, Value)>>;

fn parse_mini_toml(text: &str) -> Result<Sections, ConfigError> {
    let mut out: Sections = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError(format!("line {}: expected key = value", n + 1)));
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // A multi-line array: keep consuming lines until the bracket closes.
        if value.starts_with('[') {
            while !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError(format!("line {}: unterminated array", n + 1)));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
        }
        let parsed =
            parse_value(&value).map_err(|e| ConfigError(format!("line {}: {e}", n + 1)))?;
        if section.is_empty() {
            return Err(ConfigError(format!(
                "line {}: key outside a [section]",
                n + 1
            )));
        }
        out.entry(section.clone()).or_default().push((key, parsed));
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    let v = v.trim();
    if let Some(body) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(unquote(part)?);
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Str(unquote(v)?))
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got {s}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# workspace invariants
[determinism]
paths = ["crates/amr", "crates/solvers"]
kernel_modules = [
    "crates/solvers/src/euler.rs",  # hot kernels
]

[panic_freedom]
paths = ["crates/staging/src"]

[float_discipline]
paths = ["crates/amr"]

[kernel_floors]
modules = ["crates/solvers/src/euler.rs"]
predictor_fns = ["predict"]

[general]
baseline = "xlint.baseline"
"#,
        )
        .unwrap();
        assert_eq!(cfg.determinism_paths.len(), 2);
        assert_eq!(
            cfg.kernel_modules,
            [PathBuf::from("crates/solvers/src/euler.rs")]
        );
        assert_eq!(cfg.baseline, Some(PathBuf::from("xlint.baseline")));
        assert_eq!(cfg.predictor_fns, ["predict"]);
        let scopes = cfg.all_scopes();
        // euler.rs nests under crates/solvers: deduped from the walk roots.
        assert!(scopes.contains(&PathBuf::from("crates/amr")));
        assert!(!scopes.contains(&PathBuf::from("crates/solvers/src/euler.rs")));
    }

    #[test]
    fn parses_crossfile_sections() {
        let cfg = Config::parse(
            r#"
[lock_discipline]
paths = ["crates/staging/src", "crates/net/src"]
guarded_by = ["spilled_key_count=inner", "has_spilled=inner"]

[atomics]
paths = ["crates/net/src"]

[wire_schema]
file = "crates/net/src/wire.rs"
pin = "xlint.wire"
"#,
        )
        .unwrap();
        assert_eq!(cfg.lock_paths.len(), 2);
        assert_eq!(
            cfg.guarded_by,
            [
                ("spilled_key_count".to_string(), "inner".to_string()),
                ("has_spilled".to_string(), "inner".to_string())
            ]
        );
        assert_eq!(cfg.wire_file, Some(PathBuf::from("crates/net/src/wire.rs")));
        assert_eq!(cfg.wire_pin, Some(PathBuf::from("xlint.wire")));
        // Lock/atomics scopes join the walk roots.
        assert!(cfg.all_scopes().contains(&PathBuf::from("crates/net/src")));
    }

    #[test]
    fn malformed_guarded_by_is_an_error() {
        assert!(Config::parse("[lock_discipline]\nguarded_by = [\"no_eq_sign\"]").is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(Config::parse("[determinism]\npahts = [\"x\"]").is_err());
    }

    #[test]
    fn default_predictor_pattern() {
        let cfg = Config::parse("[kernel_floors]\nmodules = [\"a.rs\"]").unwrap();
        assert_eq!(cfg.predictor_fns, ["predict"]);
    }

    #[test]
    fn scope_membership() {
        let scopes = vec![PathBuf::from("crates/amr")];
        assert!(Config::in_scope(
            Path::new("crates/amr/src/fab.rs"),
            &scopes
        ));
        assert!(!Config::in_scope(
            Path::new("crates/viz/src/mesh.rs"),
            &scopes
        ));
    }
}
