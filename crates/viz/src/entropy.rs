//! Shannon entropy of data blocks (paper Eq. 11).
//!
//! The entropy-based application-layer adaptation (§5.2.1, Fig. 6) computes,
//! for each AMR data block, `H(X) = -Σ p(x)·log2 p(x)` over a histogram of
//! the block's values, and down-samples aggressively only where H is low.
//!
//! The production kernel walks contiguous flat-offset rows of the fab
//! payload (one fused min/max sweep, then one binning sweep) and reuses a
//! caller-provided histogram buffer, so a level-wide entropy scan performs
//! zero heap allocations after the first grid. The per-cell variant is
//! kept as [`block_entropy_reference`] for the equivalence property tests.

use std::cell::RefCell;
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_amr::level_data::LevelData;

/// Number of histogram bins used to estimate p(x). The paper reports
/// entropies of 5.14–9.85 bits at the finest level; 1024 bins (10 bits max)
/// covers that range.
pub const DEFAULT_BINS: usize = 1024;

/// Shannon entropy (bits) of the values of `comp` over `region ∩ fab.box`,
/// estimated from a `bins`-bin histogram over the region's value range.
///
/// Returns 0 for constant or empty regions.
pub fn block_entropy(fab: &Fab, comp: usize, region: &IBox, bins: usize) -> f64 {
    let mut hist = Vec::new();
    block_entropy_scratch(fab, comp, region, bins, &mut hist)
}

/// [`block_entropy`] with a caller-owned histogram buffer, so repeated
/// calls (a level scan) allocate nothing after the first. `hist` is
/// cleared and resized to `bins`; its prior contents are ignored.
pub fn block_entropy_scratch(
    fab: &Fab,
    comp: usize,
    region: &IBox,
    bins: usize,
    hist: &mut Vec<u64>,
) -> f64 {
    assert!(bins >= 2);
    assert!(bins <= 1 << 30, "histogram bin count out of range");
    let r = region.intersect(&fab.ibox());
    let n = r.num_cells();
    if n == 0 {
        return 0.0;
    }
    let src_box = fab.ibox();
    let src = fab.comp_slice(comp);
    let nx = r.size()[0] as usize;
    // Sweep 1 (fused): min and max in a single pass over the rows, with
    // eight independent accumulator lanes so the compare chain vectorizes
    // (min/max are order-independent — ±0.0 ties compare equal and only
    // feed arithmetic, so the entropy is unchanged by the regrouping).
    let mut los = [f64::INFINITY; 8];
    let mut his = [f64::NEG_INFINITY; 8];
    for z in r.lo()[2]..=r.hi()[2] {
        for y in r.lo()[1]..=r.hi()[1] {
            let s0 = src_box.offset(IntVect::new(r.lo()[0], y, z));
            let row = &src[s0..s0 + nx];
            let mut chunks = row.chunks_exact(8);
            for ch in &mut chunks {
                // Select-form compares (not f64::min/max, whose NaN rules
                // cost a fixup sequence) so the lanes compile to packed
                // min/max instructions.
                for k in 0..8 {
                    los[k] = if ch[k] < los[k] { ch[k] } else { los[k] };
                    his[k] = if ch[k] > his[k] { ch[k] } else { his[k] };
                }
            }
            for &v in chunks.remainder() {
                los[0] = if v < los[0] { v } else { los[0] };
                his[0] = if v > his[0] { v } else { his[0] };
            }
        }
    }
    let lo = los.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = his.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if hi <= lo {
        return 0.0;
    }
    // Sweep 2: bin into the reused histogram, counting into four
    // interleaved lanes so consecutive equal values don't serialize on the
    // same counter; the lanes are folded into the first `bins` slots after
    // the sweep (pure integer counts — the fold is exact).
    let scale = bins as f64 / (hi - lo);
    hist.clear();
    hist.resize(4 * bins, 0);
    // `(v - lo) * scale` lies in [0, bins] (bins is capped well below
    // u32::MAX by the assert above), so the u32 conversion truncates to the
    // same bin as the reference's usize cast at roughly half the
    // saturation-fixup cost.
    let bin_of = |v: f64| (((v - lo) * scale) as u32 as usize).min(bins - 1);
    for z in r.lo()[2]..=r.hi()[2] {
        for y in r.lo()[1]..=r.hi()[1] {
            let s0 = src_box.offset(IntVect::new(r.lo()[0], y, z));
            let row = &src[s0..s0 + nx];
            let mut chunks = row.chunks_exact(4);
            for ch in &mut chunks {
                hist[bin_of(ch[0])] += 1;
                hist[bins + bin_of(ch[1])] += 1;
                hist[2 * bins + bin_of(ch[2])] += 1;
                hist[3 * bins + bin_of(ch[3])] += 1;
            }
            for &v in chunks.remainder() {
                hist[bin_of(v)] += 1;
            }
        }
    }
    for lane in 1..4 {
        for b in 0..bins {
            hist[b] += hist[lane * bins + b];
        }
    }
    hist.truncate(bins);
    let total = n as f64;
    let mut h = 0.0;
    for &c in hist.iter() {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Per-cell reference implementation of [`block_entropy`]. Kept as the
/// equivalence baseline for property tests and the kernel benchmarks.
pub fn block_entropy_reference(fab: &Fab, comp: usize, region: &IBox, bins: usize) -> f64 {
    assert!(bins >= 2);
    let r = region.intersect(&fab.ibox());
    let n = r.num_cells();
    if n == 0 {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for iv in r.cells() {
        let v = fab.get(iv, comp);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi <= lo {
        return 0.0;
    }
    let scale = bins as f64 / (hi - lo);
    let mut hist = vec![0u64; bins];
    for iv in r.cells() {
        let v = fab.get(iv, comp);
        let b = (((v - lo) * scale) as usize).min(bins - 1);
        hist[b] += 1;
    }
    let total = n as f64;
    let mut h = 0.0;
    for &c in &hist {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Entropy of every grid of a level (bits per grid), computed in parallel;
/// each worker thread reuses one thread-local histogram across the grids it
/// scans.
pub fn level_entropies(data: &LevelData, comp: usize, bins: usize) -> Vec<f64> {
    use rayon::prelude::*;
    thread_local! {
        static HIST: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }
    (0..data.len())
        .into_par_iter()
        .map(|i| {
            HIST.with(|h| {
                block_entropy_scratch(
                    data.fab(i),
                    comp,
                    &data.valid_box(i),
                    bins,
                    &mut h.borrow_mut(),
                )
            })
        })
        .collect()
}

/// Map per-block entropies to per-block down-sampling factors.
///
/// `thresholds` is a sorted list of `(min_entropy, factor)` pairs: a block
/// with entropy ≥ the largest matching `min_entropy` gets that factor. The
/// convention matches §5.2.1: high-entropy blocks keep full resolution
/// (factor 1), low-entropy blocks are reduced aggressively.
pub fn factors_from_entropy(entropies: &[f64], thresholds: &[(f64, u32)]) -> Vec<u32> {
    assert!(!thresholds.is_empty());
    let mut sorted = thresholds.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN thresholds"));
    entropies
        .iter()
        .map(|&h| {
            let mut f = sorted[0].1;
            for &(min_h, factor) in &sorted {
                if h >= min_h {
                    f = factor;
                }
            }
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::intvect::IntVect;

    fn fab_with(values: impl Fn(IntVect) -> f64, n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            f.set(iv, 0, values(iv));
        }
        f
    }

    #[test]
    fn constant_block_has_zero_entropy() {
        let f = fab_with(|_| 3.0, 8);
        assert_eq!(block_entropy(&f, 0, &IBox::cube(8), 64), 0.0);
    }

    #[test]
    fn two_equal_halves_have_one_bit() {
        let f = fab_with(|iv| if iv[0] < 4 { 0.0 } else { 1.0 }, 8);
        let h = block_entropy(&f, 0, &IBox::cube(8), 64);
        assert!((h - 1.0).abs() < 1e-12, "H = {h}");
    }

    #[test]
    fn uniform_spread_maximizes_entropy() {
        // 512 distinct values over 512 bins-worth of range → H ≈ log2(bins).
        let f = fab_with(|iv| (iv[0] + 8 * iv[1] + 64 * iv[2]) as f64, 8);
        let h = block_entropy(&f, 0, &IBox::cube(8), 512);
        assert!(h > 8.9, "H = {h}, expected ≈ 9 bits");
    }

    #[test]
    fn entropy_upper_bound_is_log2_bins() {
        let f = fab_with(|iv| (iv[0] * 31 + iv[1] * 57 + iv[2] * 13) as f64, 8);
        for bins in [4usize, 16, 64] {
            let h = block_entropy(&f, 0, &IBox::cube(8), bins);
            assert!(h <= (bins as f64).log2() + 1e-12);
            assert!(h >= 0.0);
        }
    }

    #[test]
    fn empty_region_zero() {
        let f = fab_with(|_| 1.0, 4);
        let far = IBox::cube(4).shift(IntVect::splat(100));
        assert_eq!(block_entropy(&f, 0, &far, 16), 0.0);
    }

    #[test]
    fn flat_matches_reference_bitwise() {
        let f = fab_with(
            |iv| ((iv[0] as f64) * 0.7).sin() * ((iv[1] * 3 - iv[2]) as f64).cos(),
            8,
        );
        for bins in [4usize, 64, DEFAULT_BINS] {
            let flat = block_entropy(&f, 0, &IBox::cube(8), bins);
            let rf = block_entropy_reference(&f, 0, &IBox::cube(8), bins);
            assert_eq!(flat.to_bits(), rf.to_bits(), "bins {bins}");
        }
    }

    #[test]
    fn scratch_buffer_is_resized_per_call() {
        let f = fab_with(|iv| (iv[0] + iv[1]) as f64, 8);
        let mut hist = vec![9u64; 7]; // wrong size, stale contents
        let h = block_entropy_scratch(&f, 0, &IBox::cube(8), 64, &mut hist);
        assert_eq!(hist.len(), 64);
        assert_eq!(
            h.to_bits(),
            block_entropy(&f, 0, &IBox::cube(8), 64).to_bits()
        );
    }

    #[test]
    fn factors_pick_largest_matching_threshold() {
        // High-entropy keeps resolution (factor 1), low gets 4.
        let factors = factors_from_entropy(&[9.2, 5.1, 7.0], &[(0.0, 4), (6.0, 2), (8.0, 1)]);
        assert_eq!(factors, vec![1, 4, 2]);
    }

    #[test]
    fn structured_region_has_higher_entropy_than_flat() {
        // The Fig. 6 scenario: a structured (high-information) block vs a
        // nearly-flat one.
        let structured = fab_with(
            |iv| ((iv[0] as f64) * 0.7).sin() + ((iv[1] as f64) * 1.3).cos() * (iv[2] as f64),
            8,
        );
        let flat = fab_with(|iv| 1.0 + 1e-6 * (iv[0] % 2) as f64, 8);
        let hs = block_entropy(&structured, 0, &IBox::cube(8), DEFAULT_BINS);
        let hf = block_entropy(&flat, 0, &IBox::cube(8), DEFAULT_BINS);
        assert!(hs > hf + 3.0, "structured {hs} vs flat {hf}");
    }
}
