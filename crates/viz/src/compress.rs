//! Error-bounded lossy compression: the paper's other in-situ reduction
//! operator (§3: the application layer selects "the parameters of the data
//! reduction module (e.g., down-sample factor, compression rate, etc.)",
//! and §6 cites ISABELA-style compressed analytics).
//!
//! The codec quantizes values to a user tolerance, delta-encodes the
//! quantized integers, and varint-packs them — simple, fast, and with a
//! hard per-value error bound of `tolerance / 2`, the property analysis
//! pipelines need. Smooth fields (the common case on refined AMR blocks)
//! compress by an order of magnitude.

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;

/// A compressed block: one component over a box.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedBlock {
    /// Region the block covers.
    pub bbox: IBox,
    /// Quantization step; reconstruction error ≤ `tolerance / 2` per value.
    pub tolerance: f64,
    /// Varint-packed zigzag deltas of the quantized values.
    pub data: Vec<u8>,
}

impl CompressedBlock {
    /// Compressed payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Compression ratio vs the raw f64 payload.
    pub fn ratio(&self) -> f64 {
        let raw = self.bbox.num_cells() as f64 * 8.0;
        raw / self.data.len().max(1) as f64
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], at: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*at)?;
        *at += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Compress component `comp` of `fab` over `region ∩ fab.box` with the
/// given error tolerance (> 0).
pub fn compress_fab(fab: &Fab, comp: usize, region: &IBox, tolerance: f64) -> CompressedBlock {
    assert!(tolerance > 0.0, "tolerance must be positive");
    let r = region.intersect(&fab.ibox());
    let mut data = Vec::new();
    let mut prev: i64 = 0;
    for iv in r.cells() {
        let q = (fab.get(iv, comp) / tolerance).round() as i64;
        push_varint(&mut data, zigzag(q - prev));
        prev = q;
    }
    CompressedBlock {
        bbox: r,
        tolerance,
        data,
    }
}

/// Decompression error.
#[derive(Debug, PartialEq, Eq)]
pub struct CorruptBlock;

impl std::fmt::Display for CorruptBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed block")
    }
}

impl std::error::Error for CorruptBlock {}

/// Reconstruct the block into a fresh single-component fab over its bbox.
pub fn decompress(block: &CompressedBlock) -> Result<Fab, CorruptBlock> {
    let mut fab = Fab::new(block.bbox, 1);
    let mut at = 0usize;
    let mut prev: i64 = 0;
    for iv in block.bbox.cells() {
        let delta = unzigzag(read_varint(&block.data, &mut at).ok_or(CorruptBlock)?);
        prev += delta;
        fab.set(iv, 0, prev as f64 * block.tolerance);
    }
    if at != block.data.len() {
        return Err(CorruptBlock);
    }
    Ok(fab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::intvect::IntVect;

    fn smooth_fab(n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            let x = iv[0] as f64 / n as f64;
            let y = iv[1] as f64 / n as f64;
            let z = iv[2] as f64 / n as f64;
            f.set(iv, 0, (x * 3.1).sin() + 0.5 * (y * 2.0).cos() + 0.1 * z);
        }
        f
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        let f = smooth_fab(16);
        for tol in [1e-2, 1e-4, 1e-6] {
            let c = compress_fab(&f, 0, &IBox::cube(16), tol);
            let back = decompress(&c).expect("decode");
            for iv in IBox::cube(16).cells() {
                let err = (back.get(iv, 0) - f.get(iv, 0)).abs();
                assert!(err <= tol / 2.0 + 1e-15, "err {err} > {}/2", tol);
            }
        }
    }

    #[test]
    fn smooth_fields_compress_well() {
        let f = smooth_fab(16);
        let c = compress_fab(&f, 0, &IBox::cube(16), 1e-3);
        assert!(c.ratio() > 4.0, "ratio {}", c.ratio());
    }

    #[test]
    fn tighter_tolerance_costs_more() {
        let f = smooth_fab(16);
        let loose = compress_fab(&f, 0, &IBox::cube(16), 1e-2);
        let tight = compress_fab(&f, 0, &IBox::cube(16), 1e-8);
        assert!(tight.bytes() > loose.bytes());
    }

    #[test]
    fn constant_field_is_tiny() {
        let f = Fab::filled(IBox::cube(16), 1, 3.25);
        let c = compress_fab(&f, 0, &IBox::cube(16), 1e-6);
        // first value + 4095 zero deltas, each 1 byte minimum
        assert!(c.bytes() < 4096 + 16, "bytes {}", c.bytes());
        let back = decompress(&c).expect("decode");
        assert!((back.get(IntVect::splat(5), 0) - 3.25).abs() <= 5e-7);
    }

    #[test]
    fn noisy_field_still_roundtrips() {
        let b = IBox::cube(8);
        let mut f = Fab::new(b, 1);
        let mut state: u64 = 99;
        for iv in b.cells() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f.set(iv, 0, (state >> 33) as f64 / (1u64 << 31) as f64 * 100.0);
        }
        let c = compress_fab(&f, 0, &b, 1e-3);
        let back = decompress(&c).expect("decode");
        for iv in b.cells() {
            assert!((back.get(iv, 0) - f.get(iv, 0)).abs() <= 5e-4 + 1e-12);
        }
    }

    #[test]
    fn corruption_detected() {
        let f = smooth_fab(8);
        let mut c = compress_fab(&f, 0, &IBox::cube(8), 1e-3);
        c.data.truncate(c.data.len() / 2);
        assert!(decompress(&c).is_err());
        // trailing garbage also rejected
        let mut c2 = compress_fab(&f, 0, &IBox::cube(8), 1e-3);
        c2.data.push(0);
        assert!(decompress(&c2).is_err());
    }

    #[test]
    fn zigzag_varint_primitives() {
        for v in [0i64, 1, -1, 63, -64, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 1 << 20, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at), Some(v));
            assert_eq!(at, buf.len());
        }
    }
}
