//! # xlayer-viz — the visualization / analysis service
//!
//! The analysis side of the paper's coupled workflow (§5.1):
//!
//! * [`marching_cubes`] — communication-free isosurface extraction over AMR
//!   level data (the paper's visualization service),
//! * [`entropy`] — per-block Shannon entropy (Eq. 11), driving the
//!   entropy-based application-layer adaptation (Fig. 6),
//! * [`downsample`] — the `f_data_reduce(S_data, X)` reduction operator and
//!   its memory model (Eqs. 1–2),
//! * [`mesh`] — triangle meshes with size accounting for the data-movement
//!   bookkeeping (Figs. 8, 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod downsample;
pub mod entropy;
pub mod marching_cubes;
pub mod mesh;
pub mod stats;

pub use compress::{compress_fab, decompress, CompressedBlock};
pub use downsample::{
    downsample_fab, downsample_level, downsample_region, downsample_region_reference,
    reduced_bytes, reduction_memory,
};
pub use entropy::{
    block_entropy, block_entropy_reference, block_entropy_scratch, factors_from_entropy,
    level_entropies,
};
pub use marching_cubes::{extract_block, extract_level, merge_surfaces, GridSurface};
pub use mesh::TriMesh;
pub use stats::{level_stats, subset, BlockStats, Histogram};
