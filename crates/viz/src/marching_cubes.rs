//! Isosurface extraction: marching cubes over cell-centered AMR data.
//!
//! This is the paper's visualization service (§5.1): per-cell, local
//! triangulation with ghost regions supplied by the AMR layer, so no
//! communication is needed during extraction.
//!
//! Each cube (the 8 cell centers of a 2×2×2 cell block) is triangulated by
//! decomposition into six tetrahedra sharing the cube's main diagonal.
//! The decomposition is face-consistent between neighboring cubes, so the
//! extracted surface is watertight — this resolves the ambiguous
//! configurations of the classic 256-case table variant while keeping the
//! identical access pattern and cost profile (work ∝ cells scanned +
//! triangles emitted).

use crate::mesh::{Point, TriMesh};
use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_amr::level_data::LevelData;

/// Corner offsets of a cube, standard MC corner numbering.
const CORNERS: [[i64; 3]; 8] = [
    [0, 0, 0],
    [1, 0, 0],
    [1, 1, 0],
    [0, 1, 0],
    [0, 0, 1],
    [1, 0, 1],
    [1, 1, 1],
    [0, 1, 1],
];

/// Six tetrahedra sharing the 0–6 main diagonal. This split agrees with the
/// same split in every face-adjacent cube (the shared-face diagonals match),
/// which makes the global surface watertight.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
    [0, 5, 1, 6],
];

/// Extract the isosurface of component `comp` at isovalue `iso` from the
/// cubes anchored at the cells of `region`.
///
/// A cube anchored at cell `iv` spans the cell centers `iv .. iv+1`; it is
/// processed only if all 8 corners are available in `fab` (ghost cells
/// included). Vertices are emitted in physical coordinates
/// `origin + (cell + 0.5) * dx`.
pub fn extract_block(
    fab: &Fab,
    comp: usize,
    region: &IBox,
    iso: f64,
    dx: f64,
    origin: Point,
) -> TriMesh {
    let mut mesh = TriMesh::new();
    let avail = fab.ibox();
    // A cube anchored at iv needs corners iv..iv+1, so the anchor set is the
    // region clipped to avail shrunk by one on the high side — the same cells
    // the per-cell `contains` checks admit, without testing each one.
    let anchors = region.intersect(&IBox::new(avail.lo(), avail.hi() - IntVect::UNIT));
    if anchors.is_empty() {
        return mesh;
    }
    let src = fab.comp_slice(comp);
    let sx = avail.size();
    // Flat offsets of the 8 cube corners relative to the anchor cell.
    let mut corner_off = [0usize; 8];
    for (k, c) in CORNERS.iter().enumerate() {
        corner_off[k] = (c[0] + sx[0] * (c[1] + sx[1] * c[2])) as usize;
    }
    let nx = anchors.size()[0] as usize;
    for z in anchors.lo()[2]..=anchors.hi()[2] {
        for y in anchors.lo()[1]..=anchors.hi()[1] {
            let s0 = avail.offset(IntVect::new(anchors.lo()[0], y, z));
            for i in 0..nx {
                let base = s0 + i;
                let mut vals = [0.0f64; 8];
                for (k, off) in corner_off.iter().enumerate() {
                    vals[k] = src[base + off];
                }
                // Quick reject: all corners on one side.
                let any_in = vals.iter().any(|&v| v >= iso);
                let any_out = vals.iter().any(|&v| v < iso);
                if !(any_in && any_out) {
                    continue;
                }
                let x = anchors.lo()[0] + i as i64;
                let mut pts = [[0.0f64; 3]; 8];
                for (k, c) in CORNERS.iter().enumerate() {
                    pts[k] = [
                        origin[0] + ((x + c[0]) as f64 + 0.5) * dx,
                        origin[1] + ((y + c[1]) as f64 + 0.5) * dx,
                        origin[2] + ((z + c[2]) as f64 + 0.5) * dx,
                    ];
                }
                for tet in &TETS {
                    march_tet(
                        [pts[tet[0]], pts[tet[1]], pts[tet[2]], pts[tet[3]]],
                        [vals[tet[0]], vals[tet[1]], vals[tet[2]], vals[tet[3]]],
                        iso,
                        &mut mesh,
                    );
                }
            }
        }
    }
    mesh
}

/// Interpolate the iso crossing on the segment `a`–`b`.
fn lerp(pa: Point, pb: Point, va: f64, vb: f64, iso: f64) -> Point {
    let denom = vb - va;
    let t = if denom.abs() < 1e-300 {
        0.5
    } else {
        ((iso - va) / denom).clamp(0.0, 1.0)
    };
    [
        pa[0] + t * (pb[0] - pa[0]),
        pa[1] + t * (pb[1] - pa[1]),
        pa[2] + t * (pb[2] - pa[2]),
    ]
}

/// Triangulate the isosurface within one tetrahedron.
fn march_tet(p: [Point; 4], v: [f64; 4], iso: f64, mesh: &mut TriMesh) {
    let mut mask = 0usize;
    for (k, &vk) in v.iter().enumerate() {
        if vk >= iso {
            mask |= 1 << k;
        }
    }
    // For each case list the crossed edges (pairs of corner ids) forming a
    // triangle or a quad (as two triangles). Edge order keeps a consistent
    // winding with respect to the "inside" (v >= iso) region.
    let edge = |a: usize, b: usize| lerp(p[a], p[b], v[a], v[b], iso);
    match mask {
        0x0 | 0xF => {}
        // one corner inside
        0x1 => mesh.push_triangle(edge(0, 1), edge(0, 2), edge(0, 3)),
        0x2 => mesh.push_triangle(edge(1, 0), edge(1, 3), edge(1, 2)),
        0x4 => mesh.push_triangle(edge(2, 0), edge(2, 1), edge(2, 3)),
        0x8 => mesh.push_triangle(edge(3, 0), edge(3, 2), edge(3, 1)),
        // one corner outside
        0xE => mesh.push_triangle(edge(0, 1), edge(0, 3), edge(0, 2)),
        0xD => mesh.push_triangle(edge(1, 0), edge(1, 2), edge(1, 3)),
        0xB => mesh.push_triangle(edge(2, 0), edge(2, 3), edge(2, 1)),
        0x7 => mesh.push_triangle(edge(3, 0), edge(3, 1), edge(3, 2)),
        // two in / two out: quad
        0x3 => {
            // 0,1 inside; crossings on 0-2, 0-3, 1-3, 1-2
            let (a, b, c, d) = (edge(0, 2), edge(0, 3), edge(1, 3), edge(1, 2));
            mesh.push_triangle(a, b, c);
            mesh.push_triangle(a, c, d);
        }
        0xC => {
            let (a, b, c, d) = (edge(0, 2), edge(0, 3), edge(1, 3), edge(1, 2));
            mesh.push_triangle(a, c, b);
            mesh.push_triangle(a, d, c);
        }
        0x5 => {
            // 0,2 inside; crossings on 0-1, 0-3, 2-3, 2-1
            let (a, b, c, d) = (edge(0, 1), edge(0, 3), edge(2, 3), edge(2, 1));
            mesh.push_triangle(a, c, b);
            mesh.push_triangle(a, d, c);
        }
        0xA => {
            let (a, b, c, d) = (edge(0, 1), edge(0, 3), edge(2, 3), edge(2, 1));
            mesh.push_triangle(a, b, c);
            mesh.push_triangle(a, c, d);
        }
        0x9 => {
            // 0,3 inside; crossings on 0-1, 0-2, 3-2, 3-1
            let (a, b, c, d) = (edge(0, 1), edge(0, 2), edge(3, 2), edge(3, 1));
            mesh.push_triangle(a, b, c);
            mesh.push_triangle(a, c, d);
        }
        0x6 => {
            let (a, b, c, d) = (edge(0, 1), edge(0, 2), edge(3, 2), edge(3, 1));
            mesh.push_triangle(a, c, b);
            mesh.push_triangle(a, d, c);
        }
        _ => unreachable!("4-bit mask"),
    }
}

/// Extraction output for one grid of a level.
#[derive(Clone, Debug)]
pub struct GridSurface {
    /// Index of the grid in the level's layout.
    pub grid: usize,
    /// Owning rank.
    pub rank: usize,
    /// The extracted patch.
    pub mesh: TriMesh,
}

/// Extract the isosurface from every grid of a level.
///
/// Cube anchors are the grid's valid cells, so patches from different grids
/// never overlap; corners crossing a grid boundary come from ghost cells
/// (call `exchange()` / `fill_ghosts()` first). Needs `nghost ≥ 1`.
pub fn extract_level(data: &LevelData, comp: usize, iso: f64, dx: f64) -> Vec<GridSurface> {
    use rayon::prelude::*;
    assert!(data.nghost() >= 1, "marching cubes needs one ghost layer");
    // Extraction is communication-free (§5.1), so grids process in parallel.
    (0..data.len())
        .into_par_iter()
        .map(|i| {
            let region = data.valid_box(i);
            let mesh = extract_block(data.fab(i), comp, &region, iso, dx, [0.0; 3]);
            GridSurface {
                grid: i,
                rank: data.layout().rank(i),
                mesh,
            }
        })
        .collect()
}

/// Merge per-grid surfaces into one mesh (order-preserving parallel
/// concatenation via [`TriMesh::concat`]).
pub fn merge_surfaces(surfaces: &[GridSurface]) -> TriMesh {
    let parts: Vec<&TriMesh> = surfaces.iter().map(|s| &s.mesh).collect();
    TriMesh::concat(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::domain::ProblemDomain;
    use xlayer_amr::layout::BoxLayout;

    /// A level filled with `f(cell center in index coords)`.
    fn field_level(n: i64, max_box: i64, f: impl Fn(f64, f64, f64) -> f64) -> LevelData {
        let domain = ProblemDomain::new(IBox::cube(n));
        let layout = BoxLayout::decompose(&domain, max_box, 1);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.for_each_mut(|_, fab| {
            for iv in fab.ibox().cells() {
                fab.set(
                    iv,
                    0,
                    f(iv[0] as f64 + 0.5, iv[1] as f64 + 0.5, iv[2] as f64 + 0.5),
                );
            }
        });
        ld
    }

    #[test]
    fn plane_isosurface_has_exact_area() {
        // f = x, iso = 8.0 inside a 16^3 box: the surface is the plane x=8
        // spanning the cube interior sampled on cell centers:
        // y,z ∈ [0.5, 15.5] => area 15x15.
        let ld = field_level(16, 16, |x, _, _| x);
        let surfaces = extract_level(&ld, 0, 8.0, 1.0);
        let mesh = merge_surfaces(&surfaces);
        assert!(!mesh.is_empty());
        assert!(
            (mesh.area() - 225.0).abs() < 1e-9,
            "plane area {} != 225",
            mesh.area()
        );
        // All vertices on x = 8.
        for v in &mesh.vertices {
            assert!((v[0] - 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sphere_isosurface_area_and_watertightness() {
        let c = 8.0;
        let r = 5.0;
        let ld = field_level(16, 16, |x, y, z| {
            ((x - c).powi(2) + (y - c).powi(2) + (z - c).powi(2)).sqrt()
        });
        let surfaces = extract_level(&ld, 0, r, 1.0);
        let mesh = merge_surfaces(&surfaces);
        let expect = 4.0 * std::f64::consts::PI * r * r;
        let got = mesh.area();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "sphere area {got} vs {expect}"
        );
        assert_eq!(
            mesh.boundary_edge_count(1e-9),
            0,
            "sphere surface is not watertight"
        );
    }

    #[test]
    fn multi_grid_extraction_matches_single_grid() {
        let c = 8.0;
        let r = 5.0;
        let f = move |x: f64, y: f64, z: f64| {
            ((x - c).powi(2) + (y - c).powi(2) + (z - c).powi(2)).sqrt()
        };
        let mut single = field_level(16, 16, f);
        let mut multi = field_level(16, 8, f);
        single.exchange();
        multi.exchange();
        let m1 = merge_surfaces(&extract_level(&single, 0, r, 1.0));
        let m2 = merge_surfaces(&extract_level(&multi, 0, r, 1.0));
        assert!((m1.area() - m2.area()).abs() < 1e-9);
        assert_eq!(m2.boundary_edge_count(1e-9), 0, "cross-grid seams leak");
    }

    #[test]
    fn no_crossing_no_triangles() {
        let ld = field_level(8, 8, |_, _, _| 1.0);
        let mesh = merge_surfaces(&extract_level(&ld, 0, 5.0, 1.0));
        assert!(mesh.is_empty());
    }

    #[test]
    fn triangle_count_scales_with_surface_area() {
        // Doubling the sphere radius roughly quadruples triangles.
        let c = 16.0;
        let field = move |x: f64, y: f64, z: f64| {
            ((x - c).powi(2) + (y - c).powi(2) + (z - c).powi(2)).sqrt()
        };
        let ld = field_level(32, 32, field);
        let small = merge_surfaces(&extract_level(&ld, 0, 5.0, 1.0)).num_triangles() as f64;
        let large = merge_surfaces(&extract_level(&ld, 0, 10.0, 1.0)).num_triangles() as f64;
        let ratio = large / small;
        assert!(
            (2.5..6.0).contains(&ratio),
            "triangle scaling ratio {ratio} not ~4"
        );
    }

    #[test]
    fn dx_scales_vertex_positions() {
        let ld = field_level(8, 8, |x, _, _| x);
        let m1 = merge_surfaces(&extract_level(&ld, 0, 4.0, 1.0));
        let m2 = merge_surfaces(&extract_level(&ld, 0, 4.0, 0.5));
        assert!((m2.area() - m1.area() / 4.0).abs() < 1e-9);
    }

    #[test]
    fn rank_passthrough() {
        let ld = field_level(16, 8, |x, _, _| x);
        let surfaces = extract_level(&ld, 0, 8.0, 1.0);
        assert_eq!(surfaces.len(), ld.len());
        for s in &surfaces {
            assert_eq!(s.rank, ld.layout().rank(s.grid));
        }
    }
}
