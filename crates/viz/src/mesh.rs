//! Triangle meshes produced by isosurface extraction.

/// A point in physical space.
pub type Point = [f64; 3];

/// An indexed triangle mesh.
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Point>,
    /// Triangles as vertex-index triples (counter-clockwise seen from the
    /// positive side of the isosurface).
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// True if the mesh has no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Approximate in-memory size: the paper's in-transit memory constraint
    /// (Eq. 10) is expressed over data volumes, and analysis output counts.
    pub fn bytes(&self) -> u64 {
        (self.vertices.len() * std::mem::size_of::<Point>()
            + self.triangles.len() * std::mem::size_of::<[u32; 3]>()) as u64
    }

    /// Append a raw triangle (three new vertices, no welding).
    pub fn push_triangle(&mut self, a: Point, b: Point, c: Point) {
        let base = self.vertices.len() as u32;
        self.vertices.push(a);
        self.vertices.push(b);
        self.vertices.push(c);
        self.triangles.push([base, base + 1, base + 2]);
    }

    /// Merge another mesh into this one.
    pub fn append(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                let a = self.vertices[t[0] as usize];
                let b = self.vertices[t[1] as usize];
                let c = self.vertices[t[2] as usize];
                triangle_area(a, b, c)
            })
            .sum()
    }

    /// Axis-aligned bounding box of the vertices, or `None` if empty.
    pub fn bounds(&self) -> Option<(Point, Point)> {
        let mut it = self.vertices.iter();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            for d in 0..3 {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
        Some((lo, hi))
    }

    /// Weld vertices closer than `eps` (exact grid duplicates in practice),
    /// remapping triangles. Returns the welded mesh.
    pub fn welded(&self, eps: f64) -> TriMesh {
        let quant = |v: &Point| -> (i64, i64, i64) {
            (
                (v[0] / eps).round() as i64,
                (v[1] / eps).round() as i64,
                (v[2] / eps).round() as i64,
            )
        };
        let mut map = std::collections::HashMap::new();
        let mut vertices = Vec::new();
        let mut remap = Vec::with_capacity(self.vertices.len());
        for v in &self.vertices {
            let k = quant(v);
            let idx = *map.entry(k).or_insert_with(|| {
                vertices.push(*v);
                (vertices.len() - 1) as u32
            });
            remap.push(idx);
        }
        let triangles = self
            .triangles
            .iter()
            .map(|t| {
                [
                    remap[t[0] as usize],
                    remap[t[1] as usize],
                    remap[t[2] as usize],
                ]
            })
            .filter(|t| t[0] != t[1] && t[1] != t[2] && t[0] != t[2])
            .collect();
        TriMesh {
            vertices,
            triangles,
        }
    }

    /// Count boundary edges (edges used by exactly one triangle) after
    /// welding — 0 for a watertight surface.
    pub fn boundary_edge_count(&self, eps: f64) -> usize {
        let w = self.welded(eps);
        let mut edges = std::collections::HashMap::new();
        for t in &w.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0usize) += 1;
            }
        }
        edges.values().filter(|&&c| c == 1).count()
    }
}

/// Area of a single triangle.
pub fn triangle_area(a: Point, b: Point, c: Point) -> f64 {
    let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
    let cx = u[1] * v[2] - u[2] * v[1];
    let cy = u[2] * v[0] - u[0] * v[2];
    let cz = u[0] * v[1] - u[1] * v[0];
    0.5 * (cx * cx + cy * cy + cz * cz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_area_unit() {
        let a = triangle_area([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn push_and_append() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let mut n = TriMesh::new();
        n.push_triangle([0.0; 3], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]);
        m.append(&n);
        assert_eq!(m.num_triangles(), 2);
        assert_eq!(m.num_vertices(), 6);
        assert!(m.bytes() > 0);
    }

    #[test]
    fn weld_merges_shared_vertices() {
        let mut m = TriMesh::new();
        // Two triangles sharing an edge, pushed as soup (6 verts).
        m.push_triangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        m.push_triangle([1.0, 0.0, 0.0], [1.0, 1.0, 0.0], [0.0, 1.0, 0.0]);
        let w = m.welded(1e-9);
        assert_eq!(w.num_vertices(), 4);
        assert_eq!(w.num_triangles(), 2);
        assert!((w.area() - m.area()).abs() < 1e-12);
    }

    #[test]
    fn boundary_edges_of_open_patch() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert_eq!(m.boundary_edge_count(1e-9), 3);
    }

    #[test]
    fn bounds() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [2.0, 0.0, 0.0], [0.0, -1.0, 3.0]);
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, [0.0, -1.0, 0.0]);
        assert_eq!(hi, [2.0, 0.0, 3.0]);
        assert!(TriMesh::new().bounds().is_none());
    }

    #[test]
    fn degenerate_triangles_removed_by_weld() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [0.0; 3], [0.0, 1.0, 0.0]);
        let w = m.welded(1e-9);
        assert_eq!(w.num_triangles(), 0);
    }
}
