//! Triangle meshes produced by isosurface extraction.

/// A point in physical space.
pub type Point = [f64; 3];

/// An indexed triangle mesh.
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Point>,
    /// Triangles as vertex-index triples (counter-clockwise seen from the
    /// positive side of the isosurface).
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// True if the mesh has no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Approximate in-memory size: the paper's in-transit memory constraint
    /// (Eq. 10) is expressed over data volumes, and analysis output counts.
    pub fn bytes(&self) -> u64 {
        (self.vertices.len() * std::mem::size_of::<Point>()
            + self.triangles.len() * std::mem::size_of::<[u32; 3]>()) as u64
    }

    /// Append a raw triangle (three new vertices, no welding).
    pub fn push_triangle(&mut self, a: Point, b: Point, c: Point) {
        let base = self.vertices.len() as u32;
        self.vertices.push(a);
        self.vertices.push(b);
        self.vertices.push(c);
        self.triangles.push([base, base + 1, base + 2]);
    }

    /// Merge another mesh into this one.
    pub fn append(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }

    /// Concatenate many meshes into one, in order.
    ///
    /// Output sizes and per-part vertex bases are prefix sums of the input
    /// counts, so the result buffers are allocated once at final size —
    /// equivalent to repeated [`TriMesh::append`] but without the serial
    /// reallocation-and-copy chain. Small merges (under
    /// [`CONCAT_PARALLEL_MIN_BYTES`] of output) copy serially into the
    /// exact-capacity buffers; larger ones index-remap each part into its
    /// own disjoint slice in parallel.
    pub fn concat(parts: &[&TriMesh]) -> TriMesh {
        // With a single rayon thread there is no parallelism to buy with
        // the parallel path's fork-join and zero-fill overhead, whatever
        // the output size — stay serial.
        let min_bytes = if rayon::current_num_threads() > 1 {
            CONCAT_PARALLEL_MIN_BYTES
        } else {
            usize::MAX
        };
        Self::concat_impl(parts, min_bytes)
    }

    fn concat_impl(parts: &[&TriMesh], parallel_min_bytes: usize) -> TriMesh {
        use rayon::prelude::*;
        let total_v: usize = parts.iter().map(|m| m.vertices.len()).sum();
        let total_t: usize = parts.iter().map(|m| m.triangles.len()).sum();
        let out_bytes =
            total_v * std::mem::size_of::<Point>() + total_t * std::mem::size_of::<[u32; 3]>();
        if out_bytes < parallel_min_bytes {
            // Small output: the fork-join and zero-fill overhead of the
            // parallel path exceeds the copy it saves. Build serially into
            // exact-capacity buffers (no reallocation chain, no memset).
            let mut out = TriMesh {
                vertices: Vec::with_capacity(total_v),
                triangles: Vec::with_capacity(total_t),
            };
            for src in parts {
                out.append(src);
            }
            return out;
        }
        let mut vertices = vec![[0.0f64; 3]; total_v];
        let mut triangles = vec![[0u32; 3]; total_t];
        struct Job<'a> {
            src: &'a TriMesh,
            verts: &'a mut [Point],
            tris: &'a mut [[u32; 3]],
            base: u32,
        }
        let mut jobs = Vec::with_capacity(parts.len());
        {
            let mut vrest: &mut [Point] = &mut vertices;
            let mut trest: &mut [[u32; 3]] = &mut triangles;
            let mut base = 0u32;
            for &src in parts {
                let (v, vr) = std::mem::take(&mut vrest).split_at_mut(src.vertices.len());
                let (t, tr) = std::mem::take(&mut trest).split_at_mut(src.triangles.len());
                vrest = vr;
                trest = tr;
                jobs.push(Job {
                    src,
                    verts: v,
                    tris: t,
                    base,
                });
                base += src.vertices.len() as u32;
            }
        }
        jobs.par_iter_mut().for_each(|job| {
            job.verts.copy_from_slice(&job.src.vertices);
            for (dst, t) in job.tris.iter_mut().zip(&job.src.triangles) {
                *dst = [t[0] + job.base, t[1] + job.base, t[2] + job.base];
            }
        });
        TriMesh {
            vertices,
            triangles,
        }
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                let a = self.vertices[t[0] as usize];
                let b = self.vertices[t[1] as usize];
                let c = self.vertices[t[2] as usize];
                triangle_area(a, b, c)
            })
            .sum()
    }

    /// Axis-aligned bounding box of the vertices, or `None` if empty.
    pub fn bounds(&self) -> Option<(Point, Point)> {
        let mut it = self.vertices.iter();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            for d in 0..3 {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
        Some((lo, hi))
    }

    /// Weld vertices closer than `eps` (exact grid duplicates in practice),
    /// remapping triangles. Returns the welded mesh.
    pub fn welded(&self, eps: f64) -> TriMesh {
        let quant = |v: &Point| -> (i64, i64, i64) {
            (
                (v[0] / eps).round() as i64,
                (v[1] / eps).round() as i64,
                (v[2] / eps).round() as i64,
            )
        };
        // BTreeMap so the welded vertex numbering is a pure function of the
        // input (first-occurrence order), never of a hasher's bucket layout.
        let mut map = std::collections::BTreeMap::new();
        let mut vertices = Vec::new();
        let mut remap = Vec::with_capacity(self.vertices.len());
        for v in &self.vertices {
            let k = quant(v);
            let idx = *map.entry(k).or_insert_with(|| {
                vertices.push(*v);
                (vertices.len() - 1) as u32
            });
            remap.push(idx);
        }
        let triangles = self
            .triangles
            .iter()
            .map(|t| {
                [
                    remap[t[0] as usize],
                    remap[t[1] as usize],
                    remap[t[2] as usize],
                ]
            })
            .filter(|t| t[0] != t[1] && t[1] != t[2] && t[0] != t[2])
            .collect();
        TriMesh {
            vertices,
            triangles,
        }
    }

    /// Count boundary edges (edges used by exactly one triangle) after
    /// welding — 0 for a watertight surface.
    pub fn boundary_edge_count(&self, eps: f64) -> usize {
        let w = self.welded(eps);
        let mut edges = std::collections::BTreeMap::new();
        for t in &w.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0usize) += 1;
            }
        }
        edges.values().filter(|&&c| c == 1).count()
    }
}

/// Output size below which [`TriMesh::concat`] copies serially instead of
/// fanning out to rayon: ~2 MiB, a few hundred per-grid surface patches.
pub const CONCAT_PARALLEL_MIN_BYTES: usize = 2 << 20;

/// Area of a single triangle.
pub fn triangle_area(a: Point, b: Point, c: Point) -> f64 {
    let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
    let cx = u[1] * v[2] - u[2] * v[1];
    let cy = u[2] * v[0] - u[0] * v[2];
    let cz = u[0] * v[1] - u[1] * v[0];
    0.5 * (cx * cx + cy * cy + cz * cz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_area_unit() {
        let a = triangle_area([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn push_and_append() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        let mut n = TriMesh::new();
        n.push_triangle([0.0; 3], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]);
        m.append(&n);
        assert_eq!(m.num_triangles(), 2);
        assert_eq!(m.num_vertices(), 6);
        assert!(m.bytes() > 0);
    }

    #[test]
    fn concat_matches_serial_append() {
        let mut parts = Vec::new();
        for i in 0..17 {
            let mut m = TriMesh::new();
            for j in 0..=(i % 5) {
                let o = (i * 10 + j) as f64;
                m.push_triangle([o, 0.0, 0.0], [o + 1.0, 0.0, 0.0], [o, 1.0, 0.0]);
            }
            parts.push(m);
        }
        let mut serial = TriMesh::new();
        for p in &parts {
            serial.append(p);
        }
        let refs: Vec<&TriMesh> = parts.iter().collect();
        // Both branches must agree with the serial reference: the
        // exact-capacity path (threshold above the output size) and the
        // parallel prefix-sum path (threshold 0 forces the rayon fan-out).
        for threshold in [usize::MAX, 0] {
            let got = TriMesh::concat_impl(&refs, threshold);
            assert_eq!(got.vertices, serial.vertices);
            assert_eq!(got.triangles, serial.triangles);
        }
        let par = TriMesh::concat(&refs);
        assert_eq!(par.vertices, serial.vertices);
        assert_eq!(par.triangles, serial.triangles);
        assert!(TriMesh::concat(&[]).is_empty());
    }

    #[test]
    fn weld_merges_shared_vertices() {
        let mut m = TriMesh::new();
        // Two triangles sharing an edge, pushed as soup (6 verts).
        m.push_triangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        m.push_triangle([1.0, 0.0, 0.0], [1.0, 1.0, 0.0], [0.0, 1.0, 0.0]);
        let w = m.welded(1e-9);
        assert_eq!(w.num_vertices(), 4);
        assert_eq!(w.num_triangles(), 2);
        assert!((w.area() - m.area()).abs() < 1e-12);
    }

    #[test]
    fn boundary_edges_of_open_patch() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        assert_eq!(m.boundary_edge_count(1e-9), 3);
    }

    #[test]
    fn bounds() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [2.0, 0.0, 0.0], [0.0, -1.0, 3.0]);
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, [0.0, -1.0, 0.0]);
        assert_eq!(hi, [2.0, 0.0, 3.0]);
        assert!(TriMesh::new().bounds().is_none());
    }

    #[test]
    fn degenerate_triangles_removed_by_weld() {
        let mut m = TriMesh::new();
        m.push_triangle([0.0; 3], [0.0; 3], [0.0, 1.0, 0.0]);
        let w = m.welded(1e-9);
        assert_eq!(w.num_triangles(), 0);
    }
}
