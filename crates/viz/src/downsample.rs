//! Spatial down-sampling: the application-layer data-reduction mechanism
//! (paper §4.1, Eqs. 1–3).
//!
//! `f_data_reduce(S_data, X)` reduces a block by factor `X` per direction
//! (X³ in volume) by block-averaging, and the memory model
//! `Mem_data_reduce` mirrors the policy's constraint (Eq. 2).

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::level_data::LevelData;

/// Down-sample `comp` of `fab` over its whole box by factor `x` per
/// direction, averaging each x³ block (partial edge blocks average the
/// cells present). The result covers `fab.box().coarsen(x)`.
pub fn downsample_fab(fab: &Fab, comp: usize, x: u32) -> Fab {
    assert!(x >= 1);
    let x = x as i64;
    let src_box = fab.ibox();
    let dst_box = src_box.coarsen(x);
    let mut out = Fab::new(dst_box, 1);
    for civ in dst_box.cells() {
        let fine = IBox::single(civ).refine(x).intersect(&src_box);
        let mut acc = 0.0;
        let mut n = 0u64;
        for fiv in fine.cells() {
            acc += fab.get(fiv, comp);
            n += 1;
        }
        out.set(civ, 0, if n > 0 { acc / n as f64 } else { 0.0 });
    }
    out
}

/// Down-sample every grid of a level by a per-grid factor.
/// Returns one reduced fab per grid plus the factor that produced it.
pub fn downsample_level(data: &LevelData, comp: usize, factors: &[u32]) -> Vec<(Fab, u32)> {
    assert_eq!(factors.len(), data.len());
    (0..data.len())
        .map(|i| {
            // Reduce the valid region only — ghosts are re-derivable.
            let valid = data.valid_box(i);
            let mut tight = Fab::new(valid, 1);
            tight.copy_from_comp(data.fab(i), &valid, comp);
            (downsample_fab(&tight, 0, factors[i]), factors[i])
        })
        .collect()
}

/// Bytes of the reduced output of a block of `bytes` reduced by factor `x`
/// per direction — the policy objective term `f_data_reduce(S_data, X)`
/// (Eq. 1).
pub fn reduced_bytes(bytes: u64, x: u32) -> u64 {
    let v = (x as u64).pow(3);
    bytes.div_ceil(v)
}

/// Transient memory needed to perform the reduction of a block of `bytes`
/// at factor `x`: the input stays resident while the output is built —
/// `Mem_data_reduce(S_data, X)` (Eq. 2).
pub fn reduction_memory(bytes: u64, x: u32) -> u64 {
    bytes + reduced_bytes(bytes, x)
}

/// Mean-squared error between a fab and the reconstruction of its
/// down-sampled version (piecewise-constant upsampling) — quantifies the
/// information lost by factor `x`, the quantity the entropy policy trades
/// against memory.
pub fn reconstruction_mse(fab: &Fab, comp: usize, x: u32) -> f64 {
    let ds = downsample_fab(fab, comp, x);
    let src_box = fab.ibox();
    let mut acc = 0.0;
    for iv in src_box.cells() {
        let civ = iv.coarsen(x as i64);
        let d = fab.get(iv, comp) - ds.get(civ, 0);
        acc += d * d;
    }
    acc / src_box.num_cells() as f64
}

/// Extension trait: copy a single component between fabs.
trait CopyComp {
    fn copy_from_comp(&mut self, src: &Fab, region: &IBox, comp: usize);
}

impl CopyComp for Fab {
    fn copy_from_comp(&mut self, src: &Fab, region: &IBox, comp: usize) {
        let r = region.intersect(&self.ibox()).intersect(&src.ibox());
        for iv in r.cells() {
            self.set(iv, 0, src.get(iv, comp));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_amr::intvect::IntVect;

    fn coord_fab(n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            f.set(iv, 0, iv[0] as f64);
        }
        f
    }

    #[test]
    fn factor_one_is_identity() {
        let f = coord_fab(8);
        let d = downsample_fab(&f, 0, 1);
        assert_eq!(d.ibox(), f.ibox());
        for iv in f.ibox().cells() {
            assert_eq!(d.get(iv, 0), f.get(iv, 0));
        }
    }

    #[test]
    fn averaging_preserves_mean() {
        let f = coord_fab(8);
        let d = downsample_fab(&f, 0, 2);
        let mean_src = f.sum_on(&f.ibox(), 0) / f.ibox().num_cells() as f64;
        let mean_dst = d.sum_on(&d.ibox(), 0) / d.ibox().num_cells() as f64;
        assert!((mean_src - mean_dst).abs() < 1e-12);
    }

    #[test]
    fn output_box_coarsens() {
        let f = coord_fab(8);
        let d = downsample_fab(&f, 0, 4);
        assert_eq!(d.ibox(), IBox::cube(2));
        // Each coarse cell holds the average of its 4^3 block:
        // x-average of {0..3} = 1.5, of {4..7} = 5.5.
        assert_eq!(d.get(IntVect::ZERO, 0), 1.5);
        assert_eq!(d.get(IntVect::new(1, 0, 0), 0), 5.5);
    }

    #[test]
    fn nondivisible_extent_averages_partial_blocks() {
        let b = IBox::cube(5);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            f.set(iv, 0, 2.0);
        }
        let d = downsample_fab(&f, 0, 2);
        // 5 coarsened by 2 → 3 cells; all averages are 2.0.
        assert_eq!(d.ibox(), IBox::cube(3));
        for iv in d.ibox().cells() {
            assert_eq!(d.get(iv, 0), 2.0);
        }
    }

    #[test]
    fn reduced_bytes_scales_cubically() {
        assert_eq!(reduced_bytes(8000, 1), 8000);
        assert_eq!(reduced_bytes(8000, 2), 1000);
        assert_eq!(reduced_bytes(8000, 10), 8);
        // ceil behaviour
        assert_eq!(reduced_bytes(9, 2), 2);
    }

    #[test]
    fn reduction_memory_includes_both_buffers() {
        assert_eq!(reduction_memory(8000, 2), 9000);
        assert!(reduction_memory(8000, 16) > 8000);
    }

    #[test]
    fn mse_grows_with_factor_on_nonconstant_data() {
        let f = coord_fab(16);
        let m2 = reconstruction_mse(&f, 0, 2);
        let m4 = reconstruction_mse(&f, 0, 4);
        assert!(m2 > 0.0);
        assert!(m4 > m2, "mse(4)={m4} should exceed mse(2)={m2}");
    }

    #[test]
    fn mse_zero_on_constant_data() {
        let b = IBox::cube(8);
        let f = Fab::filled(b, 1, 7.0);
        assert_eq!(reconstruction_mse(&f, 0, 4), 0.0);
    }

    #[test]
    fn downsample_level_respects_per_grid_factors() {
        use xlayer_amr::domain::ProblemDomain;
        use xlayer_amr::layout::BoxLayout;
        use xlayer_amr::level_data::LevelData;
        let domain = ProblemDomain::new(IBox::cube(8));
        let layout = BoxLayout::decompose(&domain, 4, 1);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.fill(1.0);
        let n = ld.len();
        let mut factors = vec![1u32; n];
        factors[0] = 4;
        let out = downsample_level(&ld, 0, &factors);
        assert_eq!(out.len(), n);
        assert_eq!(out[0].0.ibox().num_cells(), 1); // 4^3 -> 1
        assert_eq!(out[1].0.ibox().num_cells(), 64);
        assert_eq!(out[0].1, 4);
    }
}
