//! Spatial down-sampling: the application-layer data-reduction mechanism
//! (paper §4.1, Eqs. 1–3).
//!
//! `f_data_reduce(S_data, X)` reduces a block by factor `X` per direction
//! (X³ in volume) by block-averaging, and the memory model
//! `Mem_data_reduce` mirrors the policy's constraint (Eq. 2).
//!
//! The production kernels iterate contiguous flat-offset rows of the fab
//! payload (x-fastest Fortran order) instead of per-cell `IntVect`
//! indexing; the straightforward per-cell variants are kept as
//! `*_reference` functions, and property tests assert the flat kernels are
//! bit-identical to them (the accumulation order per coarse cell is the
//! same, so even the floating-point sums match exactly).

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_amr::level_data::LevelData;

/// Down-sample `comp` of `fab` over its whole box by factor `x` per
/// direction, averaging each x³ block (partial edge blocks average the
/// cells present). The result covers `fab.box().coarsen(x)`.
pub fn downsample_fab(fab: &Fab, comp: usize, x: u32) -> Fab {
    downsample_region(fab, comp, &fab.ibox(), x)
}

/// Down-sample `comp` of `fab` restricted to `region ∩ fab.box()` by
/// factor `x` per direction. The result covers the coarsened clipped
/// region; each coarse cell averages the clipped fine cells it covers.
///
/// This reads the source component in place — reducing one component of a
/// multi-component level fab needs no tight intermediate copy.
pub fn downsample_region(fab: &Fab, comp: usize, region: &IBox, x: u32) -> Fab {
    assert!(x >= 1);
    let x = x as i64;
    let r = region.intersect(&fab.ibox());
    let dst_box = r.coarsen(x);
    let mut out = Fab::new(dst_box, 1);
    if r.is_empty() {
        return out;
    }
    let src_box = fab.ibox();
    let src = fab.comp_slice(comp);
    let nx = r.size()[0] as usize;
    let clo = r.lo().coarsen(x);
    {
        // Pass 1: accumulate fine sums into the coarse cells. The global
        // x-fastest traversal visits the fine cells of each coarse block in
        // exactly the order the per-cell reference sums them; each x-run of
        // a row belongs to one coarse cell, so it is accumulated in a
        // register and flushed once (same FP addition chain, no per-element
        // store). The first run of a row may be partial when the region's
        // low edge is not block-aligned; the common factors get a
        // monomorphized kernel whose fixed-length runs unroll.
        let dst = out.as_mut_slice();
        let first_run = (((clo[0] + 1) * x - r.lo()[0]) as usize).min(nx);
        let row_pass = |row: &[f64], di: usize, dst: &mut [f64]| match x {
            2 => accumulate_runs::<2>(row, first_run, di, dst),
            4 => accumulate_runs::<4>(row, first_run, di, dst),
            8 => accumulate_runs::<8>(row, first_run, di, dst),
            _ => accumulate_runs_generic(row, first_run, x as usize, di, dst),
        };
        for z in r.lo()[2]..=r.hi()[2] {
            let cz = z.div_euclid(x);
            for y in r.lo()[1]..=r.hi()[1] {
                let cy = y.div_euclid(x);
                let s0 = src_box.offset(IntVect::new(r.lo()[0], y, z));
                let di = dst_box.offset(IntVect::new(clo[0], cy, cz));
                row_pass(&src[s0..s0 + nx], di, dst);
            }
        }
    }
    // Pass 2: divide by the per-coarse-cell fine count. The count is
    // separable: (cells in x) × (cells in y) × (cells in z).
    let counts = |d: usize| -> Vec<f64> {
        (clo[d]..=r.hi()[d].div_euclid(x))
            .map(|c| {
                let lo = (c * x).max(r.lo()[d]);
                let hi = (c * x + x - 1).min(r.hi()[d]);
                (hi - lo + 1) as f64
            })
            .collect()
    };
    let (cx, cy, cz) = (counts(0), counts(1), counts(2));
    let dst = out.as_mut_slice();
    let mut di = 0;
    for nz in &cz {
        for ny in &cy {
            for nx in &cx {
                dst[di] /= nx * ny * nz;
                di += 1;
            }
        }
    }
    out
}

/// Accumulate one row's x-runs into `dst[di..]`, run length `X` known at
/// compile time so the per-run addition chain unrolls. `head` is the length
/// of the (possibly partial) first run; runs after it are `X` long except
/// possibly the last.
fn accumulate_runs<const X: usize>(row: &[f64], head: usize, mut di: usize, dst: &mut [f64]) {
    let (first, rest) = row.split_at(head.min(row.len()));
    if !first.is_empty() {
        let mut acc = dst[di];
        for &v in first {
            acc += v;
        }
        dst[di] = acc;
        di += 1;
    }
    let mut chunks = rest.chunks_exact(X);
    for ch in &mut chunks {
        let mut acc = dst[di];
        for &v in ch {
            acc += v;
        }
        dst[di] = acc;
        di += 1;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut acc = dst[di];
        for &v in tail {
            acc += v;
        }
        dst[di] = acc;
    }
}

/// [`accumulate_runs`] for arbitrary run length.
fn accumulate_runs_generic(row: &[f64], head: usize, x: usize, mut di: usize, dst: &mut [f64]) {
    let mut i = 0usize;
    let mut run = head;
    while i < row.len() {
        let end = (i + run).min(row.len());
        let mut acc = dst[di];
        for &v in &row[i..end] {
            acc += v;
        }
        dst[di] = acc;
        di += 1;
        i = end;
        run = x;
    }
}

/// Per-cell reference implementation of [`downsample_region`]: gathers each
/// coarse cell's fine block through `Fab::get`. Kept as the equivalence
/// baseline for property tests and the kernel benchmarks.
pub fn downsample_region_reference(fab: &Fab, comp: usize, region: &IBox, x: u32) -> Fab {
    assert!(x >= 1);
    let x = x as i64;
    let r = region.intersect(&fab.ibox());
    let dst_box = r.coarsen(x);
    let mut out = Fab::new(dst_box, 1);
    for civ in dst_box.cells() {
        let fine = IBox::single(civ).refine(x).intersect(&r);
        let mut acc = 0.0;
        let mut n = 0u64;
        for fiv in fine.cells() {
            acc += fab.get(fiv, comp);
            n += 1;
        }
        out.set(civ, 0, if n > 0 { acc / n as f64 } else { 0.0 });
    }
    out
}

/// Down-sample every grid of a level by a per-grid factor, in parallel
/// (grids are disjoint). Returns one reduced fab per grid plus the factor
/// that produced it. Each grid is reduced straight from its level fab's
/// component — no tight single-component copy is made.
pub fn downsample_level(data: &LevelData, comp: usize, factors: &[u32]) -> Vec<(Fab, u32)> {
    use rayon::prelude::*;
    assert_eq!(factors.len(), data.len());
    (0..data.len())
        .into_par_iter()
        .map(|i| {
            // Reduce the valid region only — ghosts are re-derivable.
            let valid = data.valid_box(i);
            (
                downsample_region(data.fab(i), comp, &valid, factors[i]),
                factors[i],
            )
        })
        .collect()
}

/// Bytes of the reduced output of a block of `bytes` reduced by factor `x`
/// per direction — the policy objective term `f_data_reduce(S_data, X)`
/// (Eq. 1).
pub fn reduced_bytes(bytes: u64, x: u32) -> u64 {
    let v = (x as u64).pow(3);
    bytes.div_ceil(v)
}

/// Transient memory needed to perform the reduction of a block of `bytes`
/// at factor `x`: the input stays resident while the output is built —
/// `Mem_data_reduce(S_data, X)` (Eq. 2).
pub fn reduction_memory(bytes: u64, x: u32) -> u64 {
    bytes + reduced_bytes(bytes, x)
}

/// Mean-squared error between a fab and the reconstruction of its
/// down-sampled version (piecewise-constant upsampling) — quantifies the
/// information lost by factor `x`, the quantity the entropy policy trades
/// against memory.
pub fn reconstruction_mse(fab: &Fab, comp: usize, x: u32) -> f64 {
    let ds = downsample_fab(fab, comp, x);
    let src_box = fab.ibox();
    let src = fab.comp_slice(comp);
    let ds_box = ds.ibox();
    let dsd = ds.as_slice();
    let x = x as i64;
    let nx = src_box.size()[0] as usize;
    let clo0 = src_box.lo()[0].div_euclid(x);
    let first_run = (((clo0 + 1) * x - src_box.lo()[0]) as usize).min(nx);
    let mut acc = 0.0;
    for z in src_box.lo()[2]..=src_box.hi()[2] {
        let cz = z.div_euclid(x);
        for y in src_box.lo()[1]..=src_box.hi()[1] {
            let cy = y.div_euclid(x);
            let s0 = src_box.offset(IntVect::new(src_box.lo()[0], y, z));
            let row = &src[s0..s0 + nx];
            let mut di = ds_box.offset(IntVect::new(clo0, cy, cz));
            // Each x-run of the row compares against one coarse value,
            // loaded once per run; the global accumulation order matches
            // the per-cell reference exactly.
            let mut i = 0usize;
            let mut run = first_run;
            while i < nx {
                let end = (i + run).min(nx);
                let dsv = dsd[di];
                for &v in &row[i..end] {
                    let d = v - dsv;
                    acc += d * d;
                }
                di += 1;
                i = end;
                run = x as usize;
            }
        }
    }
    acc / src_box.num_cells() as f64
}

/// Per-cell reference implementation of [`reconstruction_mse`].
pub fn reconstruction_mse_reference(fab: &Fab, comp: usize, x: u32) -> f64 {
    let ds = downsample_region_reference(fab, comp, &fab.ibox(), x);
    let src_box = fab.ibox();
    let mut acc = 0.0;
    for iv in src_box.cells() {
        let civ = iv.coarsen(x as i64);
        let d = fab.get(iv, comp) - ds.get(civ, 0);
        acc += d * d;
    }
    acc / src_box.num_cells() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_fab(n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            f.set(iv, 0, iv[0] as f64);
        }
        f
    }

    #[test]
    fn factor_one_is_identity() {
        let f = coord_fab(8);
        let d = downsample_fab(&f, 0, 1);
        assert_eq!(d.ibox(), f.ibox());
        for iv in f.ibox().cells() {
            assert_eq!(d.get(iv, 0), f.get(iv, 0));
        }
    }

    #[test]
    fn averaging_preserves_mean() {
        let f = coord_fab(8);
        let d = downsample_fab(&f, 0, 2);
        let mean_src = f.sum_on(&f.ibox(), 0) / f.ibox().num_cells() as f64;
        let mean_dst = d.sum_on(&d.ibox(), 0) / d.ibox().num_cells() as f64;
        assert!((mean_src - mean_dst).abs() < 1e-12);
    }

    #[test]
    fn output_box_coarsens() {
        let f = coord_fab(8);
        let d = downsample_fab(&f, 0, 4);
        assert_eq!(d.ibox(), IBox::cube(2));
        // Each coarse cell holds the average of its 4^3 block:
        // x-average of {0..3} = 1.5, of {4..7} = 5.5.
        assert_eq!(d.get(IntVect::ZERO, 0), 1.5);
        assert_eq!(d.get(IntVect::new(1, 0, 0), 0), 5.5);
    }

    #[test]
    fn nondivisible_extent_averages_partial_blocks() {
        let b = IBox::cube(5);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            f.set(iv, 0, 2.0);
        }
        let d = downsample_fab(&f, 0, 2);
        // 5 coarsened by 2 → 3 cells; all averages are 2.0.
        assert_eq!(d.ibox(), IBox::cube(3));
        for iv in d.ibox().cells() {
            assert_eq!(d.get(iv, 0), 2.0);
        }
    }

    #[test]
    fn flat_matches_reference_on_offset_box() {
        // Negative lows exercise the div_euclid coarse-index arithmetic.
        let b = IBox::new(IntVect::new(-3, -1, -5), IntVect::new(4, 6, 1));
        let mut f = Fab::new(b, 2);
        for iv in b.cells() {
            f.set(iv, 1, (iv[0] * 97 + iv[1] * 31 + iv[2] * 7) as f64 * 0.37);
        }
        for x in [1u32, 2, 3, 4] {
            let flat = downsample_region(&f, 1, &b, x);
            let rf = downsample_region_reference(&f, 1, &b, x);
            assert_eq!(flat.ibox(), rf.ibox());
            assert_eq!(flat.as_slice(), rf.as_slice(), "factor {x}");
        }
    }

    #[test]
    fn region_clipped_by_fab_box() {
        let f = coord_fab(8);
        let region = IBox::new(IntVect::new(2, 2, 2), IntVect::new(20, 20, 20));
        let flat = downsample_region(&f, 0, &region, 2);
        let rf = downsample_region_reference(&f, 0, &region, 2);
        assert_eq!(flat.ibox(), rf.ibox());
        assert_eq!(flat.as_slice(), rf.as_slice());
        assert_eq!(flat.ibox(), IBox::new(IntVect::splat(1), IntVect::splat(3)));
    }

    #[test]
    fn reduced_bytes_scales_cubically() {
        assert_eq!(reduced_bytes(8000, 1), 8000);
        assert_eq!(reduced_bytes(8000, 2), 1000);
        assert_eq!(reduced_bytes(8000, 10), 8);
        // ceil behaviour
        assert_eq!(reduced_bytes(9, 2), 2);
    }

    #[test]
    fn reduction_memory_includes_both_buffers() {
        assert_eq!(reduction_memory(8000, 2), 9000);
        assert!(reduction_memory(8000, 16) > 8000);
    }

    #[test]
    fn mse_grows_with_factor_on_nonconstant_data() {
        let f = coord_fab(16);
        let m2 = reconstruction_mse(&f, 0, 2);
        let m4 = reconstruction_mse(&f, 0, 4);
        assert!(m2 > 0.0);
        assert!(m4 > m2, "mse(4)={m4} should exceed mse(2)={m2}");
    }

    #[test]
    fn mse_zero_on_constant_data() {
        let b = IBox::cube(8);
        let f = Fab::filled(b, 1, 7.0);
        assert_eq!(reconstruction_mse(&f, 0, 4), 0.0);
    }

    #[test]
    fn downsample_level_respects_per_grid_factors() {
        use xlayer_amr::domain::ProblemDomain;
        use xlayer_amr::layout::BoxLayout;
        use xlayer_amr::level_data::LevelData;
        let domain = ProblemDomain::new(IBox::cube(8));
        let layout = BoxLayout::decompose(&domain, 4, 1);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        ld.fill(1.0);
        let n = ld.len();
        let mut factors = vec![1u32; n];
        factors[0] = 4;
        let out = downsample_level(&ld, 0, &factors);
        assert_eq!(out.len(), n);
        assert_eq!(out[0].0.ibox().num_cells(), 1); // 4^3 -> 1
        assert_eq!(out[1].0.ibox().num_cells(), 64);
        assert_eq!(out[0].1, 4);
    }

    #[test]
    fn downsample_level_reads_the_right_component() {
        use xlayer_amr::domain::ProblemDomain;
        use xlayer_amr::layout::BoxLayout;
        use xlayer_amr::level_data::LevelData;
        let domain = ProblemDomain::new(IBox::cube(4));
        let layout = BoxLayout::decompose(&domain, 4, 1);
        let mut ld = LevelData::new(layout, domain, 2, 1);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                fab.set(iv, 1, 3.0);
            }
        });
        let out = downsample_level(&ld, 1, &vec![2; ld.len()]);
        for (fab, _) in &out {
            for iv in fab.ibox().cells() {
                assert_eq!(fab.get(iv, 0), 3.0);
            }
        }
    }
}
