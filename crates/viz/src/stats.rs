//! Descriptive statistics and data subsetting: the other two
//! communication-free analysis services the paper names (§5.2.4: "our
//! approach could be extensible to other scalable analysis approaches with
//! no/rare communications, such as descriptive statistic analysis, data
//! subsetting").
//!
//! The compute kernels here walk contiguous flat-offset rows of the fab
//! payload rather than per-cell `IntVect` indexing; `level_stats` fans the
//! per-grid passes out across threads. [`BlockStats::compute_reference`]
//! keeps the per-cell form for the equivalence property tests.

use xlayer_amr::boxes::IBox;
use xlayer_amr::fab::Fab;
use xlayer_amr::intvect::IntVect;
use xlayer_amr::level_data::LevelData;

/// Streaming descriptive statistics of one block (single pass, Welford).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockStats {
    /// Samples seen.
    pub count: u64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
}

impl BlockStats {
    /// Statistics over `comp` of `fab` restricted to `region`.
    pub fn compute(fab: &Fab, comp: usize, region: &IBox) -> Self {
        let r = region.intersect(&fab.ibox());
        let mut count = 0u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        if !r.is_empty() {
            let src_box = fab.ibox();
            let src = fab.comp_slice(comp);
            let nx = r.size()[0] as usize;
            for z in r.lo()[2]..=r.hi()[2] {
                for y in r.lo()[1]..=r.hi()[1] {
                    let s0 = src_box.offset(IntVect::new(r.lo()[0], y, z));
                    for &v in &src[s0..s0 + nx] {
                        count += 1;
                        min = min.min(v);
                        max = max.max(v);
                        let d = v - mean;
                        mean += d / count as f64;
                        m2 += d * (v - mean);
                    }
                }
            }
        }
        BlockStats {
            count,
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            mean,
            variance: if count == 0 { 0.0 } else { m2 / count as f64 },
        }
    }

    /// Per-cell reference implementation of [`BlockStats::compute`]. Kept
    /// as the equivalence baseline for property tests.
    pub fn compute_reference(fab: &Fab, comp: usize, region: &IBox) -> Self {
        let r = region.intersect(&fab.ibox());
        let mut count = 0u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for iv in r.cells() {
            let v = fab.get(iv, comp);
            count += 1;
            min = min.min(v);
            max = max.max(v);
            let d = v - mean;
            mean += d / count as f64;
            m2 += d * (v - mean);
        }
        BlockStats {
            count,
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            mean,
            variance: if count == 0 { 0.0 } else { m2 / count as f64 },
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Merge two partial statistics (parallel reduction; Chan et al.).
    pub fn merge(a: Self, b: Self) -> Self {
        if a.count == 0 {
            return b;
        }
        if b.count == 0 {
            return a;
        }
        let n = a.count + b.count;
        let delta = b.mean - a.mean;
        let mean = a.mean + delta * b.count as f64 / n as f64;
        let m2 = a.variance * a.count as f64
            + b.variance * b.count as f64
            + delta * delta * a.count as f64 * b.count as f64 / n as f64;
        BlockStats {
            count: n,
            min: a.min.min(b.min),
            max: a.max.max(b.max),
            mean,
            variance: m2 / n as f64,
        }
    }
}

/// Per-grid statistics of a level plus the level-wide merge. The per-grid
/// passes run in parallel (grids are independent); the merge is the usual
/// serial Chan reduction over the ordered per-grid partials.
pub fn level_stats(data: &LevelData, comp: usize) -> (Vec<BlockStats>, BlockStats) {
    use rayon::prelude::*;
    let per: Vec<BlockStats> = (0..data.len())
        .into_par_iter()
        .map(|i| BlockStats::compute(data.fab(i), comp, &data.valid_box(i)))
        .collect();
    let total = per.iter().copied().fold(
        BlockStats {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            variance: 0.0,
        },
        BlockStats::merge,
    );
    (per, total)
}

/// A histogram over a fixed value range.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Range low edge.
    pub lo: f64,
    /// Range high edge.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Samples below `lo` / above `hi`.
    pub outliers: (u64, u64),
}

impl Histogram {
    /// Histogram of `comp` over `region` with `bins` bins spanning
    /// `[lo, hi)`.
    pub fn compute(fab: &Fab, comp: usize, region: &IBox, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo);
        let r = region.intersect(&fab.ibox());
        let scale = bins as f64 / (hi - lo);
        let mut counts = vec![0u64; bins];
        let mut outliers = (0u64, 0u64);
        if !r.is_empty() {
            let src_box = fab.ibox();
            let src = fab.comp_slice(comp);
            let nx = r.size()[0] as usize;
            for z in r.lo()[2]..=r.hi()[2] {
                for y in r.lo()[1]..=r.hi()[1] {
                    let s0 = src_box.offset(IntVect::new(r.lo()[0], y, z));
                    for &v in &src[s0..s0 + nx] {
                        if v < lo {
                            outliers.0 += 1;
                        } else if v >= hi {
                            outliers.1 += 1;
                        } else {
                            counts[((v - lo) * scale) as usize] += 1;
                        }
                    }
                }
            }
        }
        Histogram {
            lo,
            hi,
            counts,
            outliers,
        }
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Approximate quantile (0–1) via the cumulative histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return self.lo;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let w = (self.hi - self.lo) / self.counts.len() as f64;
                return self.lo + (i as f64 + 0.5) * w;
            }
        }
        self.hi
    }
}

/// One cell of a subset result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubsetCell {
    /// Cell index.
    pub iv: IntVect,
    /// Value at the cell.
    pub value: f64,
}

/// Data subsetting: the sparse set of cells of `region` whose value lies in
/// `[lo, hi]` — a query-driven reduction whose output size is proportional
/// to the feature, not the domain.
pub fn subset(fab: &Fab, comp: usize, region: &IBox, lo: f64, hi: f64) -> Vec<SubsetCell> {
    let r = region.intersect(&fab.ibox());
    let mut out = Vec::new();
    if r.is_empty() {
        return out;
    }
    let src_box = fab.ibox();
    let src = fab.comp_slice(comp);
    let nx = r.size()[0] as usize;
    for z in r.lo()[2]..=r.hi()[2] {
        for y in r.lo()[1]..=r.hi()[1] {
            let s0 = src_box.offset(IntVect::new(r.lo()[0], y, z));
            for (dx, &v) in src[s0..s0 + nx].iter().enumerate() {
                if (lo..=hi).contains(&v) {
                    out.push(SubsetCell {
                        iv: IntVect::new(r.lo()[0] + dx as i64, y, z),
                        value: v,
                    });
                }
            }
        }
    }
    out
}

/// Bytes of a subset result (index + value per cell).
pub fn subset_bytes(cells: usize) -> u64 {
    (cells * (3 * 8 + 8)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_fab(n: i64) -> Fab {
        let b = IBox::cube(n);
        let mut f = Fab::new(b, 1);
        for iv in b.cells() {
            f.set(iv, 0, iv[0] as f64);
        }
        f
    }

    #[test]
    fn stats_of_a_ramp() {
        let f = ramp_fab(4); // x in {0,1,2,3}, 16 cells each
        let s = BlockStats::compute(&f, 0, &IBox::cube(4));
        assert_eq!(s.count, 64);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12); // Var{0,1,2,3}
    }

    #[test]
    fn flat_matches_reference_bitwise() {
        let b = IBox::new(IntVect::new(-2, 1, -4), IntVect::new(5, 7, 2));
        let mut f = Fab::new(b, 2);
        for iv in b.cells() {
            f.set(iv, 1, ((iv[0] * 7 - iv[1] * 3 + iv[2]) as f64).sin());
        }
        let region = IBox::new(IntVect::new(-1, 2, -3), IntVect::new(9, 9, 9));
        let flat = BlockStats::compute(&f, 1, &region);
        let rf = BlockStats::compute_reference(&f, 1, &region);
        assert_eq!(flat, rf);
    }

    #[test]
    fn merge_equals_whole() {
        let f = ramp_fab(8);
        let whole = BlockStats::compute(&f, 0, &IBox::cube(8));
        let (left, right) = IBox::cube(8).split_at(0, 3);
        let merged = BlockStats::merge(
            BlockStats::compute(&f, 0, &left),
            BlockStats::compute(&f, 0, &right),
        );
        assert_eq!(merged.count, whole.count);
        assert!((merged.mean - whole.mean).abs() < 1e-12);
        assert!((merged.variance - whole.variance).abs() < 1e-10);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
    }

    #[test]
    fn empty_region() {
        let f = ramp_fab(4);
        let far = IBox::cube(2).shift(IntVect::splat(100));
        let s = BlockStats::compute(&f, 0, &far);
        assert_eq!(s.count, 0);
        assert_eq!(BlockStats::merge(s, s).count, 0);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let f = ramp_fab(4);
        let h = Histogram::compute(&f, 0, &IBox::cube(4), 0.0, 4.0, 4);
        assert_eq!(h.counts, vec![16, 16, 16, 16]);
        assert_eq!(h.outliers, (0, 0));
        assert_eq!(h.total(), 64);
        // median in the middle of the range
        let med = h.quantile(0.5);
        assert!((1.0..=2.5).contains(&med), "median {med}");
    }

    #[test]
    fn histogram_outliers() {
        let f = ramp_fab(4);
        let h = Histogram::compute(&f, 0, &IBox::cube(4), 1.0, 3.0, 2);
        assert_eq!(h.outliers.0, 16); // x=0
        assert_eq!(h.outliers.1, 16); // x=3
        assert_eq!(h.total(), 32);
    }

    #[test]
    fn subsetting_extracts_feature_cells() {
        let f = ramp_fab(8);
        let cells = subset(&f, 0, &IBox::cube(8), 7.0, 7.0);
        assert_eq!(cells.len(), 64); // the x = 7 plane
        assert!(cells.iter().all(|c| c.value == 7.0));
        // a thin feature's subset is smaller than the full block payload
        assert!(subset_bytes(cells.len()) < 512 * 8);
    }

    #[test]
    fn subset_cells_carry_correct_indices() {
        let f = ramp_fab(4);
        let cells = subset(&f, 0, &IBox::cube(4), 2.0, 2.0);
        assert_eq!(cells.len(), 16);
        assert!(cells.iter().all(|c| c.iv[0] == 2));
        // x-fastest traversal: indices come out in box order
        assert_eq!(cells[0].iv, IntVect::new(2, 0, 0));
        assert_eq!(cells[1].iv, IntVect::new(2, 1, 0));
    }

    #[test]
    fn level_stats_aggregate() {
        use xlayer_amr::domain::ProblemDomain;
        use xlayer_amr::layout::BoxLayout;
        let domain = ProblemDomain::new(IBox::cube(8));
        let layout = BoxLayout::decompose(&domain, 4, 1);
        let mut ld = LevelData::new(layout, domain, 1, 0);
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                fab.set(iv, 0, iv[0] as f64);
            }
        });
        let (per, total) = level_stats(&ld, 0);
        assert_eq!(per.len(), ld.len());
        assert_eq!(total.count, 512);
        assert!((total.mean - 3.5).abs() < 1e-12);
    }
}
