//! Property-based tests of the visualization service: watertightness and
//! area sanity of extracted surfaces, conservation of down-sampling, and
//! entropy bounds — over randomized fields.

use proptest::prelude::*;
use xlayer_amr::{Fab, IBox, IntVect};
use xlayer_viz::downsample::{
    downsample_fab, downsample_region, downsample_region_reference, reconstruction_mse,
    reconstruction_mse_reference,
};
use xlayer_viz::entropy::{block_entropy, block_entropy_reference};
use xlayer_viz::extract_block;
use xlayer_viz::stats::BlockStats;

/// A smooth random field: sum of a few random Gaussians.
fn blob_fab(n: i64, blobs: &[(f64, f64, f64, f64)]) -> Fab {
    let b = IBox::cube(n);
    let mut f = Fab::new(b, 1);
    for iv in b.cells() {
        let (x, y, z) = (iv[0] as f64 + 0.5, iv[1] as f64 + 0.5, iv[2] as f64 + 0.5);
        let mut v = 0.0;
        for &(cx, cy, cz, s) in blobs {
            let r2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - cz).powi(2);
            v += (-r2 / (2.0 * s * s)).exp();
        }
        f.set(iv, 0, v);
    }
    f
}

/// A fab over an arbitrary (possibly negative-offset) box, filled with a
/// deterministic pseudo-random field derived from cell indices.
fn hashed_fab(lo: (i64, i64, i64), size: (i64, i64, i64), ncomp: usize) -> Fab {
    let b = IBox::new(
        IntVect::new(lo.0, lo.1, lo.2),
        IntVect::new(lo.0 + size.0 - 1, lo.1 + size.1 - 1, lo.2 + size.2 - 1),
    );
    let mut f = Fab::new(b, ncomp);
    for c in 0..ncomp {
        for iv in b.cells() {
            let h = (iv[0]
                .wrapping_mul(73856093)
                .wrapping_add(iv[1].wrapping_mul(19349663))
                .wrapping_add(iv[2].wrapping_mul(83492791))
                .wrapping_add(c as i64 * 7919))
            .rem_euclid(10_000);
            f.set(iv, c, h as f64 * 0.001 - 5.0);
        }
    }
    f
}

type Triple = (i64, i64, i64);

/// Arbitrary box origins/extents including non-divisible sizes, plus a
/// query region that may stick out past the fab's box (clipping path).
fn arb_geometry() -> impl Strategy<Value = (Triple, Triple, Triple, Triple)> {
    (
        (-7i64..7, -7i64..7, -7i64..7),
        (1i64..12, 1i64..12, 1i64..12),
        (-9i64..9, -9i64..9, -9i64..9),
        (1i64..14, 1i64..14, 1i64..14),
    )
}

fn arb_blobs(n: i64) -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec(
        (
            2.0..(n as f64 - 2.0),
            2.0..(n as f64 - 2.0),
            2.0..(n as f64 - 2.0),
            1.0..3.0f64,
        ),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extracted_surfaces_are_watertight(blobs in arb_blobs(12), iso in 0.2f64..0.8) {
        // Isosurfaces of a smooth field that vanishes at the boundary are
        // closed; the tetrahedral decomposition must produce zero boundary
        // edges whenever the surface doesn't touch the sampled hull.
        let fab = blob_fab(12, &blobs);
        let region = IBox::cube(12);
        let mesh = extract_block(&fab, 0, &region, iso, 1.0, [0.0; 3]);
        // Only check watertightness when the surface is interior: every
        // vertex strictly inside the sampled hull [0.5, 11.5].
        let interior = mesh
            .vertices
            .iter()
            .all(|v| v.iter().all(|&c| c > 0.51 && c < 11.49));
        if interior && !mesh.is_empty() {
            prop_assert_eq!(mesh.boundary_edge_count(1e-9), 0);
        }
    }

    #[test]
    fn vertices_lie_inside_the_region(blobs in arb_blobs(12), iso in 0.1f64..0.9) {
        let fab = blob_fab(12, &blobs);
        let region = IBox::cube(12);
        let mesh = extract_block(&fab, 0, &region, iso, 1.0, [0.0; 3]);
        for v in &mesh.vertices {
            for c in v {
                prop_assert!(*c >= 0.5 - 1e-9 && *c <= 11.5 + 1e-9);
            }
        }
    }

    #[test]
    fn higher_iso_of_single_blob_means_smaller_surface(
        cx in 5.0f64..7.0, s in 1.5f64..2.5,
    ) {
        let fab = blob_fab(12, &[(cx, 6.0, 6.0, s)]);
        let region = IBox::cube(12);
        let lo = extract_block(&fab, 0, &region, 0.3, 1.0, [0.0; 3]).area();
        let hi = extract_block(&fab, 0, &region, 0.7, 1.0, [0.0; 3]).area();
        // level sets of a Gaussian shrink with level
        if lo > 0.0 && hi > 0.0 {
            prop_assert!(hi < lo + 1e-9, "hi {} !< lo {}", hi, lo);
        }
    }

    #[test]
    fn downsample_conserves_weighted_mass(blobs in arb_blobs(16), x in 1u32..6) {
        // Block-averaging conserves mass exactly when each coarse value is
        // weighted by the number of fine cells it averaged (partial edge
        // blocks carry partial weight).
        let fab = blob_fab(16, &blobs);
        let ds = downsample_fab(&fab, 0, x);
        let src_total = fab.sum_on(&fab.ibox(), 0);
        let mut dst_total = 0.0;
        for civ in ds.ibox().cells() {
            let weight = IBox::single(civ)
                .refine(x as i64)
                .intersect(&fab.ibox())
                .num_cells() as f64;
            dst_total += ds.get(civ, 0) * weight;
        }
        prop_assert!(
            (src_total - dst_total).abs() <= 1e-9 * src_total.abs().max(1.0),
            "mass {} -> {} at x={}", src_total, dst_total, x
        );
    }

    #[test]
    fn reconstruction_mse_nonnegative_and_zero_at_identity(blobs in arb_blobs(12)) {
        let fab = blob_fab(12, &blobs);
        prop_assert_eq!(reconstruction_mse(&fab, 0, 1), 0.0);
        prop_assert!(reconstruction_mse(&fab, 0, 2) >= 0.0);
    }

    #[test]
    fn entropy_bounds(blobs in arb_blobs(12), bins in 2usize..512) {
        let fab = blob_fab(12, &blobs);
        let h = block_entropy(&fab, 0, &IBox::cube(12), bins);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (bins as f64).log2() + 1e-9);
        // also bounded by log2(#samples)
        prop_assert!(h <= (12.0f64 * 12.0 * 12.0).log2() + 1e-9);
    }

    #[test]
    fn entropy_invariant_to_affine_value_shift(blobs in arb_blobs(12), shift in -5.0f64..5.0, scale in 0.1f64..10.0) {
        let fab = blob_fab(12, &blobs);
        let mut shifted = Fab::new(fab.ibox(), 1);
        for iv in fab.ibox().cells() {
            shifted.set(iv, 0, fab.get(iv, 0) * scale + shift);
        }
        let h0 = block_entropy(&fab, 0, &IBox::cube(12), 128);
        let h1 = block_entropy(&shifted, 0, &IBox::cube(12), 128);
        // histogram over min..max is affine-invariant up to fp rounding
        prop_assert!((h0 - h1).abs() < 0.2, "{} vs {}", h0, h1);
    }

    #[test]
    fn flat_downsample_matches_reference_bitwise(
        geom in arb_geometry(), x in 1u32..6,
    ) {
        // The flat strided-row kernel accumulates each coarse cell in the
        // same order as the per-cell reference, so the floating-point sums
        // are bit-identical — including non-divisible extents, negative
        // origins, and regions clipped by fab.ibox().
        let (lo, size, rlo, rsize) = geom;
        let fab = hashed_fab(lo, size, 2);
        let region = IBox::new(
            IntVect::new(rlo.0, rlo.1, rlo.2),
            IntVect::new(rlo.0 + rsize.0 - 1, rlo.1 + rsize.1 - 1, rlo.2 + rsize.2 - 1),
        );
        let flat = downsample_region(&fab, 1, &region, x);
        let rf = downsample_region_reference(&fab, 1, &region, x);
        prop_assert_eq!(flat.ibox(), rf.ibox());
        let (a, b) = (flat.as_slice(), rf.as_slice());
        prop_assert_eq!(a.len(), b.len());
        for (va, vb) in a.iter().zip(b) {
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "{} vs {}", va, vb);
        }
    }

    #[test]
    fn flat_mse_matches_reference_bitwise(
        lo in (-7i64..7, -7i64..7, -7i64..7),
        size in (2i64..12, 2i64..12, 2i64..12),
        x in 1u32..5,
    ) {
        let fab = hashed_fab(lo, size, 1);
        let flat = reconstruction_mse(&fab, 0, x);
        let rf = reconstruction_mse_reference(&fab, 0, x);
        prop_assert_eq!(flat.to_bits(), rf.to_bits(), "{} vs {}", flat, rf);
    }

    #[test]
    fn flat_entropy_matches_reference_bitwise(
        geom in arb_geometry(), bins in 2usize..256,
    ) {
        let (lo, size, rlo, rsize) = geom;
        let fab = hashed_fab(lo, size, 1);
        let region = IBox::new(
            IntVect::new(rlo.0, rlo.1, rlo.2),
            IntVect::new(rlo.0 + rsize.0 - 1, rlo.1 + rsize.1 - 1, rlo.2 + rsize.2 - 1),
        );
        let flat = block_entropy(&fab, 0, &region, bins);
        let rf = block_entropy_reference(&fab, 0, &region, bins);
        prop_assert_eq!(flat.to_bits(), rf.to_bits(), "{} vs {}", flat, rf);
    }

    #[test]
    fn flat_stats_match_reference_bitwise(geom in arb_geometry()) {
        let (lo, size, rlo, rsize) = geom;
        let fab = hashed_fab(lo, size, 2);
        let region = IBox::new(
            IntVect::new(rlo.0, rlo.1, rlo.2),
            IntVect::new(rlo.0 + rsize.0 - 1, rlo.1 + rsize.1 - 1, rlo.2 + rsize.2 - 1),
        );
        let flat = BlockStats::compute(&fab, 1, &region);
        let rf = BlockStats::compute_reference(&fab, 1, &region);
        prop_assert_eq!(flat.count, rf.count);
        prop_assert_eq!(flat.min.to_bits(), rf.min.to_bits());
        prop_assert_eq!(flat.max.to_bits(), rf.max.to_bits());
        prop_assert_eq!(flat.mean.to_bits(), rf.mean.to_bits());
        prop_assert_eq!(flat.variance.to_bits(), rf.variance.to_bits());
    }

    #[test]
    fn mesh_byte_accounting_matches_counts(blobs in arb_blobs(12), iso in 0.2f64..0.8) {
        let fab = blob_fab(12, &blobs);
        let mesh = extract_block(&fab, 0, &IBox::cube(12), iso, 1.0, [0.0; 3]);
        let expect = (mesh.num_vertices() * 24 + mesh.num_triangles() * 12) as u64;
        prop_assert_eq!(mesh.bytes(), expect);
    }
}
