//! Network transfer models: latency + bandwidth with shared-link
//! contention at the staging ingress.
//!
//! These supply the paper's `T_sd` (send latency) and `T_recv` (receive
//! latency) estimators (Table 1, Eq. 9).

use crate::des::{FifoResource, SimTime};
use crate::machine::MachineSpec;

/// A latency/bandwidth point-to-point transfer model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferModel {
    /// Per-message latency in seconds.
    pub latency: SimTime,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl TransferModel {
    /// The model for messages between two nodes of `machine`.
    pub fn for_machine(machine: &MachineSpec) -> Self {
        TransferModel {
            latency: machine.message_latency,
            bandwidth: machine.injection_bandwidth,
        }
    }

    /// Time to move `bytes` in one message.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time to move `bytes` split into `messages` messages (latency paid
    /// per message, bandwidth shared sequentially).
    pub fn transfer_time_msgs(&self, bytes: u64, messages: u64) -> SimTime {
        self.latency * messages.max(1) as f64 + bytes as f64 / self.bandwidth
    }
}

/// The staging ingress: `links` parallel links, each a FIFO resource.
/// Models the aggregate bandwidth of the staging partition's nodes —
/// transfers from many simulation ranks contend here.
#[derive(Clone, Debug)]
pub struct StagingIngress {
    model: TransferModel,
    links: Vec<FifoResource>,
}

impl StagingIngress {
    /// An ingress of `links` links, each with `model`'s parameters.
    pub fn new(model: TransferModel, links: usize) -> Self {
        assert!(links > 0);
        StagingIngress {
            model,
            links: vec![FifoResource::new(); links],
        }
    }

    /// Ingress sized for `staging_cores` cores of `machine` (one link per
    /// staging node).
    pub fn for_partition(machine: &MachineSpec, staging_cores: usize) -> Self {
        let nodes = staging_cores.div_ceil(machine.cores_per_node).max(1);
        StagingIngress::new(TransferModel::for_machine(machine), nodes)
    }

    /// Number of parallel links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Submit a transfer of `bytes` at time `now`; it runs on the
    /// earliest-free link. Returns `(start, end)`.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let dur = self.model.transfer_time(bytes);
        let idx = self
            .links
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.free_at().partial_cmp(&b.free_at()).expect("no NaN"))
            .map(|(i, _)| i)
            .expect("links non-empty");
        self.links[idx].acquire(now, dur)
    }

    /// When every link is idle.
    pub fn drained_at(&self) -> SimTime {
        self.links.iter().map(|l| l.free_at()).fold(0.0, f64::max)
    }

    /// Total bytes/second the ingress can absorb.
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.model.bandwidth * self.links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_formula() {
        let m = TransferModel {
            latency: 1e-3,
            bandwidth: 1e6,
        };
        assert!((m.transfer_time(1_000_000) - 1.001).abs() < 1e-12);
        assert!((m.transfer_time(0) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn message_count_multiplies_latency() {
        let m = TransferModel {
            latency: 0.01,
            bandwidth: 1e6,
        };
        let t = m.transfer_time_msgs(2_000_000, 10);
        assert!((t - (0.1 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn ingress_contention_serializes_on_one_link() {
        let m = TransferModel {
            latency: 0.0,
            bandwidth: 1e6,
        };
        let mut ing = StagingIngress::new(m, 1);
        let (s1, e1) = ing.transfer(0.0, 1_000_000);
        let (s2, e2) = ing.transfer(0.0, 1_000_000);
        assert_eq!((s1, e1), (0.0, 1.0));
        assert_eq!((s2, e2), (1.0, 2.0));
    }

    #[test]
    fn parallel_links_overlap() {
        let m = TransferModel {
            latency: 0.0,
            bandwidth: 1e6,
        };
        let mut ing = StagingIngress::new(m, 2);
        let (_, e1) = ing.transfer(0.0, 1_000_000);
        let (_, e2) = ing.transfer(0.0, 1_000_000);
        assert_eq!(e1, 1.0);
        assert_eq!(e2, 1.0);
        assert_eq!(ing.drained_at(), 1.0);
    }

    #[test]
    fn partition_sizing_uses_nodes() {
        let titan = MachineSpec::titan();
        let ing = StagingIngress::for_partition(&titan, 256);
        assert_eq!(ing.num_links(), 16); // 256 cores / 16 per node
        assert_eq!(ing.aggregate_bandwidth(), 16.0 * titan.injection_bandwidth);
    }
}
