//! A minimal deterministic discrete-event engine.
//!
//! The modeled-scale execution mode (DESIGN.md) replays the workflow's
//! timestep loop over virtual ranks; this engine supplies the virtual clock
//! and ordered event dispatch. Ties are broken by insertion order, so runs
//! are fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in seconds.
pub type SimTime = f64;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: time first (NaN is rejected at insert), then seq.
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then(self.seq.cmp(&other.seq))
    }
}

/// An event queue with a virtual clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (must not precede `now` and
    /// must not be NaN).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(!at.is_nan(), "event time is NaN");
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedule `event` after a delay.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A single-server FIFO resource (e.g. one shared network link or one
/// staging core): requests are serviced in arrival order, each occupying
/// the resource for its duration.
#[derive(Clone, Debug, Default)]
pub struct FifoResource {
    busy_until: SimTime,
    busy_time: SimTime,
}

impl FifoResource {
    /// An idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request the resource at `now` for `duration` seconds.
    /// Returns `(start, end)`: the request starts when the resource frees.
    pub fn acquire(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_time += duration;
        (start, end)
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy_time / horizon).min(1.0)
        }
    }
}

/// A pool of identical FIFO resources; each acquire picks the earliest-free
/// member (models an M-core staging partition serving analysis jobs).
#[derive(Clone, Debug)]
pub struct ResourcePool {
    members: Vec<FifoResource>,
}

impl ResourcePool {
    /// A pool of `n` idle resources.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        ResourcePool {
            members: vec![FifoResource::new(); n],
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the pool is empty (never; pools have ≥ 1 member).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Grow or shrink the pool to `n` members (shrink drops the busiest
    /// members last — freed cores return to the allocation).
    pub fn resize(&mut self, n: usize) {
        assert!(n > 0);
        if n > self.members.len() {
            self.members.resize(n, FifoResource::new());
        } else {
            // Release idle members first: in-flight work on busy members is
            // never abandoned, so keep the latest-free ones.
            self.members
                .sort_by(|a, b| b.free_at().partial_cmp(&a.free_at()).expect("no NaN"));
            self.members.truncate(n);
        }
    }

    /// Acquire the earliest-free member for `duration` starting no earlier
    /// than `now`. Returns `(member index, start, end)`.
    pub fn acquire(&mut self, now: SimTime, duration: SimTime) -> (usize, SimTime, SimTime) {
        let (idx, _) = self
            .members
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.free_at().partial_cmp(&b.free_at()).expect("no NaN"))
            .expect("pool non-empty");
        let (s, e) = self.members[idx].acquire(now, duration);
        (idx, s, e)
    }

    /// When the whole pool is next idle.
    pub fn all_free_at(&self) -> SimTime {
        self.members.iter().map(|m| m.free_at()).fold(0.0, f64::max)
    }

    /// When at least one member is free.
    pub fn any_free_at(&self) -> SimTime {
        self.members
            .iter()
            .map(|m| m.free_at())
            .fold(f64::INFINITY, f64::min)
    }

    /// Total busy time across members.
    pub fn busy_time(&self) -> SimTime {
        self.members.iter().map(|m| m.busy_time()).sum()
    }

    /// Mean utilization over `[0, horizon]` (Eq. 12's denominator is
    /// members × horizon).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        (self.busy_time() / (horizon * self.members.len() as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "x");
        q.pop();
        q.schedule_in(2.0, "y");
        assert_eq!(q.pop(), Some((7.0, "y")));
    }

    #[test]
    fn fifo_resource_serializes() {
        let mut r = FifoResource::new();
        assert_eq!(r.acquire(0.0, 2.0), (0.0, 2.0));
        assert_eq!(r.acquire(1.0, 3.0), (2.0, 5.0)); // waits for first
        assert_eq!(r.acquire(10.0, 1.0), (10.0, 11.0)); // idle gap
        assert_eq!(r.busy_time(), 6.0);
        assert!((r.utilization(12.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_picks_earliest_free() {
        let mut p = ResourcePool::new(2);
        let (i0, s0, e0) = p.acquire(0.0, 4.0);
        let (i1, s1, _) = p.acquire(0.0, 1.0);
        assert_ne!(i0, i1);
        assert_eq!((s0, s1), (0.0, 0.0));
        // Third job goes to the one free at t=1.
        let (i2, s2, _) = p.acquire(0.0, 1.0);
        assert_eq!(i2, i1);
        assert_eq!(s2, 1.0);
        assert_eq!(e0, 4.0);
        assert_eq!(p.all_free_at(), 4.0);
        assert_eq!(p.any_free_at(), 2.0);
    }

    #[test]
    fn pool_resize_preserves_busy_state() {
        let mut p = ResourcePool::new(4);
        p.acquire(0.0, 10.0);
        p.resize(2);
        assert_eq!(p.len(), 2);
        // The busy member was dropped last; one member still busy until 10.
        assert_eq!(p.all_free_at(), 10.0);
        p.resize(8);
        assert_eq!(p.len(), 8);
        assert_eq!(p.any_free_at(), 0.0);
    }

    #[test]
    fn pool_utilization() {
        let mut p = ResourcePool::new(2);
        p.acquire(0.0, 5.0);
        p.acquire(0.0, 5.0);
        assert!((p.utilization(10.0) - 0.5).abs() < 1e-12);
    }
}
