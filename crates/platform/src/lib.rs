//! # xlayer-platform — the virtual HPC platform
//!
//! The machine substrate the paper ran on, as a model (DESIGN.md,
//! substitution table): Intrepid (IBM BG/P) and Titan (Cray XK7) hardware
//! parameters, a deterministic discrete-event engine for modeled-scale
//! execution, network transfer models with staging-ingress contention,
//! calibrated kernel cost estimators (Table 1's `T_sim` / `T_insitu` /
//! `T_intransit`), and the utilization/end-to-end metrics of Eq. 12,
//! Table 2 and Figs. 7–11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod des;
pub mod disk;
pub mod machine;
pub mod metrics;
pub mod network;
pub mod power;

pub use cost::{CostModel, KernelCosts, SolverKind};
pub use des::{EventQueue, FifoResource, ResourcePool, SimTime};
pub use disk::DiskModel;
pub use machine::{MachineSpec, Partition};
pub use metrics::{EndToEnd, StagingStepRecord, StagingUtilization, UtilizationBuckets};
pub use network::{StagingIngress, TransferModel};
pub use power::{EnergyReport, PowerModel};
