//! Power and energy models — the paper's stated future work ("utilizing
//! such approach on power management in dynamic simulations", §7),
//! implemented as an extension: per-core active/idle power plus a
//! per-byte network transfer cost, so workflow runs report the energy
//! consequences of placement, reduction and allocation decisions.

use crate::des::SimTime;
use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};

/// Per-component power parameters of a machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts drawn by a core running at full tilt.
    pub active_w_per_core: f64,
    /// Watts drawn by an idle (allocated but waiting) core.
    pub idle_w_per_core: f64,
    /// Joules to move one byte across the interconnect.
    pub network_j_per_byte: f64,
}

impl PowerModel {
    /// Intrepid (BG/P): ~31 kW per 4096-core rack ⇒ ~7.5 W/core active;
    /// PowerPC 450 idles near 40 % of active; 3-D torus ≈ 0.6 nJ/byte.
    pub fn intrepid() -> Self {
        PowerModel {
            active_w_per_core: 7.5,
            idle_w_per_core: 3.0,
            network_j_per_byte: 0.6e-9,
        }
    }

    /// Titan (XK7): Opteron 6274 ≈ 115 W per 16-core socket ⇒ ~7.2 W/core
    /// active plus node overheads ⇒ ~12 W/core; Gemini ≈ 0.5 nJ/byte.
    pub fn titan() -> Self {
        PowerModel {
            active_w_per_core: 12.0,
            idle_w_per_core: 5.0,
            network_j_per_byte: 0.5e-9,
        }
    }

    /// The model matching a [`MachineSpec`] by name, defaulting to Titan's
    /// parameters for unknown machines.
    pub fn for_machine(machine: &MachineSpec) -> Self {
        if machine.name.contains("BlueGene") || machine.name.contains("Intrepid") {
            PowerModel::intrepid()
        } else {
            PowerModel::titan()
        }
    }

    /// Energy (J) of `cores` cores busy for `busy` seconds within an
    /// allocation window of `span` seconds (idle for the remainder).
    pub fn core_energy(&self, cores: usize, busy: SimTime, span: SimTime) -> f64 {
        let busy = busy.min(span).max(0.0);
        let idle = (span - busy).max(0.0);
        cores as f64 * (busy * self.active_w_per_core + idle * self.idle_w_per_core)
    }

    /// Energy (J) to move `bytes` across the network.
    pub fn transfer_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * self.network_j_per_byte
    }
}

/// Energy accounting for one workflow execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Joules on the simulation partition (compute + in-situ analysis +
    /// idle waiting).
    pub sim_joules: f64,
    /// Joules on the staging partition (in-transit analysis + idle).
    pub staging_joules: f64,
    /// Joules moving data simulation → staging.
    pub network_joules: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.sim_joules + self.staging_joules + self.network_joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_costs_more_than_idle() {
        let p = PowerModel::titan();
        let busy = p.core_energy(100, 10.0, 10.0);
        let idle = p.core_energy(100, 0.0, 10.0);
        assert!(busy > idle);
        assert_eq!(idle, 100.0 * 10.0 * p.idle_w_per_core);
    }

    #[test]
    fn busy_clamped_to_span() {
        let p = PowerModel::intrepid();
        // busy longer than span counts as fully-active span
        assert_eq!(p.core_energy(1, 20.0, 10.0), p.core_energy(1, 10.0, 10.0));
    }

    #[test]
    fn transfer_energy_linear() {
        let p = PowerModel::titan();
        assert!((p.transfer_energy(2_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn machine_matching() {
        let i = PowerModel::for_machine(&MachineSpec::intrepid());
        let t = PowerModel::for_machine(&MachineSpec::titan());
        assert_eq!(i, PowerModel::intrepid());
        assert_eq!(t, PowerModel::titan());
    }

    #[test]
    fn report_totals() {
        let r = EnergyReport {
            sim_joules: 10.0,
            staging_joules: 5.0,
            network_joules: 1.0,
        };
        assert_eq!(r.total(), 16.0);
    }
}
