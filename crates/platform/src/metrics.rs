//! Workflow metrics: in-transit CPU utilization (paper Eq. 12), the
//! Table 2 utilization buckets, and end-to-end time/overhead accounting
//! (Figs. 7, 10).

use crate::des::SimTime;
use serde::{Deserialize, Serialize};

/// Per-time-step record of in-transit core usage.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StagingStepRecord {
    /// Time step index.
    pub step: u64,
    /// Cores allocated to the staging area this step (`M_j`).
    pub allocated: usize,
    /// Cores that actually ran analysis this step.
    pub used: usize,
    /// Total analysis busy time over used cores (`Σ_i T_analysis_ij`).
    pub analysis_time: SimTime,
    /// Wall-clock span of the step on the staging side
    /// (`T_total` per core is this span).
    pub span: SimTime,
}

/// The Eq. 12 accumulator plus Table 2 bucket counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StagingUtilization {
    records: Vec<StagingStepRecord>,
}

/// Table 2 row: time steps bucketed by the fraction of preallocated
/// in-transit cores actually used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationBuckets {
    /// Steps using 100% of preallocated cores.
    pub full: usize,
    /// Steps using ≥ 75% (but < 100%).
    pub three_quarters: usize,
    /// Steps using ≥ 50% (but < 75%).
    pub half: usize,
    /// Steps using < 50%.
    pub less_than_half: usize,
}

impl UtilizationBuckets {
    /// Total steps recorded.
    pub fn total(&self) -> usize {
        self.full + self.three_quarters + self.half + self.less_than_half
    }
}

impl StagingUtilization {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one step.
    pub fn record(&mut self, r: StagingStepRecord) {
        self.records.push(r);
    }

    /// The recorded steps.
    pub fn records(&self) -> &[StagingStepRecord] {
        &self.records
    }

    /// CPU utilization efficiency (Eq. 12):
    /// `Σ_j Σ_i T_analysis_ij / Σ_j Σ_i T_total_ij`,
    /// with `T_total_ij` the step's wall span for each allocated core.
    pub fn efficiency(&self) -> f64 {
        let num: f64 = self.records.iter().map(|r| r.analysis_time).sum();
        let den: f64 = self
            .records
            .iter()
            .map(|r| r.span * r.allocated as f64)
            .sum();
        if den <= 0.0 {
            0.0
        } else {
            (num / den).min(1.0)
        }
    }

    /// Table 2 buckets over the records, relative to `preallocated` cores.
    /// Only steps that actually performed in-transit analysis count (the
    /// paper's "while performing in-transit analysis"; its per-case totals
    /// are below the run length).
    pub fn buckets(&self, preallocated: usize) -> UtilizationBuckets {
        let mut b = UtilizationBuckets::default();
        for r in self.records.iter().filter(|r| r.used > 0) {
            let frac = r.used as f64 / preallocated.max(1) as f64;
            if frac >= 1.0 {
                b.full += 1;
            } else if frac >= 0.75 {
                b.three_quarters += 1;
            } else if frac >= 0.5 {
                b.half += 1;
            } else {
                b.less_than_half += 1;
            }
        }
        b
    }

    /// Mean cores used per step.
    pub fn mean_used(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.used as f64).sum::<f64>() / self.records.len() as f64
    }
}

/// End-to-end accounting for one workflow execution (the two stacked bars
/// of Figs. 7 and 10).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EndToEnd {
    /// Pure simulation compute time summed over steps.
    pub sim_time: SimTime,
    /// Everything else on the critical path: analysis blocking the
    /// simulation, synchronous transfer waits, adaptation overhead.
    pub overhead: SimTime,
    /// Total bytes moved from simulation to staging (Figs. 8, 11).
    pub data_moved: u64,
    /// Steps executed.
    pub steps: u64,
    /// Steps whose analysis ran in-situ.
    pub insitu_steps: u64,
    /// Steps whose analysis ran in-transit.
    pub intransit_steps: u64,
}

impl EndToEnd {
    /// Cumulative end-to-end execution time (the full bar height).
    pub fn total(&self) -> SimTime {
        self.sim_time + self.overhead
    }

    /// Overhead as a fraction of simulation time (the paper reports < 6%
    /// for the adaptive runs).
    pub fn overhead_fraction(&self) -> f64 {
        if self.sim_time <= 0.0 {
            0.0
        } else {
            self.overhead / self.sim_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        step: u64,
        allocated: usize,
        used: usize,
        analysis: f64,
        span: f64,
    ) -> StagingStepRecord {
        StagingStepRecord {
            step,
            allocated,
            used,
            analysis_time: analysis,
            span,
        }
    }

    #[test]
    fn efficiency_full_busy_is_one() {
        let mut u = StagingUtilization::new();
        u.record(rec(1, 4, 4, 40.0, 10.0));
        assert!((u.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_half_busy() {
        let mut u = StagingUtilization::new();
        // 4 cores over a 10 s span = 40 core-s available; 20 core-s busy.
        u.record(rec(1, 4, 2, 20.0, 10.0));
        assert!((u.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_aggregates_steps() {
        let mut u = StagingUtilization::new();
        u.record(rec(1, 2, 2, 10.0, 10.0)); // 10/20
        u.record(rec(2, 2, 2, 20.0, 10.0)); // 20/20
        assert!((u.efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(StagingUtilization::new().efficiency(), 0.0);
        assert_eq!(StagingUtilization::new().mean_used(), 0.0);
    }

    #[test]
    fn table2_buckets() {
        let mut u = StagingUtilization::new();
        u.record(rec(1, 256, 256, 1.0, 1.0)); // 100%
        u.record(rec(2, 256, 200, 1.0, 1.0)); // 78% -> 75 bucket
        u.record(rec(3, 256, 130, 1.0, 1.0)); // 50.8% -> 50 bucket
        u.record(rec(4, 256, 60, 1.0, 1.0)); // <50%
        u.record(rec(5, 256, 10, 1.0, 1.0)); // <50%
        let b = u.buckets(256);
        assert_eq!(
            b,
            UtilizationBuckets {
                full: 1,
                three_quarters: 1,
                half: 1,
                less_than_half: 2
            }
        );
        assert_eq!(b.total(), 5);
    }

    #[test]
    fn end_to_end_totals() {
        let e = EndToEnd {
            sim_time: 1000.0,
            overhead: 50.0,
            data_moved: 1 << 30,
            steps: 40,
            insitu_steps: 15,
            intransit_steps: 25,
        };
        assert_eq!(e.total(), 1050.0);
        assert!((e.overhead_fraction() - 0.05).abs() < 1e-12);
    }
}
