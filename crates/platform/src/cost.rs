//! Calibrated kernel cost models: the execution-time estimators the
//! adaptation policies consume (paper Table 1 — `T_sim(N)`,
//! `T_insitu(N, S_data)`, `T_intransit(M, S_data)`).
//!
//! Costs are expressed as *effective* flop-equivalents per cell, so that
//! estimates scale with both the data size produced by the real AMR run and
//! the machine's per-core compute rate. The defaults are calibrated, not
//! literal op counts: they fold in memory traffic, AMR overheads and
//! subcycling so the model reproduces paper-scale step times (Titan, 2K
//! cores, 1024×1024×512 advection–diffusion ⇒ ≈40–60 s per step, matching
//! the ≈2700–4300 s end-to-end runs of Fig. 7). Relative magnitudes match
//! our real kernels (Euler ≈ 5× advection; marching cubes ≈ 5% of the
//! advection step on equal cores; reduction and entropy far cheaper).

use crate::des::SimTime;
use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};

/// Flop-count parameters for the workflow's kernels.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelCosts {
    /// Flops per cell per step for the Polytropic Gas solver.
    pub euler_cell_flops: f64,
    /// Flops per cell per step for the Advection–Diffusion solver.
    pub advect_cell_flops: f64,
    /// Flops per cell scanned by marching cubes.
    pub mc_scan_flops: f64,
    /// Flops per triangle emitted by marching cubes.
    pub mc_tri_flops: f64,
    /// Fraction of scanned cells that emit triangles (surface fraction).
    pub mc_surface_fraction: f64,
    /// Triangles emitted per surface-crossing cell.
    pub mc_tris_per_cell: f64,
    /// Flops per input cell of the down-sampling reduction.
    pub reduce_cell_flops: f64,
    /// Flops per cell of the entropy computation.
    pub entropy_cell_flops: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            euler_cell_flops: 4.8e5,
            advect_cell_flops: 2.4e5,
            mc_scan_flops: 6.0e3,
            mc_tri_flops: 3.5e4,
            mc_surface_fraction: 0.08,
            mc_tris_per_cell: 3.2,
            reduce_cell_flops: 800.0,
            entropy_cell_flops: 1500.0,
        }
    }
}

/// Which solver kernel a cost query refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// The Polytropic Gas (Euler) workload.
    Euler,
    /// The Advection–Diffusion workload.
    AdvectDiffuse,
}

/// A machine plus kernel costs: everything needed to estimate times.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Target machine.
    pub machine: MachineSpec,
    /// Kernel parameters.
    pub kernels: KernelCosts,
    /// Parallel efficiency exponent: time ∝ cores^(-eff). 1.0 = ideal.
    pub parallel_efficiency: f64,
}

impl CostModel {
    /// A model with ideal-but-damped scaling (0.95 matches the mild
    /// efficiency loss of stencil codes at scale).
    pub fn new(machine: MachineSpec) -> Self {
        CostModel {
            machine,
            kernels: KernelCosts::default(),
            parallel_efficiency: 0.95,
        }
    }

    /// Effective aggregate flop rate of `cores` cores.
    fn rate(&self, cores: usize) -> f64 {
        assert!(cores > 0, "zero cores");
        self.machine.core_flops * (cores as f64).powf(self.parallel_efficiency)
    }

    /// `T_sim(N)`: one simulation step over `cells` composite cells on `n`
    /// cores.
    pub fn sim_time(&self, kind: SolverKind, cells: u64, n: usize) -> SimTime {
        let per_cell = match kind {
            SolverKind::Euler => self.kernels.euler_cell_flops,
            SolverKind::AdvectDiffuse => self.kernels.advect_cell_flops,
        };
        cells as f64 * per_cell / self.rate(n)
    }

    /// Marching-cubes analysis of `cells` cells of which `surface_cells`
    /// cross the isosurface, on `cores` cores — `T_insitu(N, S_data)` when
    /// `cores = N`, `T_intransit(M, S_data)` when `cores = M` (Table 1).
    ///
    /// The scan term is volumetric; the triangulation/mesh-construction
    /// term scales with the surface, which in the paper's blast workload
    /// grows relative to the volume as the simulation evolves — the driver
    /// of the Fig. 9 staging-allocation growth.
    pub fn analysis_time_surface(&self, cells: u64, surface_cells: u64, cores: usize) -> SimTime {
        let k = &self.kernels;
        let scan = cells as f64 * k.mc_scan_flops;
        let tris = surface_cells as f64 * k.mc_tris_per_cell * k.mc_tri_flops;
        (scan + tris) / self.rate(cores)
    }

    /// [`Self::analysis_time_surface`] with the default surface fraction
    /// (used when no surface observation is available).
    pub fn analysis_time(&self, cells: u64, cores: usize) -> SimTime {
        let surface = (cells as f64 * self.kernels.mc_surface_fraction) as u64;
        self.analysis_time_surface(cells, surface, cores)
    }

    /// Down-sampling `cells` cells (factor-independent: every input cell is
    /// read once) on `cores` cores.
    pub fn reduce_time(&self, cells: u64, cores: usize) -> SimTime {
        cells as f64 * self.kernels.reduce_cell_flops / self.rate(cores)
    }

    /// Entropy evaluation of `cells` cells on `cores` cores.
    pub fn entropy_time(&self, cells: u64, cores: usize) -> SimTime {
        cells as f64 * self.kernels.entropy_cell_flops / self.rate(cores)
    }

    /// Cells that fit in `bytes` of grid data (8-byte doubles × ncomp).
    pub fn cells_of_bytes(bytes: u64, ncomp: usize) -> u64 {
        bytes / (8 * ncomp as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(MachineSpec::titan())
    }

    #[test]
    fn more_cores_is_faster() {
        let m = model();
        let t1 = m.sim_time(SolverKind::Euler, 1 << 24, 1024);
        let t2 = m.sim_time(SolverKind::Euler, 1 << 24, 4096);
        assert!(t2 < t1);
        // near-ideal: 4x cores gives ≥ 3x speedup
        assert!(t1 / t2 > 3.0);
    }

    #[test]
    fn euler_costs_more_than_advect() {
        let m = model();
        let cells = 1 << 20;
        assert!(
            m.sim_time(SolverKind::Euler, cells, 256)
                > m.sim_time(SolverKind::AdvectDiffuse, cells, 256)
        );
    }

    #[test]
    fn analysis_scales_linearly_in_cells() {
        let m = model();
        let t1 = m.analysis_time(1 << 20, 256);
        let t2 = m.analysis_time(1 << 21, 256);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn intransit_on_fewer_cores_is_slower_than_insitu() {
        // The paper's middleware trade-off: M << N, so per-step in-transit
        // analysis takes longer than in-situ *when the sim cores are idle* —
        // but runs in parallel with the next step.
        let m = model();
        let cells = 1 << 24;
        let insitu = m.analysis_time(cells, 4096);
        let intransit = m.analysis_time(cells, 256);
        assert!(intransit > insitu);
    }

    #[test]
    fn reduction_is_cheap() {
        let m = model();
        let cells = 1 << 24;
        assert!(m.reduce_time(cells, 4096) < m.analysis_time(cells, 4096));
    }

    #[test]
    fn cells_of_bytes_roundtrip() {
        assert_eq!(CostModel::cells_of_bytes(4096, 1), 512);
        assert_eq!(CostModel::cells_of_bytes(4096, 5), 102);
    }

    #[test]
    fn intrepid_slower_than_titan_per_core() {
        let ti = CostModel::new(MachineSpec::titan());
        let bg = CostModel::new(MachineSpec::intrepid());
        let cells = 1 << 22;
        assert!(
            bg.sim_time(SolverKind::Euler, cells, 1024)
                > ti.sim_time(SolverKind::Euler, cells, 1024)
        );
    }
}
