//! Machine models of the two evaluation systems (paper §5.1):
//! Intrepid (IBM BlueGene/P, ANL) and Titan (Cray XK7, ORNL).
//!
//! The adaptation policies consume only *observables* — memory budgets,
//! compute rates, transfer rates — so a parameterized machine model driven
//! by real AMR data volumes reproduces the policies' decision inputs
//! (DESIGN.md, substitution table).

use serde::{Deserialize, Serialize};

/// Hardware parameters of a target system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: String,
    /// Cores per compute node.
    pub cores_per_node: usize,
    /// Memory per node in bytes.
    pub memory_per_node: u64,
    /// Effective per-core compute rate in flop/s (sustained, not peak).
    pub core_flops: f64,
    /// Per-node network injection bandwidth in B/s.
    pub injection_bandwidth: f64,
    /// Per-message network latency in seconds.
    pub message_latency: f64,
}

impl MachineSpec {
    /// Intrepid: IBM BlueGene/P at Argonne. 40,960 nodes, 850 MHz quad-core
    /// PowerPC 450, 2 GB RAM per node (512 MB/core), 3-D torus with
    /// 425 MB/s per link; 557 Tflop/s peak over 163,840 cores.
    pub fn intrepid() -> Self {
        MachineSpec {
            name: "Intrepid (IBM BlueGene/P)".into(),
            cores_per_node: 4,
            memory_per_node: 2 * (1 << 30),
            // 557 TF / 163840 cores = 3.4 GF peak; ~25% sustained on stencils.
            core_flops: 0.85e9,
            injection_bandwidth: 425.0e6,
            message_latency: 3.5e-6,
        }
    }

    /// Titan: Cray XK7 at Oak Ridge. 18,688 nodes, one 16-core AMD Opteron
    /// 6274 per node, 32 GB/node, Gemini interconnect (~6 GB/s injection);
    /// 20 Pflop/s system peak (mostly GPUs; CPU-side sustained used here).
    pub fn titan() -> Self {
        MachineSpec {
            name: "Titan (Cray XK7)".into(),
            cores_per_node: 16,
            memory_per_node: 32 * (1 << 30),
            core_flops: 2.2e9,
            injection_bandwidth: 6.0e9,
            message_latency: 1.5e-6,
        }
    }

    /// Memory available to each core when all cores of a node are used.
    pub fn memory_per_core(&self) -> u64 {
        self.memory_per_node / self.cores_per_node as u64
    }

    /// Aggregate compute rate of `cores` cores.
    pub fn flops(&self, cores: usize) -> f64 {
        self.core_flops * cores as f64
    }

    /// Aggregate injection bandwidth of the nodes hosting `cores` cores
    /// (cores ÷ cores-per-node nodes, each contributing its link).
    pub fn aggregate_bandwidth(&self, cores: usize) -> f64 {
        let nodes = cores.div_ceil(self.cores_per_node);
        self.injection_bandwidth * nodes as f64
    }
}

/// The split of an allocation into simulation and staging (in-transit)
/// cores — the paper runs e.g. 4K simulation cores with 256 staging cores
/// (16:1, §5.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Cores running the simulation (the paper's `N`).
    pub sim_cores: usize,
    /// Cores allocated as in-transit staging resources (the paper's `M`).
    pub staging_cores: usize,
}

impl Partition {
    /// A partition with a `ratio : 1` simulation-to-staging core ratio.
    pub fn with_ratio(sim_cores: usize, ratio: usize) -> Self {
        assert!(ratio > 0);
        Partition {
            sim_cores,
            staging_cores: (sim_cores / ratio).max(1),
        }
    }

    /// Total cores in the allocation.
    pub fn total(&self) -> usize {
        self.sim_cores + self.staging_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrepid_memory_per_core_is_512mb() {
        let m = MachineSpec::intrepid();
        assert_eq!(m.memory_per_core(), 512 * (1 << 20));
    }

    #[test]
    fn titan_has_16_cores_per_node() {
        let m = MachineSpec::titan();
        assert_eq!(m.cores_per_node, 16);
        assert_eq!(m.memory_per_core(), 2 * (1 << 30));
    }

    #[test]
    fn aggregate_rates_scale_with_cores() {
        let m = MachineSpec::titan();
        assert_eq!(m.flops(32), 2.0 * m.flops(16));
        // 16 cores = 1 node, 17 cores = 2 nodes.
        assert_eq!(m.aggregate_bandwidth(16), m.injection_bandwidth);
        assert_eq!(m.aggregate_bandwidth(17), 2.0 * m.injection_bandwidth);
    }

    #[test]
    fn partition_ratio() {
        let p = Partition::with_ratio(4096, 16);
        assert_eq!(p.sim_cores, 4096);
        assert_eq!(p.staging_cores, 256);
        assert_eq!(p.total(), 4352);
        // tiny allocations still get one staging core
        assert_eq!(Partition::with_ratio(8, 16).staging_cores, 1);
    }
}
