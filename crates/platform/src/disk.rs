//! Parallel-filesystem model: the traditional post-processing path the
//! paper's introduction argues against ("the increasing performance gap
//! between computation and I/O ... renders traditional post-processing
//! data analysis approaches based on disk I/O infeasible", §6).

use crate::des::SimTime;
use serde::{Deserialize, Serialize};

/// Aggregate-filesystem parameters as seen by one job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Sustained write bandwidth available to the job, B/s.
    pub write_bandwidth: f64,
    /// Sustained read bandwidth available to the job, B/s.
    pub read_bandwidth: f64,
    /// Per-operation latency (metadata + stripe setup), seconds.
    pub op_latency: SimTime,
}

impl DiskModel {
    /// Intrepid's GPFS as shared by one mid-size job: the system peaks at
    /// ~60 GB/s; a single job typically sustains a few GB/s.
    pub fn intrepid() -> Self {
        DiskModel {
            write_bandwidth: 2.5e9,
            read_bandwidth: 3.0e9,
            op_latency: 0.01,
        }
    }

    /// Titan's Spider/Lustre as shared by one job (system peak ~240 GB/s,
    /// per-job sustained a few GB/s).
    pub fn titan() -> Self {
        DiskModel {
            write_bandwidth: 5.0e9,
            read_bandwidth: 6.0e9,
            op_latency: 0.005,
        }
    }

    /// Time to write `bytes` in one dump.
    pub fn write_time(&self, bytes: u64) -> SimTime {
        self.op_latency + bytes as f64 / self.write_bandwidth
    }

    /// Time to read `bytes` back.
    pub fn read_time(&self, bytes: u64) -> SimTime {
        self.op_latency + bytes as f64 / self.read_bandwidth
    }

    /// Time to demote `bytes` from staging memory to the node's spill
    /// log: one sequential append — a single op charge, then streaming
    /// writes. Prices the tier's spill path.
    pub fn spill_time(&self, bytes: u64) -> SimTime {
        self.write_time(bytes)
    }

    /// Time to promote `bytes` from the spill log back into staging
    /// memory: the extents are contiguous per object, so one op charge
    /// plus a streaming read. Prices the tier's promote-on-access path.
    pub fn promote_time(&self, bytes: u64) -> SimTime {
        self.read_time(bytes)
    }

    /// The worst-case round trip a spilled object pays: demoted once and
    /// promoted back on its first access. What the pressure policy weighs
    /// against asking the producer to downsample.
    pub fn spill_roundtrip(&self, bytes: u64) -> SimTime {
        self.spill_time(bytes) + self.promote_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_time_formula() {
        let d = DiskModel {
            write_bandwidth: 1e9,
            read_bandwidth: 2e9,
            op_latency: 0.01,
        };
        assert!((d.write_time(1_000_000_000) - 1.01).abs() < 1e-12);
        assert!((d.read_time(1_000_000_000) - 0.51).abs() < 1e-12);
    }

    #[test]
    fn spill_roundtrip_sums_both_directions() {
        let d = DiskModel {
            write_bandwidth: 1e9,
            read_bandwidth: 2e9,
            op_latency: 0.01,
        };
        let n = 1_000_000_000u64;
        assert_eq!(d.spill_time(n), d.write_time(n));
        assert_eq!(d.promote_time(n), d.read_time(n));
        assert!((d.spill_roundtrip(n) - (1.01 + 0.51)).abs() < 1e-12);
    }

    #[test]
    fn machine_presets_ordered() {
        // Titan's filesystem is faster than Intrepid's.
        assert!(DiskModel::titan().write_bandwidth > DiskModel::intrepid().write_bandwidth);
    }
}
