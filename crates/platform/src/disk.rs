//! Parallel-filesystem model: the traditional post-processing path the
//! paper's introduction argues against ("the increasing performance gap
//! between computation and I/O ... renders traditional post-processing
//! data analysis approaches based on disk I/O infeasible", §6).

use crate::des::SimTime;
use serde::{Deserialize, Serialize};

/// Aggregate-filesystem parameters as seen by one job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Sustained write bandwidth available to the job, B/s.
    pub write_bandwidth: f64,
    /// Sustained read bandwidth available to the job, B/s.
    pub read_bandwidth: f64,
    /// Per-operation latency (metadata + stripe setup), seconds.
    pub op_latency: SimTime,
}

impl DiskModel {
    /// Intrepid's GPFS as shared by one mid-size job: the system peaks at
    /// ~60 GB/s; a single job typically sustains a few GB/s.
    pub fn intrepid() -> Self {
        DiskModel {
            write_bandwidth: 2.5e9,
            read_bandwidth: 3.0e9,
            op_latency: 0.01,
        }
    }

    /// Titan's Spider/Lustre as shared by one job (system peak ~240 GB/s,
    /// per-job sustained a few GB/s).
    pub fn titan() -> Self {
        DiskModel {
            write_bandwidth: 5.0e9,
            read_bandwidth: 6.0e9,
            op_latency: 0.005,
        }
    }

    /// Time to write `bytes` in one dump.
    pub fn write_time(&self, bytes: u64) -> SimTime {
        self.op_latency + bytes as f64 / self.write_bandwidth
    }

    /// Time to read `bytes` back.
    pub fn read_time(&self, bytes: u64) -> SimTime {
        self.op_latency + bytes as f64 / self.read_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_time_formula() {
        let d = DiskModel {
            write_bandwidth: 1e9,
            read_bandwidth: 2e9,
            op_latency: 0.01,
        };
        assert!((d.write_time(1_000_000_000) - 1.01).abs() < 1e-12);
        assert!((d.read_time(1_000_000_000) - 0.51).abs() < 1e-12);
    }

    #[test]
    fn machine_presets_ordered() {
        // Titan's filesystem is faster than Intrepid's.
        assert!(DiskModel::titan().write_bandwidth > DiskModel::intrepid().write_bandwidth);
    }
}
