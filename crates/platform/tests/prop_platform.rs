//! Property-based tests of the platform substrate: event ordering, FIFO
//! resource laws, cost-model monotonicity and utilization bounds.

use proptest::prelude::*;
use xlayer_platform::{
    CostModel, EventQueue, FifoResource, MachineSpec, PowerModel, ResourcePool, SolverKind,
    StagingStepRecord, StagingUtilization, TransferModel,
};

proptest! {
    #[test]
    fn events_pop_in_nondecreasing_time_order(
        times in proptest::collection::vec(0.0f64..1e6, 1..100),
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(q.now(), t);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn equal_times_pop_in_insertion_order(n in 1usize..50) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(1.0, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_resource_never_overlaps(
        reqs in proptest::collection::vec((0.0f64..100.0, 0.01f64..10.0), 1..40),
    ) {
        let mut r = FifoResource::new();
        // submit in nondecreasing arrival order (FIFO semantics)
        let mut sorted = reqs.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut intervals = Vec::new();
        for (now, dur) in sorted {
            let (s, e) = r.acquire(now, dur);
            prop_assert!(s >= now);
            prop_assert!((e - s - dur).abs() < 1e-9);
            intervals.push((s, e));
        }
        for w in intervals.windows(2) {
            prop_assert!(w[1].0 >= w[0].1 - 1e-9, "overlap {:?}", w);
        }
        // busy time = sum of durations
        let total: f64 = intervals.iter().map(|(s, e)| e - s).sum();
        prop_assert!((r.busy_time() - total).abs() < 1e-6);
    }

    #[test]
    fn pool_utilization_bounded(
        jobs in proptest::collection::vec(0.01f64..5.0, 1..30),
        n in 1usize..8,
    ) {
        let mut p = ResourcePool::new(n);
        let mut latest: f64 = 0.0;
        for d in &jobs {
            let (_, _, e) = p.acquire(0.0, *d);
            latest = latest.max(e);
        }
        let u = p.utilization(latest);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        prop_assert!((p.busy_time() - jobs.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn cost_model_monotone_in_cells_and_cores(
        cells in 1u64..(1 << 32),
        cores in 1usize..16384,
    ) {
        let m = CostModel::new(MachineSpec::titan());
        for kind in [SolverKind::Euler, SolverKind::AdvectDiffuse] {
            let t = m.sim_time(kind, cells, cores);
            prop_assert!(t > 0.0 && t.is_finite());
            prop_assert!(m.sim_time(kind, cells * 2, cores) > t);
            if cores > 1 {
                prop_assert!(m.sim_time(kind, cells, cores / 2 + 1) >= t * 0.999);
            }
        }
        let a = m.analysis_time_surface(cells, cells / 10, cores);
        prop_assert!(a > 0.0);
        prop_assert!(m.analysis_time_surface(cells, cells / 5, cores) >= a);
    }

    #[test]
    fn transfer_time_additive_in_bytes(
        bytes_a in 1u64..(1 << 36),
        bytes_b in 1u64..(1 << 36),
    ) {
        let t = TransferModel::for_machine(&MachineSpec::titan());
        let sum = t.transfer_time(bytes_a) + t.transfer_time(bytes_b);
        let joint = t.transfer_time(bytes_a + bytes_b);
        // one message saves exactly one latency
        prop_assert!((sum - joint - t.latency).abs() < 1e-9);
    }

    #[test]
    fn utilization_efficiency_in_unit_interval(
        records in proptest::collection::vec(
            (1usize..512, 0.0f64..100.0, 0.1f64..100.0),
            1..30,
        ),
    ) {
        let mut u = StagingUtilization::new();
        for (i, (alloc, busy, span)) in records.iter().enumerate() {
            u.record(StagingStepRecord {
                step: i as u64,
                allocated: *alloc,
                used: *alloc,
                analysis_time: busy * *alloc as f64,
                span: span.max(*busy),
            });
        }
        let eff = u.efficiency();
        prop_assert!((0.0..=1.0).contains(&eff));
        let b = u.buckets(256);
        prop_assert!(b.total() <= records.len());
    }

    #[test]
    fn energy_monotone_in_busy_time(
        cores in 1usize..4096,
        span in 1.0f64..1e5,
        busy_frac in 0.0f64..1.0,
    ) {
        let p = PowerModel::titan();
        let busy = span * busy_frac;
        let e = p.core_energy(cores, busy, span);
        prop_assert!(e >= p.core_energy(cores, 0.0, span) - 1e-9);
        prop_assert!(e <= p.core_energy(cores, span, span) + 1e-9);
    }
}
