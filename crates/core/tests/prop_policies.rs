//! Property-based tests of the adaptation policies: the constraint
//! satisfaction the paper's formulations (Eqs. 1–10) promise must hold for
//! *every* operational state, not just the evaluated ones.

use proptest::prelude::*;
use xlayer_core::policy::{app, middleware, resource};
use xlayer_core::{
    min_time_engine, EngineConfig, Estimator, Objective, OperationalState, Placement, UserHints,
    UserPreferences,
};
use xlayer_platform::{CostModel, MachineSpec};

fn est() -> Estimator {
    Estimator::new(CostModel::new(MachineSpec::titan()))
}

fn arb_factors() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..32, 1..6)
}

proptest! {
    // ---- application layer (Eqs. 1–3) ----

    #[test]
    fn app_factor_is_from_the_hint_set(
        s_data in 1u64..(1 << 40),
        factors in arb_factors(),
        mem in 0u64..(1 << 41),
    ) {
        let d = app::select_factor(s_data, &factors, mem);
        prop_assert!(factors.contains(&d.factor));
    }

    #[test]
    fn app_memory_constraint_satisfied_unless_flagged(
        s_data in 1u64..(1 << 40),
        factors in arb_factors(),
        mem in 0u64..(1 << 41),
    ) {
        let d = app::select_factor(s_data, &factors, mem);
        if !d.memory_exceeded {
            prop_assert!(app::reduction_memory(s_data, d.factor) <= mem);
        }
    }

    #[test]
    fn app_choice_is_maximal_resolution(
        s_data in 1u64..(1 << 40),
        factors in arb_factors(),
        mem in 0u64..(1 << 41),
    ) {
        // Eq. 1: no *smaller* acceptable factor may fit in memory.
        let d = app::select_factor(s_data, &factors, mem);
        if !d.memory_exceeded {
            for &f in factors.iter().filter(|&&f| f < d.factor) {
                prop_assert!(app::reduction_memory(s_data, f) > mem);
            }
        }
    }

    #[test]
    fn app_reduction_is_monotone_in_factor(
        s_data in 1u64..(1 << 40),
        x in 1u32..64,
    ) {
        prop_assert!(app::reduced_bytes(s_data, x + 1) <= app::reduced_bytes(s_data, x));
        prop_assert!(app::reduced_surface(s_data, x + 1) <= app::reduced_surface(s_data, x));
    }

    #[test]
    fn app_interval_within_bounds(
        t_an in 0.0f64..1e6,
        t_sim in 1e-6f64..1e6,
        budget in 0.001f64..1.0,
        max in 1u64..32,
    ) {
        let k = app::select_interval(t_an, t_sim, budget, max);
        prop_assert!(k >= 1 && k <= max);
        // the amortized budget holds unless capped
        if k < max {
            prop_assert!(t_an / k as f64 <= budget * t_sim * (1.0 + 1e-9));
        }
    }

    // ---- resource layer (Eqs. 9–10) ----

    #[test]
    fn resource_memory_floor_always_met(
        bytes in 1u64..(1 << 42),
        t_sim in 0.001f64..1e5,
        max in 1usize..4096,
    ) {
        let e = est();
        let cells = bytes / 8;
        let d = resource::select_staging_cores(&e, bytes, cells, cells / 10, t_sim, 4096, max);
        prop_assert!(d.staging_cores >= 1 && d.staging_cores <= max);
        // Eq. 10 up to the allocation cap:
        if d.staging_cores < max {
            prop_assert!(e.staging_capacity(d.staging_cores) >= bytes);
        }
    }

    #[test]
    fn resource_balance_met_unless_saturated(
        bytes in (1u64 << 20)..(1 << 38),
        t_sim in 0.01f64..1e4,
        max in 2usize..4096,
    ) {
        let e = est();
        let cells = bytes / 8;
        let surface = cells / 10;
        let d = resource::select_staging_cores(&e, bytes, cells, surface, t_sim, 4096, max);
        let budget = t_sim + e.t_send(bytes, 4096);
        let period = e.t_intransit(cells, surface, d.staging_cores)
            + e.t_recv(bytes, d.staging_cores);
        if d.saturated {
            prop_assert_eq!(d.staging_cores, max);
        } else {
            prop_assert!(period <= budget * (1.0 + 1e-9));
        }
    }

    // ---- middleware layer (Eqs. 4–8) ----

    #[test]
    fn middleware_memory_gating_is_respected(
        bytes in (1u64 << 20)..(1 << 38),
        busy in 0.0f64..1e4,
        mem_insitu in 0u64..(1 << 38),
        mem_intransit in 0u64..(1 << 38),
    ) {
        let e = est();
        let cells = bytes / 8;
        let state = OperationalState {
            now: 100.0,
            intransit_busy_until: 100.0 + busy,
            data_bytes: bytes,
            cells,
            surface_cells: cells / 10,
            sim_cores: 4096,
            staging_cores: 256,
            staging_cores_max: 512,
            mem_available_insitu: mem_insitu,
            mem_available_intransit: mem_intransit,
            ..Default::default()
        };
        let d = middleware::decide_placement(&e, &state, bytes, cells, cells / 10);
        let fits_insitu = e.mem_insitu(bytes, 4096, 1.0) <= mem_insitu;
        let fits_intransit = e.mem_intransit(bytes) <= mem_intransit;
        match (fits_insitu, fits_intransit) {
            (true, false) => prop_assert_eq!(d.placement, Placement::InSitu),
            (false, true) => prop_assert_eq!(d.placement, Placement::InTransit),
            _ => {} // both or neither: time-based or forced path
        }
    }

    #[test]
    fn middleware_idle_staging_always_wins(
        bytes in (1u64 << 20)..(1 << 38),
    ) {
        // Case 2: memory at both + idle staging ⇒ in-transit, always.
        let e = est();
        let cells = bytes / 8;
        let state = OperationalState {
            now: 100.0,
            intransit_busy_until: 0.0,
            data_bytes: bytes,
            cells,
            surface_cells: cells / 10,
            sim_cores: 4096,
            staging_cores: 256,
            staging_cores_max: 512,
            mem_available_insitu: u64::MAX,
            mem_available_intransit: u64::MAX,
            ..Default::default()
        };
        let d = middleware::decide_placement(&e, &state, bytes, cells, cells / 10);
        prop_assert_eq!(d.placement, Placement::InTransit);
    }

    // ---- engine invariants ----

    #[test]
    fn engine_never_panics_and_outputs_are_consistent(
        bytes in 1u64..(1 << 40),
        busy in 0.0f64..1e5,
        t_sim in 0.0f64..1e5,
        mem_a in 0u64..(1 << 40),
        mem_b in 0u64..(1 << 40),
        step in 0u64..1000,
        roi in 0.0f64..1.0,
    ) {
        let mut hints = UserHints::paper_fig5_schedule(20);
        hints.roi_fraction = roi;
        hints.max_analysis_interval = 8;
        let engine = min_time_engine(hints, EngineConfig::global(), est());
        let cells = bytes / 8;
        let state = OperationalState {
            step,
            now: 1000.0,
            intransit_busy_until: 1000.0 + busy,
            data_bytes: bytes,
            cells,
            surface_cells: cells / 10,
            last_sim_time: t_sim,
            sim_cores: 4096,
            staging_cores: 256,
            staging_cores_max: 1024,
            mem_available_insitu: mem_a,
            mem_available_intransit: mem_b,
            ..Default::default()
        };
        let a = engine.adapt(&state);
        prop_assert!(a.analysis_bytes <= bytes);
        prop_assert!(a.analysis_cells <= cells);
        prop_assert!(a.analysis_interval >= 1 && a.analysis_interval <= 8);
        if let Some(r) = a.resource {
            prop_assert!(r.staging_cores >= 1 && r.staging_cores <= 1024);
        }
        prop_assert!(a.placement.is_some());
    }

    #[test]
    fn objective_determines_executed_mechanisms(
        bytes in (1u64 << 20)..(1 << 38),
    ) {
        let cells = bytes / 8;
        let state = OperationalState {
            data_bytes: bytes,
            cells,
            surface_cells: cells / 10,
            last_sim_time: 10.0,
            sim_cores: 4096,
            staging_cores: 256,
            staging_cores_max: 512,
            ..Default::default()
        };
        for objective in [
            Objective::MinimizeTimeToSolution,
            Objective::MaximizeStagingUtilization,
            Objective::MinimizeDataMovement,
            Objective::HighestResolution,
        ] {
            let engine = xlayer_core::AdaptationEngine::new(
                UserPreferences { objective },
                UserHints::default(),
                EngineConfig::global(),
                est(),
            );
            let a = engine.adapt(&state);
            match objective {
                Objective::MaximizeStagingUtilization => {
                    prop_assert!(a.placement.is_none());
                    prop_assert!(a.resource.is_some());
                }
                Objective::HighestResolution => {
                    prop_assert!(a.app.is_none());
                }
                _ => prop_assert!(a.placement.is_some()),
            }
        }
    }
}
