//! The operational state: what the Monitor reports to the Adaptation
//! Engine every sampling period (paper §3, Fig. 3).
//!
//! "Status information includes resource utilization and resource
//! availability (memory, bandwidth, CPU cores) as well as application
//! execution time, analysis time and the size of the generated data."

use serde::{Deserialize, Serialize};
use xlayer_platform::SimTime;

/// A snapshot of the workflow across all three layers at one sampling point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperationalState {
    /// Simulation time step the snapshot describes.
    pub step: u64,
    /// Virtual wall-clock time of the snapshot (seconds).
    pub now: SimTime,

    // --- application layer ---
    /// Size of the simulation output this step, before any reduction
    /// (`S_data`, Table 1).
    pub data_bytes: u64,
    /// Composite-grid cells in the output (drives analysis cost estimates).
    pub cells: u64,
    /// Cells crossing the isosurface of interest (drives the
    /// surface-proportional part of the analysis cost; the Monitor
    /// estimates it from the refined-region size).
    pub surface_cells: u64,
    /// Observed duration of the last simulation step (`T_i_sim(N)`).
    pub last_sim_time: SimTime,
    /// Observed duration of the last analysis, wherever it ran.
    pub last_analysis_time: Option<SimTime>,

    // --- middleware layer ---
    /// When the in-transit cores finish the work already queued on them
    /// (absolute virtual time; `≤ now` means idle). Feeds Eq. 7's
    /// `T_j_intransit_remaining`.
    pub intransit_busy_until: SimTime,

    // --- resource layer ---
    /// Simulation cores (`N`).
    pub sim_cores: usize,
    /// Currently allocated in-transit cores (`M`).
    pub staging_cores: usize,
    /// Upper bound on in-transit cores the allocation permits.
    pub staging_cores_max: usize,
    /// Free memory on the most loaded simulation rank, in bytes
    /// (`Mem_available` of Eq. 2 — the binding constraint is the worst rank).
    pub mem_available_insitu: u64,
    /// Free staging-area memory in bytes.
    pub mem_available_intransit: u64,
    /// Free budget on the staging area's disk spill tier, in bytes
    /// (0 = no tier attached — the pre-tier behaviour).
    pub disk_available_intransit: u64,
}

impl OperationalState {
    /// Remaining busy time on the staging cores relative to `now`
    /// (`T_j_intransit_remaining`, Eq. 7). Zero when idle.
    pub fn intransit_remaining(&self) -> SimTime {
        (self.intransit_busy_until - self.now).max(0.0)
    }

    /// True if the staging cores are idle at `now`.
    pub fn intransit_idle(&self) -> bool {
        self.intransit_busy_until <= self.now
    }
}

impl Default for OperationalState {
    fn default() -> Self {
        OperationalState {
            step: 0,
            now: 0.0,
            data_bytes: 0,
            cells: 0,
            surface_cells: 0,
            last_sim_time: 0.0,
            last_analysis_time: None,
            intransit_busy_until: 0.0,
            sim_cores: 1,
            staging_cores: 1,
            staging_cores_max: 1,
            mem_available_insitu: u64::MAX,
            mem_available_intransit: u64::MAX,
            disk_available_intransit: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_time_clamps_at_zero() {
        let mut s = OperationalState {
            now: 10.0,
            intransit_busy_until: 7.0,
            ..Default::default()
        };
        assert_eq!(s.intransit_remaining(), 0.0);
        assert!(s.intransit_idle());
        s.intransit_busy_until = 12.5;
        assert!((s.intransit_remaining() - 2.5).abs() < 1e-12);
        assert!(!s.intransit_idle());
    }
}
