//! Execution-time and memory estimators (paper Table 1): the quantities the
//! policies compare — `T_insitu(N, S)`, `T_intransit(M, S)`, `T_sd`,
//! `T_recv`, `Mem_insitu`, `Mem_intransit`.

use xlayer_platform::{CostModel, SimTime, TransferModel};

/// Fraction of a staging core's nominal memory share actually usable for
/// cached objects (the rest is runtime overhead).
const STAGING_MEM_FRACTION: f64 = 0.8;

/// Working-set expansion of the in-situ analysis relative to its input:
/// marching cubes holds the input block plus the growing mesh.
const INSITU_WORK_FACTOR: f64 = 1.35;

/// The estimator used by every policy.
#[derive(Clone, Debug)]
pub struct Estimator {
    /// Kernel/machine cost model.
    pub cost: CostModel,
    /// Simulation→staging transfer model.
    pub transfer: TransferModel,
    /// Online correction applied to in-situ analysis estimates
    /// (observed/predicted, exponentially smoothed).
    pub insitu_scale: f64,
    /// Online correction applied to in-transit analysis estimates.
    pub intransit_scale: f64,
}

/// Exponentially-smoothed online calibration of the analysis estimators:
/// an autonomic runtime corrects its model from what it measures, instead
/// of trusting static constants (§3's Monitor closes this loop).
#[derive(Clone, Copy, Debug)]
pub struct Calibrator {
    /// Smoothing factor for new observations (0 < α ≤ 1).
    pub alpha: f64,
    /// Reject observations this far from the current scale (guards against
    /// one-off stalls polluting the model).
    pub outlier_ratio: f64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            alpha: 0.3,
            outlier_ratio: 20.0,
        }
    }
}

impl Calibrator {
    fn update(&self, scale: &mut f64, predicted: f64, observed: f64) {
        if predicted <= 0.0 || observed <= 0.0 {
            return;
        }
        // `predicted` already includes the current scale, so the relative
        // error is the multiplicative correction still needed.
        let rel = observed / predicted;
        // xlint: allow(F) -- 1.0 is the literal uncalibrated bootstrap scale, never computed
        if *scale == 1.0 {
            // Bootstrap: an uncalibrated model may be arbitrarily far off
            // (static constants vs an unknown machine); the first
            // observation initializes the scale outright.
            *scale = rel;
            return;
        }
        if rel > self.outlier_ratio || rel < 1.0 / self.outlier_ratio {
            return;
        }
        *scale *= 1.0 - self.alpha + self.alpha * rel;
    }

    /// Fold an observed in-situ analysis time into the estimator.
    pub fn observe_insitu(&self, est: &mut Estimator, predicted: f64, observed: f64) {
        let mut s = est.insitu_scale;
        self.update(&mut s, predicted, observed);
        est.insitu_scale = s;
    }

    /// Fold an observed in-transit analysis time into the estimator.
    pub fn observe_intransit(&self, est: &mut Estimator, predicted: f64, observed: f64) {
        let mut s = est.intransit_scale;
        self.update(&mut s, predicted, observed);
        est.intransit_scale = s;
    }
}

impl Estimator {
    /// Build from a cost model (transfer parameters come from its machine).
    pub fn new(cost: CostModel) -> Self {
        let transfer = TransferModel::for_machine(&cost.machine);
        Estimator {
            cost,
            transfer,
            insitu_scale: 1.0,
            intransit_scale: 1.0,
        }
    }

    /// `T_insitu(N, S_data)`: analysis of `cells` cells (of which
    /// `surface_cells` cross the isosurface) on the `n` simulation cores
    /// (Table 1).
    pub fn t_insitu(&self, cells: u64, surface_cells: u64, n: usize) -> SimTime {
        self.cost.analysis_time_surface(cells, surface_cells, n) * self.insitu_scale
    }

    /// `T_intransit(M, S_data)`: analysis of `cells` cells on `m` staging
    /// cores (Table 1).
    pub fn t_intransit(&self, cells: u64, surface_cells: u64, m: usize) -> SimTime {
        self.cost
            .analysis_time_surface(cells, surface_cells, m.max(1))
            * self.intransit_scale
    }

    /// Default surface-cell estimate when no observation exists.
    pub fn default_surface(&self, cells: u64) -> u64 {
        (cells as f64 * self.cost.kernels.mc_surface_fraction) as u64
    }

    /// `T_sd(S_data)`: latency for the simulation side to send `bytes`
    /// asynchronously — the injection cost, spread over the sending nodes
    /// (Table 1, Eq. 9).
    pub fn t_send(&self, bytes: u64, sim_cores: usize) -> SimTime {
        let nodes = sim_cores.div_ceil(self.cost.machine.cores_per_node).max(1);
        self.transfer.latency + bytes as f64 / (self.transfer.bandwidth * nodes as f64)
    }

    /// `T_recv(S_data)`: latency for the staging side to absorb `bytes`
    /// over its nodes' links (Table 1, Eq. 9).
    pub fn t_recv(&self, bytes: u64, staging_cores: usize) -> SimTime {
        let nodes = staging_cores
            .div_ceil(self.cost.machine.cores_per_node)
            .max(1);
        self.transfer.latency + bytes as f64 / (self.transfer.bandwidth * nodes as f64)
    }

    /// `Mem_insitu(S_data, N)`: extra bytes the in-situ analysis needs on
    /// the most loaded rank, for a total output of `bytes` over `n` ranks
    /// with imbalance factor `imbalance` (≥ 1).
    pub fn mem_insitu(&self, bytes: u64, n: usize, imbalance: f64) -> u64 {
        let per_rank = bytes as f64 / n.max(1) as f64 * imbalance.max(1.0);
        (per_rank * INSITU_WORK_FACTOR) as u64
    }

    /// `Mem_intransit(S_data, M)`: staging memory that must be free to cache
    /// the step's output — the data itself (Eq. 10: `Mem_intransit ≥ S_data`).
    pub fn mem_intransit(&self, bytes: u64) -> u64 {
        bytes
    }

    /// Usable staging memory provided by `m` staging cores.
    pub fn staging_capacity(&self, m: usize) -> u64 {
        (self.cost.machine.memory_per_core() as f64 * m as f64 * STAGING_MEM_FRACTION) as u64
    }

    /// Smallest core count whose staging capacity holds `bytes`
    /// (the Eq. 10 lower bound on `M`).
    pub fn min_cores_for_memory(&self, bytes: u64) -> usize {
        let per_core = self.cost.machine.memory_per_core() as f64 * STAGING_MEM_FRACTION;
        ((bytes as f64 / per_core).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_platform::MachineSpec;

    fn est() -> Estimator {
        Estimator::new(CostModel::new(MachineSpec::titan()))
    }

    #[test]
    fn intransit_slower_than_insitu_for_m_less_than_n() {
        let e = est();
        let cells = 1 << 24;
        assert!(e.t_intransit(cells, cells / 10, 256) > e.t_insitu(cells, cells / 10, 4096));
    }

    #[test]
    fn send_time_scales_down_with_nodes() {
        let e = est();
        let b = 1 << 30;
        assert!(e.t_send(b, 4096) < e.t_send(b, 256));
    }

    #[test]
    fn staging_capacity_scales_with_cores() {
        let e = est();
        assert_eq!(e.staging_capacity(32), 2 * e.staging_capacity(16));
    }

    #[test]
    fn min_cores_inverse_of_capacity() {
        let e = est();
        for bytes in [1u64 << 20, 1 << 30, 5 << 30] {
            let m = e.min_cores_for_memory(bytes);
            assert!(e.staging_capacity(m) >= bytes);
            if m > 1 {
                assert!(e.staging_capacity(m - 1) < bytes);
            }
        }
    }

    #[test]
    fn mem_insitu_grows_with_imbalance() {
        let e = est();
        let b = 1 << 30;
        assert!(e.mem_insitu(b, 1024, 2.0) > e.mem_insitu(b, 1024, 1.0));
        assert!(e.mem_insitu(b, 1024, 1.0) >= b / 1024);
    }

    #[test]
    fn mem_intransit_is_sdata() {
        let e = est();
        assert_eq!(e.mem_intransit(12345), 12345);
    }

    #[test]
    fn calibration_converges_to_observed_ratio() {
        let mut e = est();
        let cal = Calibrator::default();
        let cells = 1 << 24;
        let base = e.t_insitu(cells, cells / 10, 4096);
        // The real machine is consistently 2x slower than the model.
        for _ in 0..40 {
            let predicted = e.t_insitu(cells, cells / 10, 4096);
            cal.observe_insitu(&mut e, predicted, 2.0 * base);
        }
        let corrected = e.t_insitu(cells, cells / 10, 4096);
        assert!(
            (corrected / base - 2.0).abs() < 0.05,
            "scale converged to {}",
            corrected / base
        );
        // the in-transit estimator is untouched
        assert_eq!(e.intransit_scale, 1.0);
    }

    #[test]
    fn calibration_bootstraps_then_rejects_outliers() {
        let mut e = est();
        let cal = Calibrator::default();
        cal.observe_intransit(&mut e, 0.0, 1.0); // degenerate: ignored
        cal.observe_intransit(&mut e, 1.0, -1.0);
        assert_eq!(e.intransit_scale, 1.0);
        // First real observation initializes the scale outright, however
        // far off the static model was.
        cal.observe_intransit(&mut e, 1.0, 70.0);
        assert_eq!(e.intransit_scale, 70.0);
        // Once calibrated, a 1000x stall is rejected…
        let before = e.intransit_scale;
        cal.observe_intransit(&mut e, 70.0, 70_000.0);
        assert_eq!(e.intransit_scale, before);
        // …while a modest error is smoothed in.
        cal.observe_intransit(&mut e, 70.0, 105.0);
        assert!((e.intransit_scale - 70.0 * 1.15).abs() < 1e-9);
    }
}
