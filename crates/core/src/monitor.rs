//! The Monitor (paper §3, Fig. 3): periodically samples the operational
//! state of the workflow and forwards it to the Adaptation Engine.

use crate::state::OperationalState;

/// Periodic sampler and history of operational states.
#[derive(Clone, Debug)]
pub struct Monitor {
    interval: u64,
    history: Vec<OperationalState>,
}

impl Monitor {
    /// Sample every `interval` steps (≥ 1).
    pub fn new(interval: u64) -> Self {
        Monitor {
            interval: interval.max(1),
            history: Vec::new(),
        }
    }

    /// The sampling period in steps.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// True if `step` is a sampling point ("after every specified number of
    /// simulation time steps", §3).
    pub fn should_sample(&self, step: u64) -> bool {
        step.is_multiple_of(self.interval)
    }

    /// Record a snapshot (call at sampling points). Returns a reference to
    /// the stored state.
    pub fn record(&mut self, state: OperationalState) -> &OperationalState {
        self.history.push(state);
        self.history.last().expect("just pushed")
    }

    /// Most recent snapshot.
    pub fn last(&self) -> Option<&OperationalState> {
        self.history.last()
    }

    /// Full history, oldest first.
    pub fn history(&self) -> &[OperationalState] {
        &self.history
    }

    /// Exponentially-smoothed simulation step time over the history — a
    /// more stable `T_(i+1)_sim` predictor than the last sample alone.
    pub fn smoothed_sim_time(&self) -> f64 {
        let mut est = 0.0;
        let mut init = false;
        for s in &self.history {
            if !init {
                est = s.last_sim_time;
                init = true;
            } else {
                est = 0.7 * est + 0.3 * s.last_sim_time;
            }
        }
        est
    }

    /// Trend of the output data size over the last `window` samples, as
    /// bytes per step (positive while the AMR hierarchy is refining).
    pub fn data_growth_rate(&self, window: usize) -> f64 {
        let n = self.history.len();
        if n < 2 || window < 2 {
            return 0.0;
        }
        let w = window.min(n);
        let first = &self.history[n - w];
        let last = &self.history[n - 1];
        let dsteps = (last.step - first.step).max(1);
        (last.data_bytes as f64 - first.data_bytes as f64) / dsteps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(step: u64, sim_time: f64, bytes: u64) -> OperationalState {
        OperationalState {
            step,
            last_sim_time: sim_time,
            data_bytes: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn sampling_period() {
        let m = Monitor::new(5);
        assert!(m.should_sample(0));
        assert!(!m.should_sample(3));
        assert!(m.should_sample(10));
        // interval 0 is clamped to 1
        assert!(Monitor::new(0).should_sample(7));
    }

    #[test]
    fn history_and_last() {
        let mut m = Monitor::new(1);
        assert!(m.last().is_none());
        m.record(state(1, 2.0, 100));
        m.record(state(2, 4.0, 200));
        assert_eq!(m.last().unwrap().step, 2);
        assert_eq!(m.history().len(), 2);
    }

    #[test]
    fn smoothing_converges_toward_recent_values() {
        let mut m = Monitor::new(1);
        for i in 0..20 {
            m.record(state(i, if i < 10 { 1.0 } else { 5.0 }, 0));
        }
        let s = m.smoothed_sim_time();
        assert!(s > 3.0 && s < 5.0, "smoothed {s}");
    }

    #[test]
    fn growth_rate() {
        let mut m = Monitor::new(1);
        m.record(state(0, 1.0, 1000));
        m.record(state(1, 1.0, 1500));
        m.record(state(2, 1.0, 2000));
        assert!((m.data_growth_rate(3) - 500.0).abs() < 1e-9);
        assert_eq!(m.data_growth_rate(1), 0.0);
        assert_eq!(Monitor::new(1).data_growth_rate(3), 0.0);
    }
}
