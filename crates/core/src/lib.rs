//! # xlayer-core — the cross-layer adaptation runtime
//!
//! The primary contribution of *Jin et al., "Using Cross-Layer Adaptations
//! for Dynamic Data Management in Large Scale Coupled Scientific
//! Workflows"* (SC '13): an autonomic runtime of three components —
//!
//! * the [`monitor::Monitor`] samples the operational state across the
//!   application, middleware and resource layers (§3, Fig. 3),
//! * the [`engine::AdaptationEngine`] selects and executes adaptations
//!   based on user [`prefs`] (preferences + hints) and the current
//!   [`state::OperationalState`],
//! * the [`policy`] module implements the per-layer policies (Eqs. 1–10)
//!   and the root–leaf cross-layer coordinator (§4.4).
//!
//! [`estimate::Estimator`] supplies the Table 1 estimators
//! (`T_insitu`, `T_intransit`, `T_sd`, `T_recv`, `Mem_*`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod estimate;
pub mod monitor;
pub mod policy;
pub mod prefs;
pub mod state;

pub use engine::{min_time_engine, AdaptationEngine, Adaptations, EngineConfig};
pub use estimate::{Calibrator, Estimator};
pub use monitor::Monitor;
pub use policy::app::AppDecision;
pub use policy::cross::{plan, CrossLayerPlan, Mechanism};
pub use policy::middleware::{hybrid_split, Placement, PlacementDecision, PlacementReason};
pub use policy::pressure::{PressureAction, PressureDecision};
pub use policy::resource::ResourceDecision;
pub use prefs::{FactorPhase, Objective, UserHints, UserPreferences};
pub use state::OperationalState;
