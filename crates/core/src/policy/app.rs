//! Application-layer adaptation policy (paper §4.1, Eqs. 1–3): choose the
//! down-sampling factor `X`.
//!
//! Maximize the data retained, `S_data − f_data_reduce(S_data, X)` removed —
//! i.e. pick the *smallest* acceptable `X` — subject to the memory needed to
//! perform the reduction, `Mem_data_reduce(S_data, X) ≤ Mem_available`, with
//! `X` drawn from the user-hinted set (Eq. 3).

use serde::{Deserialize, Serialize};

/// Reduced output size at factor `x`: `f_data_reduce(S_data, X)` with `X`
/// the *volumetric* divisor — the paper's acceptable sets {2,4} / {2,4,8,16}
/// divide the data volume by X (a per-dimension stride of X^(1/3)). The
/// observed data-movement reductions of Fig. 11 (5–46%) and the gradual
/// factor escalation of Fig. 5 both imply this reading; a per-dimension X
/// would shrink volumes by X³ = 64–4096×, far beyond what the paper reports.
pub fn reduced_bytes(s_data: u64, x: u32) -> u64 {
    s_data.div_ceil(x as u64)
}

/// Cells surviving a volumetric factor-`x` reduction.
pub fn reduced_cells(cells: u64, x: u32) -> u64 {
    cells / (x as u64).max(1)
}

/// Surface-crossing cells surviving a volumetric factor-`x` reduction:
/// linear resolution drops by x^(1/3), so a 2-D surface keeps x^(-2/3) of
/// its cells.
pub fn reduced_surface(surface_cells: u64, x: u32) -> u64 {
    (surface_cells as f64 / (x as f64).powf(2.0 / 3.0)) as u64
}

/// Memory needed to perform the reduction at factor `x`
/// (`Mem_data_reduce`, Eq. 2): input and output are resident together.
pub fn reduction_memory(s_data: u64, x: u32) -> u64 {
    s_data + reduced_bytes(s_data, x)
}

/// Temporal-resolution policy: the paper's application layer can also
/// "adapt the spatial and/or **temporal** resolution of the data being
/// written and processed" — analyze every `k`-th step instead of every
/// step.
///
/// Picks the smallest interval `k ∈ [1, max_interval]` such that the
/// amortized analysis cost stays within `budget_frac` of the simulation
/// time: `t_analysis / k ≤ budget_frac · t_sim`.
pub fn select_interval(t_analysis: f64, t_sim: f64, budget_frac: f64, max_interval: u64) -> u64 {
    assert!(budget_frac > 0.0, "analysis budget must be positive");
    if t_sim <= 0.0 || !t_analysis.is_finite() {
        return max_interval.max(1);
    }
    let k = (t_analysis / (budget_frac * t_sim)).ceil();
    (k as u64).clamp(1, max_interval.max(1))
}

/// The outcome of the application-layer policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppDecision {
    /// Chosen down-sampling factor.
    pub factor: u32,
    /// Output size after reduction.
    pub reduced_bytes: u64,
    /// True if even the largest acceptable factor violates the memory
    /// constraint (the policy then degrades to that largest factor).
    pub memory_exceeded: bool,
}

/// Select the down-sampling factor per Eqs. 1–3.
///
/// `factors` is the user-hinted acceptable set (Eq. 3); `s_data` the step's
/// output size; `mem_available` the free memory where the reduction runs.
pub fn select_factor(s_data: u64, factors: &[u32], mem_available: u64) -> AppDecision {
    assert!(!factors.is_empty(), "need at least one acceptable factor");
    let mut sorted: Vec<u32> = factors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    // Smallest X whose reduction memory fits (Eq. 1 maximized s.t. Eq. 2).
    for &x in &sorted {
        if reduction_memory(s_data, x) <= mem_available {
            return AppDecision {
                factor: x,
                reduced_bytes: reduced_bytes(s_data, x),
                memory_exceeded: false,
            };
        }
    }
    // Nothing fits: fall back to the most aggressive reduction and flag it.
    let x = *sorted.last().expect("non-empty");
    AppDecision {
        factor: x,
        reduced_bytes: reduced_bytes(s_data, x),
        memory_exceeded: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plentiful_memory_selects_smallest_factor() {
        // Fig. 5, steps 0–30: memory is ample, the minimum factor wins.
        let d = select_factor(100 << 20, &[2, 4], u64::MAX);
        assert_eq!(d.factor, 2);
        assert!(!d.memory_exceeded);
        assert_eq!(d.reduced_bytes, (100 << 20) / 2);
    }

    #[test]
    fn tight_memory_escalates_factor() {
        // Fig. 5, step ≥ 31: the minimum factor no longer fits.
        let s: u64 = 100 << 20;
        // memory fits s + s/4 (x=4) but not s + s/2 (x=2)
        let mem = s + s / 3;
        let d = select_factor(s, &[2, 4], mem);
        assert_eq!(d.factor, 4);
        assert!(!d.memory_exceeded);
    }

    #[test]
    fn escalation_is_gradual_across_the_hint_set() {
        // As availability shrinks, the factor steps 2 → 4 → 8 → 16 (the
        // Fig. 5 second-half schedule), each boundary distinct.
        let s: u64 = 1 << 30;
        let factors = [2, 4, 8, 16];
        let chosen: Vec<u32> = [s + s / 2, s + s / 4, s + s / 8, s + s / 16]
            .iter()
            .map(|&mem| select_factor(s, &factors, mem).factor)
            .collect();
        assert_eq!(chosen, vec![2, 4, 8, 16]);
    }

    #[test]
    fn exhausted_memory_flags_and_degrades() {
        let s: u64 = 100 << 20;
        let d = select_factor(s, &[2, 4, 8, 16], s / 2);
        assert_eq!(d.factor, 16);
        assert!(d.memory_exceeded);
    }

    #[test]
    fn interval_one_when_analysis_is_cheap() {
        // analysis at 5% of sim time, 10% budget → every step.
        assert_eq!(select_interval(0.5, 10.0, 0.1, 8), 1);
    }

    #[test]
    fn interval_grows_with_analysis_cost() {
        // analysis = 30% of sim, budget 10% → every 3rd step.
        assert_eq!(select_interval(3.0, 10.0, 0.1, 8), 3);
        // analysis = sim, budget 10% → every 10th, capped at 8.
        assert_eq!(select_interval(10.0, 10.0, 0.1, 8), 8);
    }

    #[test]
    fn interval_caps_and_degenerate_inputs() {
        assert_eq!(select_interval(100.0, 1.0, 0.1, 4), 4);
        assert_eq!(select_interval(1.0, 0.0, 0.1, 4), 4);
        assert_eq!(select_interval(0.0, 1.0, 0.1, 4), 1);
        // max_interval 0 is treated as 1 (always analyze)
        assert_eq!(select_interval(100.0, 1.0, 0.1, 0), 1);
    }

    #[test]
    fn surface_reduction_is_two_thirds_power() {
        // x=8 → linear factor 2 → surface keeps 1/4.
        assert_eq!(reduced_surface(1000, 8), 250);
        assert_eq!(reduced_surface(1000, 1), 1000);
    }

    #[test]
    fn unsorted_input_factors() {
        let d = select_factor(1 << 20, &[16, 2, 8, 4], u64::MAX);
        assert_eq!(d.factor, 2);
    }

    #[test]
    fn factor_one_means_no_reduction() {
        let d = select_factor(1000, &[1, 2], u64::MAX);
        assert_eq!(d.factor, 1);
        assert_eq!(d.reduced_bytes, 1000);
    }

    #[test]
    fn boundary_exact_fit() {
        let s = 64u64;
        // x=2: needs 64 + 32 = 96.
        let d = select_factor(s, &[2], 96);
        assert_eq!(d.factor, 2);
        assert!(!d.memory_exceeded);
        let d2 = select_factor(s, &[2], 95);
        assert!(d2.memory_exceeded);
    }
}
