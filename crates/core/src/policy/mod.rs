//! Adaptation policies for the three layers and their cross-layer
//! combination (paper §4).

pub mod app;
pub mod cross;
pub mod middleware;
pub mod pressure;
pub mod resource;
