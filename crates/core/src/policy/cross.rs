//! Combined cross-layer adaptation (paper §4.4): the heuristic root–leaf
//! policy that selects, orders and coordinates the three mechanisms.
//!
//! 1. *Look up roots*: mechanisms whose objective matches the user's.
//! 2. *Look up leaves*: mechanisms whose outputs feed a root's inputs
//!    (`S_data` from the application layer, `M` from the resource layer
//!    both feed the middleware formulation).
//! 3. *Execute* leaves before roots, leaves in data-dependency order
//!    (application before resource, since `S_data` feeds Eq. 9–10).

use crate::prefs::Objective;
use serde::{Deserialize, Serialize};

/// The three adaptation mechanisms (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mechanism {
    /// Application layer: spatial/temporal resolution of the data (§4.1).
    AppLayer,
    /// Middleware layer: in-situ/in-transit placement (§4.2).
    Middleware,
    /// Resource layer: number of in-transit cores (§4.3).
    ResourceLayer,
    /// Staging-pressure layer: spill / downsample / reject when the step
    /// output exceeds free staging memory (the tiered-staging extension;
    /// see [`crate::policy::pressure`]).
    PressureLayer,
}

/// An execution plan: which mechanisms run, in what order, and which are
/// roots vs leaves.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossLayerPlan {
    /// Mechanisms sharing the user objective.
    pub roots: Vec<Mechanism>,
    /// Mechanisms feeding the roots' inputs.
    pub leaves: Vec<Mechanism>,
    /// Full execution order (leaves first, dependency-sorted).
    pub order: Vec<Mechanism>,
}

/// Build the root–leaf plan for `objective` (§4.4).
pub fn plan(objective: Objective) -> CrossLayerPlan {
    match objective {
        // §4.4's worked example: middleware shares the min-time objective;
        // S_data (application layer) and M (resource layer) are its inputs.
        // Application runs first because S_data also feeds the resource
        // mechanism.
        // The pressure layer is a further leaf: it consumes the reduced
        // S_data (so it runs after the application layer) and its
        // downsample verdict shrinks the inputs the resource and
        // middleware formulations see.
        Objective::MinimizeTimeToSolution => CrossLayerPlan {
            roots: vec![Mechanism::Middleware],
            leaves: vec![
                Mechanism::AppLayer,
                Mechanism::PressureLayer,
                Mechanism::ResourceLayer,
            ],
            order: vec![
                Mechanism::AppLayer,
                Mechanism::PressureLayer,
                Mechanism::ResourceLayer,
                Mechanism::Middleware,
            ],
        },
        // §4.4's second example: resource layer is the root, application
        // layer the leaf; middleware has no data dependency with the root
        // and is excluded.
        Objective::MaximizeStagingUtilization => CrossLayerPlan {
            roots: vec![Mechanism::ResourceLayer],
            leaves: vec![Mechanism::AppLayer],
            order: vec![Mechanism::AppLayer, Mechanism::ResourceLayer],
        },
        // Data movement is minimized by reducing at the source; the
        // middleware mechanism also moves data so it is consulted after.
        Objective::MinimizeDataMovement => CrossLayerPlan {
            roots: vec![Mechanism::AppLayer],
            leaves: vec![],
            order: vec![Mechanism::AppLayer, Mechanism::Middleware],
        },
        // Highest resolution pins the application layer to factor 1 and
        // leaves placement/resources adaptive.
        Objective::HighestResolution => CrossLayerPlan {
            roots: vec![Mechanism::Middleware],
            leaves: vec![Mechanism::ResourceLayer],
            order: vec![Mechanism::ResourceLayer, Mechanism::Middleware],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_time_plan_matches_paper_example() {
        let p = plan(Objective::MinimizeTimeToSolution);
        assert_eq!(p.roots, vec![Mechanism::Middleware]);
        assert!(p.leaves.contains(&Mechanism::AppLayer));
        assert!(p.leaves.contains(&Mechanism::ResourceLayer));
        // app before resource before middleware
        let pos = |m| p.order.iter().position(|&x| x == m).unwrap();
        assert!(pos(Mechanism::AppLayer) < pos(Mechanism::ResourceLayer));
        assert!(pos(Mechanism::ResourceLayer) < pos(Mechanism::Middleware));
    }

    #[test]
    fn utilization_plan_excludes_middleware() {
        let p = plan(Objective::MaximizeStagingUtilization);
        assert_eq!(p.roots, vec![Mechanism::ResourceLayer]);
        assert_eq!(p.leaves, vec![Mechanism::AppLayer]);
        assert!(!p.order.contains(&Mechanism::Middleware));
    }

    #[test]
    fn leaves_always_precede_roots() {
        for obj in [
            Objective::MinimizeTimeToSolution,
            Objective::MaximizeStagingUtilization,
            Objective::MinimizeDataMovement,
            Objective::HighestResolution,
        ] {
            let p = plan(obj);
            let pos = |m: Mechanism| p.order.iter().position(|&x| x == m);
            for leaf in &p.leaves {
                for root in &p.roots {
                    let (l, r) = (pos(*leaf), pos(*root));
                    if let (Some(l), Some(r)) = (l, r) {
                        assert!(l < r, "{leaf:?} must precede {root:?} for {obj:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_ordered_mechanism_is_root_or_leaf_or_auxiliary() {
        for obj in [
            Objective::MinimizeTimeToSolution,
            Objective::MaximizeStagingUtilization,
        ] {
            let p = plan(obj);
            for m in &p.order {
                assert!(
                    p.roots.contains(m) || p.leaves.contains(m),
                    "{m:?} in order but neither root nor leaf for {obj:?}"
                );
            }
        }
    }
}
