//! Staging-pressure policy: what to do when a step's (possibly already
//! reduced) output exceeds the free staging memory.
//!
//! The staging tier offers three relief mechanisms — *spill* cold
//! versions to the staging node's disk log, ask the producer to
//! *downsample* before sending, or *reject* the put — and the engine
//! selects among them the same way the paper's root–leaf policy selects
//! among layers (§4.4): by pricing each option against the objective.
//! Spilling costs a disk round trip (demote now, promote on first
//! access, priced by [`DiskModel::spill_roundtrip`]); downsampling costs
//! resolution but no time; rejecting costs the data.
//!
//! The verdict maps one-to-one onto the staging layer's `SpillAction`:
//! the workflow driver forwards it with `DataSpace::set_pressure_action`
//! so the servers' hint-driven default gives way to the engine's
//! cross-layer choice.

use super::app;
use serde::{Deserialize, Serialize};
use xlayer_platform::{DiskModel, SimTime};

/// The relief mechanism chosen for staging memory pressure. Mirrors the
/// staging layer's `SpillAction` (the crates are kept decoupled: policy
/// here, mechanism there).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PressureAction {
    /// Demote cold versions to the staging node's disk log.
    Spill,
    /// Ask the producer to re-send reduced by `factor` (volumetric).
    Downsample {
        /// Volumetric reduction divisor, from the user-hinted set.
        factor: u32,
    },
    /// Refuse the overflow: the put fails with the typed policy signal.
    Reject,
}

/// The pressure policy's verdict for one sampling point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PressureDecision {
    /// The selected relief mechanism.
    pub action: PressureAction,
    /// Bytes that do not fit in staging memory this step.
    pub overflow_bytes: u64,
    /// Estimated time to demote the overflow to disk.
    pub spill_time: SimTime,
    /// Estimated time to promote it back on first access.
    pub promote_time: SimTime,
}

/// Decide the relief mechanism for one step's staging pressure.
///
/// Returns `None` when `incoming_bytes` fits in `mem_available` (no
/// pressure — the tier stays on its hint-driven default). Otherwise:
///
/// 1. **Spill** if the overflow fits the disk budget *and* the disk
///    round trip stays within `budget_frac` of the step's simulation
///    time — data survives at full resolution and the workflow does not
///    stall on I/O.
/// 2. **Downsample** by the smallest user-acceptable factor that makes
///    the payload fit in memory when the round trip would be too slow.
/// 3. **Spill anyway** when no acceptable factor fits but the disk has
///    room: a slow disk beats dropped data.
/// 4. **Reject** only when memory, acceptable factors, and disk are all
///    exhausted.
pub fn decide(
    disk: &DiskModel,
    incoming_bytes: u64,
    mem_available: u64,
    disk_available: u64,
    factors: &[u32],
    t_sim: SimTime,
    budget_frac: f64,
) -> Option<PressureDecision> {
    let overflow = incoming_bytes.saturating_sub(mem_available);
    if overflow == 0 {
        return None;
    }
    let spill_time = disk.spill_time(overflow);
    let promote_time = disk.promote_time(overflow);
    let decided = |action| {
        Some(PressureDecision {
            action,
            overflow_bytes: overflow,
            spill_time,
            promote_time,
        })
    };
    let disk_fits = disk_available >= overflow;
    // With no observed step time yet there is nothing to amortize
    // against: treat the spill as affordable (first-step optimism; the
    // Monitor's next sample corrects it).
    let affordable = t_sim <= 0.0 || spill_time + promote_time <= budget_frac.max(0.0) * t_sim;
    if disk_fits && affordable {
        return decided(PressureAction::Spill);
    }
    let mut sorted: Vec<u32> = factors.to_vec();
    sorted.sort_unstable();
    for &x in &sorted {
        if x > 1 && app::reduced_bytes(incoming_bytes, x) <= mem_available {
            return decided(PressureAction::Downsample { factor: x });
        }
    }
    if disk_fits {
        return decided(PressureAction::Spill);
    }
    decided(PressureAction::Reject)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel {
            write_bandwidth: 1e9,
            read_bandwidth: 1e9,
            op_latency: 0.0,
        }
    }

    #[test]
    fn no_overflow_is_no_decision() {
        assert_eq!(
            decide(&disk(), 100, 100, u64::MAX, &[2, 4], 10.0, 0.1),
            None
        );
    }

    #[test]
    fn cheap_spill_wins_over_downsampling() {
        // 1 GiB overflow, 1 GB/s both ways → ~2.1 s round trip, within
        // 10% of a 100 s step.
        let d = decide(&disk(), 2 << 30, 1 << 30, u64::MAX, &[2, 4], 100.0, 0.1)
            .expect("overflow must decide");
        assert_eq!(d.action, PressureAction::Spill);
        assert_eq!(d.overflow_bytes, 1 << 30);
        assert!(d.spill_time > 0.0 && d.promote_time > 0.0);
    }

    #[test]
    fn slow_spill_downsamples_at_smallest_fitting_factor() {
        // Same overflow against a 1 s step: the round trip blows the
        // budget, and factor 2 already fits memory.
        let d = decide(&disk(), 2 << 30, 1 << 30, u64::MAX, &[4, 2], 1.0, 0.1)
            .expect("overflow must decide");
        assert_eq!(d.action, PressureAction::Downsample { factor: 2 });
    }

    #[test]
    fn unaffordable_spill_with_no_fitting_factor_still_spills() {
        // Even factor 4 leaves 2 GiB against a 1 GiB cap; disk has room.
        let d = decide(&disk(), 8 << 30, 1 << 30, u64::MAX, &[2, 4], 1.0, 0.1)
            .expect("overflow must decide");
        assert_eq!(d.action, PressureAction::Spill);
    }

    #[test]
    fn everything_exhausted_is_reject() {
        let d =
            decide(&disk(), 8 << 30, 1 << 30, 0, &[2, 4], 1.0, 0.1).expect("overflow must decide");
        assert_eq!(d.action, PressureAction::Reject);
    }

    #[test]
    fn full_disk_falls_back_to_downsampling() {
        let d = decide(&disk(), 2 << 30, 1 << 30, 0, &[2, 4], 100.0, 0.1)
            .expect("overflow must decide");
        assert_eq!(d.action, PressureAction::Downsample { factor: 2 });
    }

    #[test]
    fn identity_factor_never_selected() {
        // factors = [1] cannot relieve pressure; with a full disk the
        // verdict must be Reject, not Downsample{1}.
        let d =
            decide(&disk(), 2 << 30, 1 << 30, 0, &[1], 100.0, 0.1).expect("overflow must decide");
        assert_eq!(d.action, PressureAction::Reject);
    }
}
