//! Middleware-layer adaptation policy (paper §4.2, Eqs. 4–8): place each
//! step's analysis in-situ or in-transit to minimize time-to-solution.
//!
//! The three trigger cases of §4.2:
//! 1. memory available at only one location → place there;
//! 2. memory at both and in-transit cores idle → in-transit (it overlaps
//!    the next simulation step);
//! 3. in-transit cores busy → compare the estimated completion if queued
//!    in-transit (`T_remaining + T_intransit`) against in-situ
//!    (`T_insitu`), and take the faster (Eq. 7).

use crate::estimate::Estimator;
use crate::state::OperationalState;
use serde::{Deserialize, Serialize};
use xlayer_platform::SimTime;

/// Where the analysis runs (`D_i` of Table 1: 1 = in-situ, 0 = in-transit;
/// §3 also names the third option, "hybrid (in-situ + in-transit)").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// On the simulation cores, blocking the simulation.
    InSitu,
    /// On the staging cores, overlapping the simulation.
    InTransit,
    /// Split: a fraction runs in-situ while the rest is shipped in-transit.
    Hybrid,
}

/// The work split of a hybrid placement: the fraction analyzed in-situ
/// (per-mille, so the decision stays `Copy + Eq`).
pub type InSituPermille = u16;

/// Pipeline keep-up split: the in-situ fraction `f` such that the
/// in-transit share finishes within one production period —
/// `remaining + t_xfer + (1 − f) · t_intransit = t_sim_next`, i.e.
/// `f = 1 − (t_sim_next − remaining − t_xfer) / t_intransit`.
///
/// `f ≤ 0` means staging keeps up unaided (pure in-transit); `f ≥ 1` means
/// staging is hopeless this step (pure in-situ, Eq. 7's regime); interior
/// `f` is the §3 hybrid: ship what staging can absorb, analyze the
/// overflow in-situ.
pub fn hybrid_split(
    t_sim_next: SimTime,
    t_intransit: SimTime,
    remaining: SimTime,
    t_xfer: SimTime,
) -> f64 {
    if t_intransit <= 0.0 {
        return 0.0;
    }
    (1.0 - (t_sim_next - remaining - t_xfer) / t_intransit).clamp(0.0, 1.0)
}

/// Why the policy picked its placement (for logs and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementReason {
    /// Only one side had the memory (case 1).
    MemoryOnlyInSitu,
    /// Only one side had the memory (case 1).
    MemoryOnlyInTransit,
    /// Staging idle, memory at both (case 2).
    StagingIdle,
    /// Staging busy; estimated in-situ finish was earlier (case 3).
    EstimatedFasterInSitu,
    /// Staging busy; estimated in-transit finish was earlier (case 3).
    EstimatedFasterInTransit,
    /// Neither side had memory: forced in-situ at degraded resolution
    /// (the application layer must reduce further).
    MemoryExhaustedBoth,
}

/// The placement decision with its estimates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// Chosen placement.
    pub placement: Placement,
    /// Why.
    pub reason: PlacementReason,
    /// Estimated in-situ analysis time (`T_insitu(N, S_i)`).
    pub t_insitu: SimTime,
    /// Estimated completion of in-transit analysis, counted from now:
    /// remaining queue + transfer + analysis.
    pub t_intransit_completion: SimTime,
    /// For [`Placement::Hybrid`]: the in-situ share of the work, in
    /// per-mille (0 for the pure placements).
    pub insitu_permille: InSituPermille,
}

/// Decide the placement of this step's analysis.
///
/// `analysis_bytes`/`analysis_cells` describe the (possibly already
/// reduced) data the analysis will consume.
pub fn decide_placement(
    est: &Estimator,
    state: &OperationalState,
    analysis_bytes: u64,
    analysis_cells: u64,
    analysis_surface: u64,
) -> PlacementDecision {
    decide_placement_opts(
        est,
        state,
        analysis_bytes,
        analysis_cells,
        analysis_surface,
        false,
    )
}

/// [`decide_placement`] with the hybrid placement enabled: when the staging
/// queue is busy but will drain mid-analysis, splitting the work
/// (`hybrid_split`) beats both pure choices.
pub fn decide_placement_opts(
    est: &Estimator,
    state: &OperationalState,
    analysis_bytes: u64,
    analysis_cells: u64,
    analysis_surface: u64,
    allow_hybrid: bool,
) -> PlacementDecision {
    let t_insitu = est.t_insitu(analysis_cells, analysis_surface, state.sim_cores);
    let t_xfer = est.t_send(analysis_bytes, state.sim_cores)
        + est.t_recv(analysis_bytes, state.staging_cores);
    let t_intransit = state.intransit_remaining()
        + t_xfer
        + est.t_intransit(analysis_cells, analysis_surface, state.staging_cores);

    let mem_in_situ_ok =
        est.mem_insitu(analysis_bytes, state.sim_cores, 1.0) <= state.mem_available_insitu;
    let mem_in_transit_ok = est.mem_intransit(analysis_bytes) <= state.mem_available_intransit;

    let mut insitu_permille: InSituPermille = 0;
    let (placement, reason) = match (mem_in_situ_ok, mem_in_transit_ok) {
        (false, false) => (Placement::InSitu, PlacementReason::MemoryExhaustedBoth),
        (true, false) => (Placement::InSitu, PlacementReason::MemoryOnlyInSitu),
        (false, true) => (Placement::InTransit, PlacementReason::MemoryOnlyInTransit),
        (true, true) => {
            let t_it_work = est.t_intransit(analysis_cells, analysis_surface, state.staging_cores);
            let f_keepup = hybrid_split(
                state.last_sim_time,
                t_it_work,
                state.intransit_remaining(),
                t_xfer,
            );
            if allow_hybrid && (0.05..=0.95).contains(&f_keepup) {
                // §3's hybrid: staging can absorb only part of this step
                // within one production period — analyze the overflow
                // in-situ so the pipeline stays balanced.
                insitu_permille = (f_keepup * 1000.0) as InSituPermille;
                (Placement::Hybrid, PlacementReason::EstimatedFasterInTransit)
            } else if state.intransit_idle() {
                // Case 2: staging idle → overlap analysis with simulation.
                (Placement::InTransit, PlacementReason::StagingIdle)
            } else if t_insitu < state.intransit_remaining() {
                // Case 3, Eq. 7: the staging queue won't drain before an
                // in-situ run would already be done → run in-situ directly.
                (Placement::InSitu, PlacementReason::EstimatedFasterInSitu)
            } else {
                // Queue drains soon: send asynchronously, processed as soon
                // as the in-transit cores free up.
                (
                    Placement::InTransit,
                    PlacementReason::EstimatedFasterInTransit,
                )
            }
        }
    };
    PlacementDecision {
        placement,
        reason,
        t_insitu,
        t_intransit_completion: t_intransit,
        insitu_permille,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_platform::{CostModel, MachineSpec};

    fn est() -> Estimator {
        Estimator::new(CostModel::new(MachineSpec::titan()))
    }

    fn state() -> OperationalState {
        OperationalState {
            step: 10,
            now: 100.0,
            data_bytes: 1 << 30,
            cells: (1 << 30) / 8,
            surface_cells: (1 << 30) / 80,
            sim_cores: 4096,
            staging_cores: 256,
            staging_cores_max: 512,
            mem_available_insitu: u64::MAX,
            mem_available_intransit: u64::MAX,
            intransit_busy_until: 0.0, // idle
            ..Default::default()
        }
    }

    #[test]
    fn idle_staging_goes_intransit() {
        // Paper Fig. 4, ts=1,2: idle staging → in-transit.
        let s = state();
        let d = decide_placement(&est(), &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(d.placement, Placement::InTransit);
        assert_eq!(d.reason, PlacementReason::StagingIdle);
    }

    #[test]
    fn busy_staging_with_long_queue_goes_insitu() {
        // Paper Fig. 4, ts=30: staging busy for a long time → in-situ is
        // estimated faster.
        let mut s = state();
        s.intransit_busy_until = s.now + 1e6;
        let d = decide_placement(&est(), &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(d.placement, Placement::InSitu);
        assert_eq!(d.reason, PlacementReason::EstimatedFasterInSitu);
        assert!(d.t_insitu < d.t_intransit_completion);
    }

    #[test]
    fn briefly_busy_staging_goes_intransit() {
        // Eq. 7: the queue drains long before an in-situ run would finish,
        // so the data is sent asynchronously and processed when cores free.
        let mut s = state();
        s.intransit_busy_until = s.now + 1e-9;
        let d = decide_placement(&est(), &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(d.placement, Placement::InTransit);
        assert_eq!(d.reason, PlacementReason::EstimatedFasterInTransit);
        assert!(d.t_intransit_completion > 0.0 && d.t_insitu > 0.0);
    }

    #[test]
    fn hybrid_split_formula() {
        // staging absorbs everything within the period → 0 (pure in-transit)
        assert_eq!(hybrid_split(10.0, 5.0, 0.0, 0.0), 0.0);
        // staging can absorb half: t_sim 10, t_it 10, queue 5 → f = 0.5
        assert!((hybrid_split(10.0, 10.0, 5.0, 0.0) - 0.5).abs() < 1e-12);
        // hopeless queue → 1 (pure in-situ regime)
        assert_eq!(hybrid_split(1.0, 1.0, 100.0, 0.0), 1.0);
        // degenerate
        assert_eq!(hybrid_split(0.0, 0.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn hybrid_chosen_when_staging_cannot_keep_up() {
        // In-transit analysis takes longer than the production period:
        // with hybrid enabled the overflow fraction runs in-situ.
        let mut s = state();
        let e = est();
        let t_it = e.t_intransit(s.cells, s.surface_cells, s.staging_cores);
        s.last_sim_time = 0.6 * t_it; // staging absorbs only ~60%
        s.intransit_busy_until = 0.0; // idle queue
        let pure = decide_placement(&e, &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(pure.placement, Placement::InTransit);
        let hybrid = decide_placement_opts(&e, &s, s.data_bytes, s.cells, s.surface_cells, true);
        assert_eq!(hybrid.placement, Placement::Hybrid);
        // f = 1 - 0.6 = 0.4 minus the small transfer term
        assert!(
            (300..=450).contains(&hybrid.insitu_permille),
            "split {}",
            hybrid.insitu_permille
        );
    }

    #[test]
    fn memory_gates_placement_insitu_only() {
        let mut s = state();
        s.mem_available_intransit = 0;
        let d = decide_placement(&est(), &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(d.placement, Placement::InSitu);
        assert_eq!(d.reason, PlacementReason::MemoryOnlyInSitu);
    }

    #[test]
    fn memory_gates_placement_intransit_only() {
        let mut s = state();
        s.mem_available_insitu = 0;
        let d = decide_placement(&est(), &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(d.placement, Placement::InTransit);
        assert_eq!(d.reason, PlacementReason::MemoryOnlyInTransit);
    }

    #[test]
    fn both_exhausted_flags() {
        let mut s = state();
        s.mem_available_insitu = 0;
        s.mem_available_intransit = 0;
        let d = decide_placement(&est(), &s, s.data_bytes, s.cells, s.surface_cells);
        assert_eq!(d.reason, PlacementReason::MemoryExhaustedBoth);
    }

    #[test]
    fn reduced_data_shrinks_both_estimates() {
        let s = state();
        let e = est();
        let full = decide_placement(&e, &s, s.data_bytes, s.cells, s.surface_cells);
        let reduced = decide_placement(
            &e,
            &s,
            s.data_bytes / 64,
            s.cells / 64,
            s.surface_cells / 16,
        );
        assert!(reduced.t_insitu < full.t_insitu);
        assert!(reduced.t_intransit_completion < full.t_intransit_completion);
    }
}
