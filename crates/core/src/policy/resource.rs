//! Resource-layer adaptation policy (paper §4.3, Eqs. 9–10): choose the
//! minimal number of in-transit cores `M`.
//!
//! "Minimize M subject to
//!    `T_(i+1)_sim(N) + T_(i+1)_sd = T_intransit(M, S_data) + T_recv`
//!  (pipeline balance, Eq. 9) and `Mem_intransit ≥ S_data` (Eq. 10)."
//!
//! The minimal `M` first satisfies the memory bound, then grows until the
//! in-transit side keeps up with the simulation's production rate.

use crate::estimate::Estimator;
use serde::{Deserialize, Serialize};
use xlayer_platform::SimTime;

/// The outcome of the resource-layer policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceDecision {
    /// Chosen number of in-transit cores.
    pub staging_cores: usize,
    /// The memory lower bound on `M` (Eq. 10).
    pub memory_floor: usize,
    /// True if even `max_cores` cannot keep the pipeline balanced
    /// (analysis will lag the simulation).
    pub saturated: bool,
}

/// Select `M` per Eqs. 9–10.
///
/// * `analysis_bytes` / `analysis_cells` — the data the staging area must
///   cache and analyze per step (post-reduction).
/// * `t_sim_next` — the simulation's per-step time (`T_(i+1)_sim(N)`),
///   i.e. the production period the analysis must match.
/// * `sim_cores` — `N`, for the send-latency term.
/// * `max_cores` — the allocation's upper bound on `M`.
#[allow(clippy::too_many_arguments)]
pub fn select_staging_cores(
    est: &Estimator,
    analysis_bytes: u64,
    analysis_cells: u64,
    analysis_surface: u64,
    t_sim_next: SimTime,
    sim_cores: usize,
    max_cores: usize,
) -> ResourceDecision {
    assert!(max_cores >= 1);
    // Eq. 10: enough staging memory to cache the step's data.
    let memory_floor = est.min_cores_for_memory(analysis_bytes).min(max_cores);

    // Eq. 9: grow M until the in-transit side's period (analysis + receive)
    // is no longer than the simulation side's period (step + send).
    let budget = t_sim_next + est.t_send(analysis_bytes, sim_cores);
    let mut m = memory_floor.max(1);
    let mut saturated = false;
    loop {
        let period =
            est.t_intransit(analysis_cells, analysis_surface, m) + est.t_recv(analysis_bytes, m);
        if period <= budget {
            break;
        }
        if m >= max_cores {
            saturated = true;
            break;
        }
        // Grow geometrically then refine: policies must be cheap at runtime
        // (paper §4: "efficiently and scalably implemented").
        m = (m * 2).min(max_cores);
    }
    // Tighten: shrink back while the balance still holds (undoes the
    // geometric overshoot; keeps the memory floor).
    while m > memory_floor.max(1) {
        let m_try = m - 1;
        let period = est.t_intransit(analysis_cells, analysis_surface, m_try)
            + est.t_recv(analysis_bytes, m_try);
        if period <= budget {
            m = m_try;
        } else {
            break;
        }
    }
    ResourceDecision {
        staging_cores: m,
        memory_floor,
        saturated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlayer_platform::{CostModel, MachineSpec};

    fn est() -> Estimator {
        Estimator::new(CostModel::new(MachineSpec::titan()))
    }

    #[test]
    fn memory_floor_respected() {
        let e = est();
        // 100 GB of data: needs many cores just to cache it.
        let bytes = 100u64 << 30;
        let d = select_staging_cores(&e, bytes, bytes / 8, bytes / 80, 1e9, 4096, 1024);
        assert!(d.staging_cores >= d.memory_floor);
        assert!(e.staging_capacity(d.staging_cores) >= bytes);
    }

    #[test]
    fn small_data_needs_few_cores() {
        // Fig. 9, early steps: small data → ~tens of cores.
        let e = est();
        let bytes = 1u64 << 28; // 256 MB
        let cells = bytes / 8;
        // generous sim step (slow simulation): analysis easily keeps up.
        let d = select_staging_cores(&e, bytes, cells, cells / 10, 100.0, 4096, 1024);
        assert!(!d.saturated);
        assert!(
            d.staging_cores < 64,
            "expected few cores, got {}",
            d.staging_cores
        );
    }

    #[test]
    fn faster_simulation_demands_more_cores() {
        let e = est();
        let bytes = 8u64 << 30;
        let cells = bytes / 8;
        let slow = select_staging_cores(&e, bytes, cells, cells / 10, 100.0, 4096, 2048);
        let fast = select_staging_cores(&e, bytes, cells, cells / 10, 1.0, 4096, 2048);
        assert!(fast.staging_cores >= slow.staging_cores);
    }

    #[test]
    fn bigger_data_demands_more_cores() {
        // Fig. 9: refinement grows the data → more staging cores.
        let e = est();
        let small =
            select_staging_cores(&e, 1 << 28, (1 << 28) / 8, (1 << 28) / 80, 5.0, 4096, 1024);
        let large = select_staging_cores(
            &e,
            16 << 28,
            (16u64 << 28) / 8,
            (16u64 << 28) / 80,
            5.0,
            4096,
            1024,
        );
        assert!(large.staging_cores > small.staging_cores);
    }

    #[test]
    fn saturation_flagged_at_cap() {
        let e = est();
        // Impossible budget: huge data, immediate deadline, tiny cap.
        let d = select_staging_cores(
            &e,
            1 << 40,
            (1u64 << 40) / 8,
            (1u64 << 40) / 80,
            1e-6,
            4096,
            4,
        );
        assert!(d.saturated);
        assert_eq!(d.staging_cores, 4);
    }

    #[test]
    fn result_is_minimal() {
        // One fewer core must violate balance (or the memory floor).
        let e = est();
        let bytes = 4u64 << 30;
        let cells = bytes / 8;
        let t_sim = 2.0;
        let d = select_staging_cores(&e, bytes, cells, cells / 10, t_sim, 4096, 2048);
        if d.staging_cores > d.memory_floor.max(1) && !d.saturated {
            let m = d.staging_cores - 1;
            let budget = t_sim + e.t_send(bytes, 4096);
            let period = e.t_intransit(cells, cells / 10, m) + e.t_recv(bytes, m);
            assert!(period > budget, "M={} was not minimal", d.staging_cores);
        }
    }
}
