//! User inputs to the adaptation runtime (paper §3): *preferences* define
//! the objective; *hints* carry application knowledge (acceptable
//! down-sampling factors, entropy thresholds, adaptation phases).

use serde::{Deserialize, Serialize};

/// The user-defined objective driving policy selection (§3, §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize end-to-end time-to-solution (the Figs. 7/10 objective).
    MinimizeTimeToSolution,
    /// Minimize simulation→staging data movement.
    MinimizeDataMovement,
    /// Maximize in-transit resource utilization (§4.4's second example).
    MaximizeStagingUtilization,
    /// Always analyze at the highest resolution memory permits.
    HighestResolution,
}

/// User preferences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserPreferences {
    /// The optimization objective.
    pub objective: Objective,
}

impl Default for UserPreferences {
    fn default() -> Self {
        UserPreferences {
            objective: Objective::MinimizeTimeToSolution,
        }
    }
}

/// One phase of the acceptable-factor schedule: from `from_step` onward,
/// `factors` are permitted. §5.2.1 uses {2,4} for the first half of the run
/// and {2,4,8,16} for the second half.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactorPhase {
    /// First step this phase applies to.
    pub from_step: u64,
    /// Acceptable down-sampling factors in this phase (1 = no reduction).
    pub factors: Vec<u32>,
}

/// User hints: application knowledge the engine cannot derive itself.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UserHints {
    /// Acceptable down-sampling factors, by phase (sorted by `from_step`).
    pub factor_schedule: Vec<FactorPhase>,
    /// Entropy thresholds `(min_entropy_bits, factor)` for the
    /// entropy-based reduction variant; `None` selects the range-based
    /// variant.
    pub entropy_thresholds: Option<Vec<(f64, u32)>>,
    /// Sampling period in steps: the Monitor reports every `monitor_interval`
    /// steps (§3: "periodically, e.g. after every specified number of
    /// simulation time steps").
    pub monitor_interval: u64,
    /// Largest tolerable analysis interval for the temporal-resolution
    /// mechanism: 1 = analyze every step (disables the mechanism);
    /// k allows analyzing as rarely as every k-th step under load.
    pub max_analysis_interval: u64,
    /// Budget for amortized analysis cost as a fraction of simulation time,
    /// used by the temporal-resolution policy.
    pub analysis_budget_frac: f64,
    /// Region of interest, as the fraction of the domain the user cares to
    /// analyze (1.0 = everything): "limit the analytics to 'interesting'
    /// regions" (§2). Analysis cost and output scale by this fraction.
    pub roi_fraction: f64,
}

impl Default for UserHints {
    fn default() -> Self {
        UserHints {
            factor_schedule: vec![FactorPhase {
                from_step: 0,
                factors: vec![1, 2, 4],
            }],
            entropy_thresholds: None,
            monitor_interval: 1,
            max_analysis_interval: 1,
            analysis_budget_frac: 0.1,
            roi_fraction: 1.0,
        }
    }
}

impl UserHints {
    /// The §5.2.1 schedule: factors {2,4} for steps below `half`, then
    /// {2,4,8,16}.
    pub fn paper_fig5_schedule(half: u64) -> Self {
        UserHints {
            factor_schedule: vec![
                FactorPhase {
                    from_step: 0,
                    factors: vec![2, 4],
                },
                FactorPhase {
                    from_step: half,
                    factors: vec![2, 4, 8, 16],
                },
            ],
            entropy_thresholds: None,
            monitor_interval: 1,
            max_analysis_interval: 1,
            analysis_budget_frac: 0.1,
            roi_fraction: 1.0,
        }
    }

    /// Acceptable factors at `step` (the active phase's set, ascending).
    pub fn factors_at(&self, step: u64) -> Vec<u32> {
        let mut active: Option<&FactorPhase> = None;
        for p in &self.factor_schedule {
            if p.from_step <= step {
                match active {
                    Some(a) if a.from_step >= p.from_step => {}
                    _ => active = Some(p),
                }
            }
        }
        let mut f = active.map(|p| p.factors.clone()).unwrap_or(vec![1]);
        f.sort_unstable();
        f.dedup();
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hints_allow_identity() {
        let h = UserHints::default();
        assert_eq!(h.factors_at(0), vec![1, 2, 4]);
        assert_eq!(h.factors_at(1000), vec![1, 2, 4]);
    }

    #[test]
    fn fig5_schedule_switches_at_half() {
        let h = UserHints::paper_fig5_schedule(20);
        assert_eq!(h.factors_at(0), vec![2, 4]);
        assert_eq!(h.factors_at(19), vec![2, 4]);
        assert_eq!(h.factors_at(20), vec![2, 4, 8, 16]);
        assert_eq!(h.factors_at(40), vec![2, 4, 8, 16]);
    }

    #[test]
    fn factors_sorted_and_deduped() {
        let h = UserHints {
            factor_schedule: vec![FactorPhase {
                from_step: 0,
                factors: vec![8, 2, 8, 4],
            }],
            ..Default::default()
        };
        assert_eq!(h.factors_at(5), vec![2, 4, 8]);
    }

    #[test]
    fn empty_schedule_falls_back_to_identity() {
        let h = UserHints {
            factor_schedule: vec![],
            ..Default::default()
        };
        assert_eq!(h.factors_at(3), vec![1]);
    }
}
