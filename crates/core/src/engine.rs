//! The Adaptation Engine (paper §3): selects and executes the adaptation
//! mechanisms according to the user's objective, the operational state and
//! the root–leaf cross-layer policy (§4.4).

use crate::estimate::Estimator;
use crate::policy::app::{self, AppDecision};
use crate::policy::cross::{self, Mechanism};
use crate::policy::middleware::{self, PlacementDecision};
use crate::policy::pressure::{self, PressureAction, PressureDecision};
use crate::policy::resource::{self, ResourceDecision};
use crate::prefs::{Objective, UserHints, UserPreferences};
use crate::state::OperationalState;
use serde::{Deserialize, Serialize};
use xlayer_platform::DiskModel;

/// Which mechanisms the engine may execute. The evaluation's "local"
/// configurations enable a single layer (§5.2.1–5.2.3); "global" enables
/// all three (§5.2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Application-layer data reduction (§4.1).
    pub enable_app: bool,
    /// Middleware-layer placement (§4.2).
    pub enable_middleware: bool,
    /// Resource-layer staging allocation (§4.3).
    pub enable_resource: bool,
    /// Allow the hybrid (split in-situ + in-transit) placement (§3).
    pub enable_hybrid: bool,
    /// Staging-pressure relief (spill / downsample / reject — the tiered
    /// staging extension). Defaults off so serialized pre-tier configs
    /// keep their meaning.
    #[serde(default)]
    pub enable_pressure: bool,
}

impl EngineConfig {
    /// All three mechanisms (the cross-layer / "global" configuration).
    pub fn global() -> Self {
        EngineConfig {
            enable_hybrid: false,
            enable_app: true,
            enable_middleware: true,
            enable_resource: true,
            enable_pressure: true,
        }
    }

    /// Only the application layer (§5.2.1).
    pub fn app_only() -> Self {
        EngineConfig {
            enable_hybrid: false,
            enable_app: true,
            enable_middleware: false,
            enable_resource: false,
            enable_pressure: false,
        }
    }

    /// Only the middleware layer (§5.2.2, the "local" baseline of §5.2.4).
    pub fn middleware_only() -> Self {
        EngineConfig {
            enable_hybrid: false,
            enable_app: false,
            enable_middleware: true,
            enable_resource: false,
            enable_pressure: false,
        }
    }

    /// Only the resource layer (§5.2.3).
    pub fn resource_only() -> Self {
        EngineConfig {
            enable_hybrid: false,
            enable_app: false,
            enable_middleware: false,
            enable_resource: true,
            enable_pressure: false,
        }
    }

    /// No adaptation at all (static baselines).
    pub fn none() -> Self {
        EngineConfig {
            enable_hybrid: false,
            enable_app: false,
            enable_middleware: false,
            enable_resource: false,
            enable_pressure: false,
        }
    }
}

/// The adaptations the engine decided this sampling point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Adaptations {
    /// Application-layer decision (down-sampling factor), if executed.
    pub app: Option<AppDecision>,
    /// Resource-layer decision (staging core count), if executed.
    pub resource: Option<ResourceDecision>,
    /// Middleware-layer decision (placement), if executed.
    pub placement: Option<PlacementDecision>,
    /// Staging-pressure decision (spill / downsample / reject), if the
    /// pressure layer ran and found an overflow.
    pub pressure: Option<PressureDecision>,
    /// The analysis input size after any reduction — what downstream
    /// mechanisms saw as `S_data`.
    pub analysis_bytes: u64,
    /// The analysis input cells after any reduction.
    pub analysis_cells: u64,
    /// Surface-crossing cells after any reduction (a factor-X volumetric
    /// reduction shrinks the surface quadratically).
    pub analysis_surface: u64,
    /// Temporal resolution: analyze every `analysis_interval`-th step
    /// (1 = every step). Only > 1 when the hints allow it and the amortized
    /// analysis cost would otherwise exceed the hinted budget.
    pub analysis_interval: u64,
}

impl Default for Adaptations {
    fn default() -> Self {
        Adaptations {
            app: None,
            resource: None,
            placement: None,
            pressure: None,
            analysis_bytes: 0,
            analysis_cells: 0,
            analysis_surface: 0,
            analysis_interval: 1,
        }
    }
}

/// The Adaptation Engine.
///
/// ```
/// use xlayer_core::{min_time_engine, EngineConfig, Estimator, OperationalState, UserHints};
/// use xlayer_platform::{CostModel, MachineSpec};
///
/// let engine = min_time_engine(
///     UserHints::paper_fig5_schedule(20),
///     EngineConfig::global(),
///     Estimator::new(CostModel::new(MachineSpec::titan())),
/// );
/// let state = OperationalState {
///     step: 5,
///     data_bytes: 8 << 30,
///     cells: (8u64 << 30) / 8,
///     surface_cells: (8u64 << 30) / 80,
///     last_sim_time: 10.0,
///     sim_cores: 4096,
///     staging_cores: 256,
///     staging_cores_max: 1024,
///     ..Default::default()
/// };
/// let a = engine.adapt(&state);
/// assert_eq!(a.app.unwrap().factor, 2);       // plenty of memory → max resolution
/// assert!(a.resource.unwrap().staging_cores >= 1);
/// assert!(a.placement.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct AdaptationEngine {
    /// User preferences (objective).
    pub prefs: UserPreferences,
    /// User hints (factor schedule, thresholds, monitor interval).
    pub hints: UserHints,
    /// Mechanism enable flags.
    pub config: EngineConfig,
    estimator: Estimator,
    /// Disk model pricing the pressure layer's spill/promote paths.
    disk: DiskModel,
}

impl AdaptationEngine {
    /// Build an engine.
    pub fn new(
        prefs: UserPreferences,
        hints: UserHints,
        config: EngineConfig,
        estimator: Estimator,
    ) -> Self {
        AdaptationEngine {
            prefs,
            hints,
            config,
            estimator,
            disk: DiskModel::titan(),
        }
    }

    /// Replace the disk model pricing the pressure layer's spill and
    /// promote paths (defaults to [`DiskModel::titan`]).
    pub fn with_disk_model(mut self, disk: DiskModel) -> Self {
        self.disk = disk;
        self
    }

    /// The disk model the pressure layer prices against.
    pub fn disk_model(&self) -> &DiskModel {
        &self.disk
    }

    /// The estimator (exposed for policy-level diagnostics).
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// Mutable estimator access for online calibration (the Monitor feeds
    /// observed analysis times back through a [`crate::Calibrator`]).
    pub fn estimator_mut(&mut self) -> &mut Estimator {
        &mut self.estimator
    }

    /// Execute the root–leaf plan over the current state, threading each
    /// leaf's outputs into downstream mechanisms' inputs (§4.4: the
    /// application layer's `S_data` feeds both the resource and middleware
    /// formulations; the resource layer's `M` feeds the middleware's).
    pub fn adapt(&self, state: &OperationalState) -> Adaptations {
        let plan = cross::plan(self.prefs.objective);
        // The region-of-interest hint scales the analysis inputs before any
        // mechanism runs (§2: "limit the analytics to 'interesting'
        // regions").
        let roi = self.hints.roi_fraction.clamp(0.0, 1.0);
        let mut out = Adaptations {
            analysis_bytes: (state.data_bytes as f64 * roi) as u64,
            analysis_cells: (state.cells as f64 * roi) as u64,
            analysis_surface: (state.surface_cells as f64 * roi) as u64,
            ..Default::default()
        };
        let mut staging_cores = state.staging_cores;

        for mech in &plan.order {
            match mech {
                Mechanism::AppLayer if self.config.enable_app => {
                    let factors = self.hints.factors_at(state.step);
                    let d = app::select_factor(
                        out.analysis_bytes,
                        &factors,
                        state.mem_available_insitu,
                    );
                    out.analysis_bytes = d.reduced_bytes;
                    out.analysis_cells = app::reduced_cells(state.cells, d.factor);
                    out.analysis_surface = app::reduced_surface(state.surface_cells, d.factor);
                    out.app = Some(d);
                }
                Mechanism::PressureLayer if self.config.enable_pressure => {
                    let d = pressure::decide(
                        &self.disk,
                        out.analysis_bytes,
                        state.mem_available_intransit,
                        state.disk_available_intransit,
                        &self.hints.factors_at(state.step),
                        state.last_sim_time,
                        self.hints.analysis_budget_frac,
                    );
                    if let Some(d) = d {
                        // A downsample verdict shrinks the inputs the
                        // resource and middleware formulations see, the
                        // same way the application layer's does.
                        if let PressureAction::Downsample { factor } = d.action {
                            out.analysis_bytes = app::reduced_bytes(out.analysis_bytes, factor);
                            out.analysis_cells = app::reduced_cells(out.analysis_cells, factor);
                            out.analysis_surface =
                                app::reduced_surface(out.analysis_surface, factor);
                        }
                        out.pressure = Some(d);
                    }
                }
                Mechanism::ResourceLayer if self.config.enable_resource => {
                    let d = resource::select_staging_cores(
                        &self.estimator,
                        out.analysis_bytes,
                        out.analysis_cells,
                        out.analysis_surface,
                        state.last_sim_time,
                        state.sim_cores,
                        state.staging_cores_max,
                    );
                    staging_cores = d.staging_cores;
                    out.resource = Some(d);
                }
                Mechanism::Middleware if self.config.enable_middleware => {
                    let mut s = state.clone();
                    s.staging_cores = staging_cores;
                    out.placement = Some(middleware::decide_placement_opts(
                        &self.estimator,
                        &s,
                        out.analysis_bytes,
                        out.analysis_cells,
                        out.analysis_surface,
                        self.config.enable_hybrid,
                    ));
                }
                _ => {}
            }
        }
        // Temporal resolution: if the (possibly reduced, possibly in-situ)
        // analysis still blows the budget, lower the analysis frequency.
        if self.config.enable_app && self.hints.max_analysis_interval > 1 {
            let t_an = match out.placement.map(|p| p.placement) {
                Some(middleware::Placement::InSitu) => self.estimator.t_insitu(
                    out.analysis_cells,
                    out.analysis_surface,
                    state.sim_cores,
                ),
                _ => self.estimator.t_intransit(
                    out.analysis_cells,
                    out.analysis_surface,
                    staging_cores,
                ),
            };
            out.analysis_interval = app::select_interval(
                t_an,
                state.last_sim_time,
                self.hints.analysis_budget_frac,
                self.hints.max_analysis_interval,
            );
        }
        out
    }
}

/// Convenience: an engine for the paper's headline objective over `est`.
pub fn min_time_engine(hints: UserHints, config: EngineConfig, est: Estimator) -> AdaptationEngine {
    AdaptationEngine::new(
        UserPreferences {
            objective: Objective::MinimizeTimeToSolution,
        },
        hints,
        config,
        est,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::middleware::Placement;
    use xlayer_platform::{CostModel, MachineSpec};

    fn engine(config: EngineConfig) -> AdaptationEngine {
        min_time_engine(
            UserHints::paper_fig5_schedule(20),
            config,
            Estimator::new(CostModel::new(MachineSpec::titan())),
        )
    }

    fn state() -> OperationalState {
        OperationalState {
            step: 5,
            now: 100.0,
            data_bytes: 8 << 30,
            cells: (8u64 << 30) / 8,
            surface_cells: (8u64 << 30) / 80,
            last_sim_time: 10.0,
            sim_cores: 4096,
            staging_cores: 256,
            staging_cores_max: 1024,
            mem_available_insitu: u64::MAX,
            mem_available_intransit: u64::MAX,
            intransit_busy_until: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn global_config_runs_all_three() {
        let a = engine(EngineConfig::global()).adapt(&state());
        assert!(a.app.is_some());
        assert!(a.resource.is_some());
        assert!(a.placement.is_some());
        // Factor 2 selected (plenty of memory) → volume halved.
        assert_eq!(a.app.unwrap().factor, 2);
        assert_eq!(a.analysis_bytes, (8u64 << 30) / 2);
    }

    #[test]
    fn middleware_only_leaves_other_decisions_empty() {
        let a = engine(EngineConfig::middleware_only()).adapt(&state());
        assert!(a.app.is_none());
        assert!(a.resource.is_none());
        assert!(a.placement.is_some());
        assert_eq!(a.analysis_bytes, 8 << 30); // unreduced
    }

    #[test]
    fn reduction_output_feeds_resource_layer() {
        // With reduction, the resource layer should need fewer cores.
        let with_app = engine(EngineConfig::global()).adapt(&state());
        let without_app = engine(EngineConfig {
            enable_app: false,
            enable_middleware: true,
            enable_resource: true,
            enable_hybrid: false,
            enable_pressure: false,
        })
        .adapt(&state());
        assert!(
            with_app.resource.unwrap().staging_cores <= without_app.resource.unwrap().staging_cores
        );
    }

    #[test]
    fn utilization_objective_skips_middleware() {
        let mut e = engine(EngineConfig::global());
        e.prefs.objective = Objective::MaximizeStagingUtilization;
        let a = e.adapt(&state());
        assert!(a.placement.is_none());
        assert!(a.app.is_some());
        assert!(a.resource.is_some());
    }

    #[test]
    fn idle_staging_places_intransit() {
        let a = engine(EngineConfig::global()).adapt(&state());
        assert_eq!(a.placement.unwrap().placement, Placement::InTransit);
    }

    #[test]
    fn busy_staging_with_huge_backlog_places_insitu() {
        let mut s = state();
        s.intransit_busy_until = s.now + 1e9;
        let a = engine(EngineConfig::global()).adapt(&s);
        assert_eq!(a.placement.unwrap().placement, Placement::InSitu);
    }

    #[test]
    fn fig5_schedule_threads_into_decisions() {
        // At step 25 the second phase {2,4,8,16} is active; with very tight
        // memory the factor escalates beyond 4.
        let mut s = state();
        s.step = 25;
        s.mem_available_insitu = s.data_bytes / 100;
        let a = engine(EngineConfig::global()).adapt(&s);
        assert!(a.app.unwrap().factor >= 8);
    }

    #[test]
    fn temporal_interval_rises_when_analysis_dominates() {
        let mut e = engine(EngineConfig::global());
        e.hints.max_analysis_interval = 8;
        e.hints.analysis_budget_frac = 0.05;
        let mut s = state();
        // a very fast simulation step makes per-step analysis unaffordable
        s.last_sim_time = 1e-3;
        let a = e.adapt(&s);
        assert!(
            a.analysis_interval > 1,
            "interval stayed {}",
            a.analysis_interval
        );
        // slow simulation → analyze every step
        s.last_sim_time = 1e6;
        let a = e.adapt(&s);
        assert_eq!(a.analysis_interval, 1);
    }

    #[test]
    fn roi_hint_scales_analysis_inputs() {
        let mut e = engine(EngineConfig::middleware_only());
        e.hints.roi_fraction = 0.25;
        let s = state();
        let a = e.adapt(&s);
        assert_eq!(a.analysis_bytes, s.data_bytes / 4);
        assert_eq!(a.analysis_cells, s.cells / 4);
        assert_eq!(a.analysis_surface, s.surface_cells / 4);
    }

    #[test]
    fn pressure_layer_runs_between_app_and_resource() {
        // Tight staging memory, roomy disk, long step: the pressure layer
        // should choose Spill and leave the analysis inputs alone.
        let mut s = state();
        s.mem_available_intransit = 1 << 30;
        s.disk_available_intransit = u64::MAX;
        s.last_sim_time = 1e4;
        let a = engine(EngineConfig::global()).adapt(&s);
        let p = a.pressure.expect("overflow must reach the pressure layer");
        assert_eq!(p.action, crate::policy::pressure::PressureAction::Spill);
        // The app layer halved 8 GiB; the overflow is what's left beyond
        // the 1 GiB staging memory.
        assert_eq!(p.overflow_bytes, (8u64 << 30) / 2 - (1 << 30));
    }

    #[test]
    fn pressure_downsample_feeds_downstream_mechanisms() {
        // A sub-millisecond step makes any spill unaffordable, so the
        // verdict degrades to downsampling — and the resource layer must
        // see the shrunken bytes.
        let mut s = state();
        s.mem_available_intransit = 3 << 30;
        s.disk_available_intransit = u64::MAX;
        s.last_sim_time = 1e-3;
        let a = engine(EngineConfig::global()).adapt(&s);
        let p = a.pressure.expect("overflow must reach the pressure layer");
        assert_eq!(
            p.action,
            crate::policy::pressure::PressureAction::Downsample { factor: 2 }
        );
        // 8 GiB → 4 GiB (app factor 2) → 2 GiB (pressure factor 2).
        assert_eq!(a.analysis_bytes, 2 << 30);
    }

    #[test]
    fn pressure_disabled_leaves_decision_empty() {
        let mut s = state();
        s.mem_available_intransit = 1 << 30;
        let a = engine(EngineConfig::middleware_only()).adapt(&s);
        assert!(a.pressure.is_none());
    }

    #[test]
    fn none_config_is_inert() {
        let a = engine(EngineConfig::none()).adapt(&state());
        assert_eq!(
            a,
            Adaptations {
                analysis_bytes: 8 << 30,
                analysis_cells: (8u64 << 30) / 8,
                analysis_surface: (8u64 << 30) / 80,
                ..Default::default()
            }
        );
    }
}
