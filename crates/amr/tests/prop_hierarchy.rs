//! Property-based tests of the AMR hierarchy: regridding, interpolation
//! and averaging invariants over randomized tag sets.

use proptest::prelude::*;
use xlayer_amr::boxes::IBox;
use xlayer_amr::cluster::ClusterParams;
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::hierarchy::{AmrHierarchy, HierarchyConfig};
use xlayer_amr::intvect::IntVect;
use xlayer_amr::tagging::IntVectSet;

fn arb_tags(n: i64) -> impl Strategy<Value = IntVectSet> {
    proptest::collection::vec(
        (0..n, 0..n, 0..n).prop_map(|(x, y, z)| IntVect::new(x, y, z)),
        1..25,
    )
    .prop_map(|v| v.into_iter().collect())
}

fn hierarchy(nranks: usize) -> AmrHierarchy {
    AmrHierarchy::new(
        ProblemDomain::periodic(IBox::cube(16)),
        HierarchyConfig {
            max_levels: 2,
            base_max_box: 8,
            nranks,
            nghost: 1,
            cluster: ClusterParams {
                blocking_factor: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn regrid_covers_every_tag(tags in arb_tags(16), nranks in 1usize..5) {
        let mut h = hierarchy(nranks);
        h.regrid(std::slice::from_ref(&tags));
        prop_assert_eq!(h.num_levels(), 2);
        for iv in tags.iter() {
            let fine = IBox::single(*iv).refine(2);
            let covered = h
                .level(1)
                .layout()
                .grids()
                .iter()
                .any(|g| g.bx.contains_box(&fine));
            prop_assert!(covered, "tag {:?} uncovered", iv);
        }
    }

    #[test]
    fn fine_layout_is_disjoint_and_in_domain(tags in arb_tags(16)) {
        let mut h = hierarchy(1);
        h.regrid(std::slice::from_ref(&tags));
        let dom = h.domain(1).domain_box();
        let grids = h.level(1).layout().grids();
        for (i, a) in grids.iter().enumerate() {
            prop_assert!(dom.contains_box(&a.bx));
            prop_assert!(a.bx.is_aligned(2), "unaligned fine box {:?}", a.bx);
            for b in &grids[i + 1..] {
                prop_assert!(!a.bx.intersects(&b.bx));
            }
        }
    }

    #[test]
    fn constant_field_survives_regrid_and_ghost_fill(
        tags in arb_tags(16),
        value in -10.0f64..10.0,
    ) {
        let mut h = hierarchy(2);
        h.level_mut(0).fill(value);
        h.regrid(std::slice::from_ref(&tags));
        h.fill_ghosts();
        for l in 0..h.num_levels() {
            for i in 0..h.level(l).len() {
                let fb = h.level(l).fab(i);
                for iv in fb.ibox().cells() {
                    prop_assert!(
                        (fb.get(iv, 0) - value).abs() < 1e-12,
                        "level {} cell {:?}: {}",
                        l,
                        iv,
                        fb.get(iv, 0)
                    );
                }
            }
        }
    }

    #[test]
    fn composite_sum_invariant_under_regrid(
        tags_a in arb_tags(16),
        tags_b in arb_tags(16),
    ) {
        // Piecewise-constant interpolation + averaging keep the composite
        // integral of a coarse-defined field invariant across regrids.
        let mut h = hierarchy(1);
        // smooth-ish deterministic field on the base level
        for i in 0..h.level(0).len() {
            let vb = h.level(0).valid_box(i);
            for iv in vb.cells() {
                let v = ((iv[0] * 3 + iv[1] * 5 + iv[2] * 7) % 11) as f64;
                h.level_mut(0).fab_mut(i).set(iv, 0, v);
            }
        }
        let s0 = h.composite_sum(0);
        h.regrid(std::slice::from_ref(&tags_a));
        let s1 = h.composite_sum(0);
        prop_assert!((s1 - s0).abs() < 1e-9 * s0.abs().max(1.0), "{} -> {}", s0, s1);
        h.regrid(std::slice::from_ref(&tags_b));
        let s2 = h.composite_sum(0);
        prop_assert!((s2 - s0).abs() < 1e-9 * s0.abs().max(1.0), "{} -> {}", s0, s2);
    }

    #[test]
    fn bytes_per_rank_sums_to_total(tags in arb_tags(16), nranks in 1usize..6) {
        let mut h = hierarchy(nranks);
        h.regrid(std::slice::from_ref(&tags));
        let per = h.bytes_per_rank();
        prop_assert_eq!(per.len(), nranks);
        prop_assert_eq!(per.iter().sum::<u64>(), h.total_bytes());
    }
}
