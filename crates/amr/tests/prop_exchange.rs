//! Property tests of the cached ghost-exchange path: the `ExchangeCopier`
//! must be an exact drop-in for per-call replanning — same plan, same ghost
//! values bit-for-bit, same cross-rank byte accounting — for arbitrary
//! layouts, domains and ghost widths, including across regrids.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xlayer_amr::boxes::IBox;
use xlayer_amr::copier::{exchange_plan, ExchangeCopier};
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::layout::BoxLayout;
use xlayer_amr::level_data::LevelData;

/// A random exchange configuration: domain, periodicity, decomposition.
#[derive(Clone, Debug)]
struct Setup {
    domain: ProblemDomain,
    max_box: i64,
    nranks: usize,
    nghost: i64,
    ncomp: usize,
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    (
        4i64..20,
        (0u8..2, 0u8..2, 0u8..2),
        2i64..9,
        1usize..5,
        0i64..3,
        1usize..4,
    )
        .prop_map(|(n, (px, py, pz), max_box, nranks, nghost, ncomp)| Setup {
            domain: ProblemDomain::with_periodicity(IBox::cube(n), [px == 1, py == 1, pz == 1]),
            max_box,
            nranks,
            nghost,
            ncomp,
        })
}

impl Setup {
    fn layout(&self) -> BoxLayout {
        BoxLayout::decompose(&self.domain, self.max_box, self.nranks)
    }

    fn level_data(&self) -> LevelData {
        let mut ld = LevelData::new(self.layout(), self.domain, self.ncomp, self.nghost);
        // Deterministic per-(cell, component) values on valid regions only;
        // ghosts start at zero on both sides of every comparison.
        ld.for_each_mut(|vb, fab| {
            for c in 0..fab.ncomp() {
                for iv in vb.cells() {
                    let v = (iv[0] * 10_000 + iv[1] * 100 + iv[2]) as f64 + c as f64 * 1e7;
                    fab.set(iv, c, v);
                }
            }
        });
        ld
    }
}

fn assert_same_fabs(a: &LevelData, b: &LevelData) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        prop_assert_eq!(a.fab(i).ibox(), b.fab(i).ibox());
        prop_assert!(
            a.fab(i).as_slice() == b.fab(i).as_slice(),
            "fab {} differs between cached and uncached exchange",
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_plan_equals_fresh_plan(setup in arb_setup()) {
        let layout = setup.layout();
        let copier = ExchangeCopier::build(&layout, &setup.domain, setup.nghost, setup.ncomp);
        let fresh = exchange_plan(&layout, &setup.domain, setup.nghost);
        prop_assert_eq!(copier.ops(), &fresh[..]);
        prop_assert!(copier.matches(&layout, &setup.domain, setup.nghost, setup.ncomp));
    }

    #[test]
    fn copier_goes_stale_on_regrid_and_rebuild_matches(setup in arb_setup()) {
        // A regrid swaps the layout; a copier built before must refuse it,
        // and a rebuild must equal the fresh plan for the new layout.
        let before = setup.layout();
        let copier = ExchangeCopier::build(&before, &setup.domain, setup.nghost, setup.ncomp);
        let regrid = Setup { max_box: if setup.max_box > 2 { setup.max_box - 1 } else { setup.max_box + 1 }, ..setup.clone() };
        let after = regrid.layout();
        if after.grids() != before.grids() {
            prop_assert!(!copier.matches(&after, &setup.domain, setup.nghost, setup.ncomp));
        }
        let rebuilt = ExchangeCopier::build(&after, &setup.domain, setup.nghost, setup.ncomp);
        prop_assert_eq!(rebuilt.ops(), &exchange_plan(&after, &setup.domain, setup.nghost)[..]);
    }

    #[test]
    fn cached_exchange_is_bit_identical_to_uncached(setup in arb_setup()) {
        let mut cached = setup.level_data();
        let mut uncached = setup.level_data();
        // Two rounds: the first builds the cache, the second reuses it.
        for round in 0..2 {
            let a = cached.exchange();
            let b = uncached.exchange_uncached();
            prop_assert_eq!(a, b, "cross_rank_bytes differ in round {}", round);
            assert_same_fabs(&cached, &uncached)?;
        }
    }

    #[test]
    fn cross_rank_bytes_identical_cached_vs_uncached_across_regrid(setup in arb_setup()) {
        let mut cached = setup.level_data();
        let mut uncached = setup.level_data();
        prop_assert_eq!(cached.exchange(), uncached.exchange_uncached());
        // "Regrid": rebuild both on a different decomposition, re-exchange.
        let regrid = Setup { max_box: if setup.max_box > 2 { setup.max_box - 1 } else { setup.max_box + 1 }, ..setup.clone() };
        let mut cached = regrid.level_data();
        let mut uncached = regrid.level_data();
        prop_assert_eq!(cached.exchange(), uncached.exchange_uncached());
        assert_same_fabs(&cached, &uncached)?;
    }
}
