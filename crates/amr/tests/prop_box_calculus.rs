//! Property-based tests of box-calculus laws: the algebra everything in the
//! AMR substrate (ghost exchange, clustering, nesting) silently relies on.

use proptest::prelude::*;
use xlayer_amr::boxes::IBox;
use xlayer_amr::intvect::IntVect;

fn arb_intvect(range: std::ops::Range<i64>) -> impl Strategy<Value = IntVect> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| IntVect::new(x, y, z))
}

fn arb_box() -> impl Strategy<Value = IBox> {
    (arb_intvect(-16..16), arb_intvect(0..12)).prop_map(|(lo, sz)| IBox::new(lo, lo + sz))
}

proptest! {
    #[test]
    fn intersection_is_commutative(a in arb_box(), b in arb_box()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersection_is_idempotent(a in arb_box()) {
        prop_assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn intersection_contained_in_both(a in arb_box(), b in arb_box()) {
        let i = a.intersect(&b);
        prop_assert!(a.contains_box(&i));
        prop_assert!(b.contains_box(&i));
    }

    #[test]
    fn hull_contains_both(a in arb_box(), b in arb_box()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_box(&a));
        prop_assert!(h.contains_box(&b));
    }

    #[test]
    fn refine_coarsen_roundtrip(a in arb_box(), r in 2i64..5) {
        prop_assert_eq!(a.refine(r).coarsen(r), a);
    }

    #[test]
    fn coarsen_refine_covers(a in arb_box(), r in 2i64..5) {
        // coarsening loses alignment but never loses cells
        prop_assert!(a.coarsen(r).refine(r).contains_box(&a));
    }

    #[test]
    fn refine_scales_cell_count(a in arb_box(), r in 2i64..5) {
        prop_assert_eq!(a.refine(r).num_cells(), a.num_cells() * (r * r * r) as u64);
    }

    #[test]
    fn grow_then_shrink_is_identity(a in arb_box(), n in 0i64..6) {
        prop_assert_eq!(a.grow(n).grow(-n), a);
    }

    #[test]
    fn grow_adds_expected_cells(a in arb_box(), n in 0i64..4) {
        let s = a.size();
        let expect = ((s[0] + 2 * n) * (s[1] + 2 * n) * (s[2] + 2 * n)) as u64;
        prop_assert_eq!(a.grow(n).num_cells(), expect);
    }

    #[test]
    fn subtract_partitions(a in arb_box(), b in arb_box()) {
        let pieces = a.subtract(&b);
        // pieces are disjoint from b and from each other, and union with a∩b is a
        let inter = a.intersect(&b);
        let total: u64 = pieces.iter().map(|p| p.num_cells()).sum();
        prop_assert_eq!(total + inter.num_cells(), a.num_cells());
        for (i, p) in pieces.iter().enumerate() {
            prop_assert!(!p.intersects(&b));
            prop_assert!(a.contains_box(p));
            for q in &pieces[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn shift_roundtrip(a in arb_box(), s in arb_intvect(-10..10)) {
        prop_assert_eq!(a.shift(s).shift(-s), a);
    }

    #[test]
    fn shift_preserves_cells(a in arb_box(), s in arb_intvect(-10..10)) {
        prop_assert_eq!(a.shift(s).num_cells(), a.num_cells());
    }

    #[test]
    fn cells_iterator_matches_num_cells(a in arb_box()) {
        prop_assert_eq!(a.cells().count() as u64, a.num_cells());
    }

    #[test]
    fn offsets_are_a_bijection(a in arb_box()) {
        prop_assume!(a.num_cells() <= 4096);
        let mut seen = vec![false; a.num_cells() as usize];
        for iv in a.cells() {
            let o = a.offset(iv);
            prop_assert!(!seen[o], "duplicate offset {}", o);
            seen[o] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn contains_matches_intersection(a in arb_box(), iv in arb_intvect(-20..25)) {
        let single = IBox::single(iv);
        prop_assert_eq!(a.contains(iv), a.intersects(&single));
    }
}

mod cluster_props {
    use super::*;
    use xlayer_amr::cluster::{cluster_tags, ClusterParams};
    use xlayer_amr::tagging::IntVectSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn clustering_covers_all_tags_disjointly(
            seeds in proptest::collection::vec(arb_intvect(0..24), 1..40),
            fill in 0.3f64..0.95,
            bf in 1i64..5,
        ) {
            let tags: IntVectSet = seeds.into_iter().collect();
            let within = IBox::cube(24);
            let params = ClusterParams {
                fill_ratio: fill,
                max_box_size: 16,
                blocking_factor: bf,
            };
            let boxes = cluster_tags(&tags, &within, &params);
            for iv in tags.iter() {
                prop_assert!(boxes.iter().any(|b| b.contains(*iv)), "tag {:?} uncovered", iv);
            }
            for (i, a) in boxes.iter().enumerate() {
                prop_assert!(within.contains_box(a));
                for b in &boxes[i + 1..] {
                    prop_assert!(!a.intersects(b));
                }
            }
        }
    }
}

mod balance_props {
    use super::*;
    use xlayer_amr::balance::{assign_ranks, imbalance_of, Balancer};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn every_balancer_uses_valid_ranks(
            sides in proptest::collection::vec(1i64..12, 1..30),
            nranks in 1usize..9,
        ) {
            let boxes: Vec<IBox> = sides
                .iter()
                .enumerate()
                .map(|(i, &s)| IBox::cube(s).shift(IntVect::new(20 * i as i64, 0, 0)))
                .collect();
            for bal in [Balancer::Knapsack, Balancer::MortonSfc, Balancer::RoundRobin] {
                let a = assign_ranks(&boxes, nranks, bal);
                prop_assert_eq!(a.len(), boxes.len());
                prop_assert!(a.iter().all(|&r| r < nranks));
                prop_assert!(imbalance_of(&boxes, &a, nranks) >= 1.0 - 1e-9);
            }
        }

        #[test]
        fn knapsack_within_lpt_bound_of_round_robin(
            sides in proptest::collection::vec(1i64..12, 2..30),
            nranks in 2usize..8,
        ) {
            // LPT is a 4/3-approximation of the optimal makespan, and
            // round-robin is ≥ optimal, so LPT ≤ 4/3 · RR always; on skewed
            // loads it is usually far better, but not pointwise better
            // (proptest found counterexamples to the naive claim).
            let boxes: Vec<IBox> = sides
                .iter()
                .enumerate()
                .map(|(i, &s)| IBox::cube(s).shift(IntVect::new(20 * i as i64, 0, 0)))
                .collect();
            let k = assign_ranks(&boxes, nranks, Balancer::Knapsack);
            let rr = assign_ranks(&boxes, nranks, Balancer::RoundRobin);
            prop_assert!(
                imbalance_of(&boxes, &k, nranks)
                    <= imbalance_of(&boxes, &rr, nranks) * 4.0 / 3.0 + 1e-9
            );
        }
    }
}
