//! Regression test: periodic self-exchange must not clone fabs.
//!
//! The original exchange path worked around the borrow checker by cloning
//! the whole source fab for every periodic self-copy, which for a
//! single-grid periodic level meant 26 full-fab clones per exchange. Both
//! exchange paths now stage the payload through a plain `f64` scratch
//! buffer instead, so `amr::fab`'s process-wide allocation accounting must
//! see zero new fab bytes during an exchange.
//!
//! This lives in its own integration-test binary on purpose: the
//! allocation counters are process-global, and concurrently running tests
//! in the same binary would perturb the peak.

use xlayer_amr::boxes::IBox;
use xlayer_amr::domain::ProblemDomain;
use xlayer_amr::fab;
use xlayer_amr::intvect::IntVect;
use xlayer_amr::layout::{BoxLayout, Grid};
use xlayer_amr::level_data::LevelData;

fn single_grid_periodic() -> LevelData {
    let domain = ProblemDomain::periodic(IBox::cube(16));
    let layout = BoxLayout::new(
        vec![Grid {
            bx: domain.domain_box(),
            rank: 0,
        }],
        1,
    );
    let mut ld = LevelData::new(layout, domain, 2, 2);
    ld.for_each_mut(|vb, f| {
        for c in 0..f.ncomp() {
            for iv in vb.cells() {
                f.set(
                    iv,
                    c,
                    (iv[0] * 10_000 + iv[1] * 100 + iv[2]) as f64 + c as f64 * 1e7,
                );
            }
        }
    });
    ld
}

fn check_wrapped_ghosts(ld: &LevelData) {
    let fb = ld.fab(0);
    let dom = ld.domain().domain_box();
    let n = dom.size();
    for c in 0..fb.ncomp() {
        for iv in fb.ibox().cells() {
            if dom.contains(iv) {
                continue;
            }
            let wrapped = IntVect::new(
                iv[0].rem_euclid(n[0]),
                iv[1].rem_euclid(n[1]),
                iv[2].rem_euclid(n[2]),
            );
            let expect =
                (wrapped[0] * 10_000 + wrapped[1] * 100 + wrapped[2]) as f64 + c as f64 * 1e7;
            assert_eq!(fb.get(iv, c), expect, "ghost {iv:?} comp {c}");
        }
    }
}

#[test]
fn periodic_self_exchange_allocates_no_fabs() {
    // Cached path: first call builds the copier, second reuses it; neither
    // may allocate fab storage.
    let mut ld = single_grid_periodic();
    let live = fab::allocated_bytes();
    fab::reset_peak_allocated();
    for _ in 0..2 {
        ld.exchange();
        assert_eq!(
            fab::peak_allocated_bytes(),
            live,
            "exchange allocated fab storage (old clone-per-self-copy path?)"
        );
    }
    check_wrapped_ghosts(&ld);

    // Uncached fallback path: same guarantee.
    let mut ld = single_grid_periodic();
    let live = fab::allocated_bytes();
    fab::reset_peak_allocated();
    ld.exchange_uncached();
    assert_eq!(
        fab::peak_allocated_bytes(),
        live,
        "exchange_uncached allocated fab storage"
    );
    check_wrapped_ghosts(&ld);
}
