//! Cell tagging: marking cells that need refinement.
//!
//! Taggers inspect a `LevelData` and produce an [`IntVectSet`] of cells whose
//! local solution structure (gradients, undivided differences) exceeds a
//! threshold — the input to the Berger–Rigoutsos clusterer.

use crate::boxes::IBox;
use crate::intvect::{IntVect, DIM};
use crate::level_data::LevelData;
use std::collections::BTreeSet;

/// A set of tagged cells.
///
/// Backed by a `BTreeSet` so iteration is lexicographic in the cell index
/// — the Berger–Rigoutsos clusterer and anything downstream of [`Self::iter`]
/// see the same order on every run, on every platform.
#[derive(Clone, Debug, Default)]
pub struct IntVectSet {
    cells: BTreeSet<IntVect>,
}

impl IntVectSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one cell.
    pub fn insert(&mut self, iv: IntVect) {
        self.cells.insert(iv);
    }

    /// Insert every cell of a box.
    pub fn insert_box(&mut self, b: &IBox) {
        for iv in b.cells() {
            self.cells.insert(iv);
        }
    }

    /// Membership test.
    pub fn contains(&self, iv: IntVect) -> bool {
        self.cells.contains(&iv)
    }

    /// Number of tagged cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells are tagged.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate over tagged cells in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &IntVect> {
        self.cells.iter()
    }

    /// The smallest box containing every tagged cell.
    pub fn bounding_box(&self) -> IBox {
        let mut it = self.cells.iter();
        let Some(&first) = it.next() else {
            return IBox::EMPTY;
        };
        let (lo, hi) = it.fold((first, first), |(lo, hi), &iv| (lo.min(iv), hi.max(iv)));
        IBox::new(lo, hi)
    }

    /// Union in-place.
    pub fn union(&mut self, other: &IntVectSet) {
        self.cells.extend(other.cells.iter().copied());
    }

    /// Grow the set by `n` cells in every direction (tag buffering), clipped
    /// to `within`.
    pub fn grow(&self, n: i64, within: &IBox) -> IntVectSet {
        let mut out = IntVectSet::new();
        for &iv in &self.cells {
            let b = IBox::single(iv).grow(n).intersect(within);
            out.insert_box(&b);
        }
        out
    }

    /// Retain only cells inside `b`.
    pub fn clip(&self, b: &IBox) -> IntVectSet {
        IntVectSet {
            cells: self
                .cells
                .iter()
                .copied()
                .filter(|&iv| b.contains(iv))
                .collect(),
        }
    }

    /// Coarsen every tag by `ratio` (deduplicating).
    pub fn coarsen(&self, ratio: i64) -> IntVectSet {
        IntVectSet {
            cells: self.cells.iter().map(|iv| iv.coarsen(ratio)).collect(),
        }
    }

    /// Count of tags inside `b`.
    pub fn count_in(&self, b: &IBox) -> usize {
        if (b.num_cells() as usize) < self.cells.len() {
            b.cells().filter(|&iv| self.contains(iv)).count()
        } else {
            self.cells.iter().filter(|&&iv| b.contains(iv)).count()
        }
    }
}

impl FromIterator<IntVect> for IntVectSet {
    fn from_iter<T: IntoIterator<Item = IntVect>>(iter: T) -> Self {
        IntVectSet {
            cells: iter.into_iter().collect(),
        }
    }
}

/// Tag cells where the undivided gradient of component `comp` exceeds
/// `threshold`. Requires at least one ghost cell (exchange first).
///
/// The undivided gradient at cell `i` is
/// `max_d |u[i+e_d] - u[i-e_d]| / 2` — Chombo's standard refinement
/// criterion for its example applications.
pub fn tag_undivided_gradient(data: &LevelData, comp: usize, threshold: f64) -> IntVectSet {
    assert!(data.nghost() >= 1, "gradient tagging needs ghost cells");
    let mut tags = IntVectSet::new();
    let dom_box = data.domain().domain_box();
    for i in 0..data.len() {
        let valid = data.valid_box(i);
        let fab = data.fab(i);
        let avail = fab.ibox();
        for iv in valid.cells() {
            let mut g: f64 = 0.0;
            for d in 0..DIM {
                let e = IntVect::basis(d);
                // One-sided at physical boundaries where no ghost exists.
                let (p, m) = (iv + e, iv - e);
                let up = if avail.contains(p) {
                    fab.get(p, comp)
                } else {
                    fab.get(iv, comp)
                };
                let um = if avail.contains(m) {
                    fab.get(m, comp)
                } else {
                    fab.get(iv, comp)
                };
                g = g.max((up - um).abs() * 0.5);
            }
            if g > threshold && dom_box.contains(iv) {
                tags.insert(iv);
            }
        }
    }
    tags
}

/// Tag cells whose value of `comp` exceeds `threshold` (simple amplitude
/// tagger, used by blob-tracking advection problems).
pub fn tag_amplitude(data: &LevelData, comp: usize, threshold: f64) -> IntVectSet {
    let mut tags = IntVectSet::new();
    for i in 0..data.len() {
        let valid = data.valid_box(i);
        let fab = data.fab(i);
        for iv in valid.cells() {
            if fab.get(iv, comp) > threshold {
                tags.insert(iv);
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ProblemDomain;
    use crate::layout::BoxLayout;

    #[test]
    fn set_operations() {
        let mut s = IntVectSet::new();
        s.insert(IntVect::new(1, 1, 1));
        s.insert(IntVect::new(3, 3, 3));
        s.insert(IntVect::new(1, 1, 1)); // dup
        assert_eq!(s.len(), 2);
        assert!(s.contains(IntVect::new(3, 3, 3)));
        assert_eq!(
            s.bounding_box(),
            IBox::new(IntVect::splat(1), IntVect::splat(3))
        );
    }

    #[test]
    fn grow_clips() {
        let mut s = IntVectSet::new();
        s.insert(IntVect::ZERO);
        let within = IBox::cube(4);
        let g = s.grow(1, &within);
        // 2x2x2 corner (clipped from 3x3x3)
        assert_eq!(g.len(), 8);
    }

    #[test]
    fn coarsen_dedups() {
        let mut s = IntVectSet::new();
        s.insert(IntVect::new(0, 0, 0));
        s.insert(IntVect::new(1, 1, 1));
        let c = s.coarsen(2);
        assert_eq!(c.len(), 1);
        assert!(c.contains(IntVect::ZERO));
    }

    #[test]
    fn gradient_tagger_finds_jump() {
        let domain = ProblemDomain::new(IBox::cube(8));
        let layout = BoxLayout::decompose(&domain, 8, 1);
        let mut ld = LevelData::new(layout, domain, 1, 1);
        // Step function: u = 1 for x >= 4 else 0.
        ld.for_each_mut(|vb, fab| {
            for iv in vb.cells() {
                fab.set(iv, 0, if iv[0] >= 4 { 1.0 } else { 0.0 });
            }
        });
        ld.exchange();
        let tags = tag_undivided_gradient(&ld, 0, 0.25);
        // Cells adjacent to the jump (x=3 and x=4) tag: |1-0|/2 = 0.5 > 0.25.
        assert_eq!(tags.len(), 2 * 8 * 8);
        assert!(tags.contains(IntVect::new(3, 0, 0)));
        assert!(tags.contains(IntVect::new(4, 5, 5)));
        assert!(!tags.contains(IntVect::new(0, 0, 0)));
    }

    #[test]
    fn amplitude_tagger() {
        let domain = ProblemDomain::new(IBox::cube(4));
        let layout = BoxLayout::decompose(&domain, 4, 1);
        let mut ld = LevelData::new(layout, domain, 1, 0);
        ld.fab_mut(0).set(IntVect::new(2, 2, 2), 0, 5.0);
        let tags = tag_amplitude(&ld, 0, 1.0);
        assert_eq!(tags.len(), 1);
        assert!(tags.contains(IntVect::new(2, 2, 2)));
    }

    #[test]
    fn count_in_region() {
        let mut s = IntVectSet::new();
        s.insert_box(&IBox::cube(2));
        assert_eq!(s.count_in(&IBox::cube(4)), 8);
        assert_eq!(s.count_in(&IBox::single(IntVect::ZERO)), 1);
    }
}
